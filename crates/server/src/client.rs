//! `flowc`'s library half: a blocking client for the flowd protocol.
//!
//! Two levels of API:
//!
//! * [`FlowClient::compile`] — the original interface; every failure is
//!   an `io::Error` with the server's message.
//! * [`FlowClient::compile_detailed`] plus [`compile_with_retry`] — the
//!   hardened path: failures come back as a typed [`CompileError`], and
//!   the retry helper turns the daemon's `retry_after_ms` hints into
//!   jittered exponential backoff across fresh connections.

use std::io::{self, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use serde_json::Value;

use crate::proto::{self, from_hex};

/// Either transport, behind one blocking interface.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The final state of one compile submission.
#[derive(Debug)]
pub struct CompileOutcome {
    /// Server-assigned job id.
    pub job: u64,
    /// The streamed `stage` events, in arrival order.
    pub stage_events: Vec<Value>,
    /// The flow report from the `done` event.
    pub report: Value,
    /// Decoded bitstream bytes.
    pub bitstream: Vec<u8>,
}

/// Why a compile submission did not produce a bitstream.
#[derive(Debug)]
pub enum CompileError {
    /// The daemon refused to take the job (queue full, too many
    /// connections, shutting down). `retry_after_ms` is the server's
    /// backoff hint when it gave one.
    Rejected {
        reason: String,
        retry_after_ms: Option<u64>,
    },
    /// The flow itself failed: an ordinary stage error, or a stage
    /// panic / lost worker (`kind` distinguishes them).
    Failed {
        stage: String,
        message: String,
        kind: Option<String>,
    },
    /// The job's deadline elapsed; `completed_stages` is how far it got.
    TimedOut {
        deadline_ms: Option<u64>,
        completed_stages: Vec<String>,
    },
    /// Transport-level trouble (connect, read, protocol violation).
    Io(io::Error),
}

impl CompileError {
    /// Whether trying again on a fresh connection can plausibly succeed:
    /// saturation rejections and transport errors are transient; flow
    /// failures, timeouts, and shutdown refusals are not.
    pub fn is_retryable(&self) -> bool {
        match self {
            CompileError::Rejected { reason, .. } => reason != "shutting down",
            CompileError::Io(_) => true,
            CompileError::Failed { .. } | CompileError::TimedOut { .. } => false,
        }
    }

    /// The server's minimum-backoff hint, if it sent one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            CompileError::Rejected { retry_after_ms, .. } => *retry_after_ms,
            _ => None,
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Rejected { reason, .. } => write!(f, "job rejected: {reason}"),
            CompileError::Failed { stage, message, .. } => write!(f, "[{stage}] {message}"),
            CompileError::TimedOut {
                deadline_ms,
                completed_stages,
            } => write!(
                f,
                "timeout after {}ms ({} stage(s) completed)",
                deadline_ms.unwrap_or(0),
                completed_stages.len()
            ),
            CompileError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<io::Error> for CompileError {
    fn from(e: io::Error) -> Self {
        CompileError::Io(e)
    }
}

impl From<CompileError> for io::Error {
    fn from(e: CompileError) -> io::Error {
        match e {
            CompileError::Io(e) => e,
            other => io::Error::other(other.to_string()),
        }
    }
}

/// A connected client. One request/response exchange at a time.
pub struct FlowClient {
    reader: BufReader<Conn>,
    writer: Conn,
}

impl FlowClient {
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<FlowClient> {
        Self::from_conn(Conn::Tcp(TcpStream::connect(addr)?))
    }

    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<FlowClient> {
        Self::from_conn(Conn::Unix(UnixStream::connect(path)?))
    }

    #[cfg(not(unix))]
    pub fn connect_unix(_path: impl AsRef<Path>) -> io::Result<FlowClient> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix sockets are not available on this platform",
        ))
    }

    fn from_conn(conn: Conn) -> io::Result<FlowClient> {
        let writer = conn.try_clone()?;
        Ok(FlowClient {
            reader: BufReader::new(conn),
            writer,
        })
    }

    fn send(&mut self, v: &Value) -> io::Result<()> {
        proto::write_line(&mut self.writer, v)
    }

    fn recv(&mut self) -> io::Result<Value> {
        proto::read_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// `ping` — returns the `pong` event (carries the server version).
    pub fn ping(&mut self) -> io::Result<Value> {
        self.send(&serde_json::json!({"cmd": "ping"}))?;
        self.recv()
    }

    /// `stats` — job counters plus per-stage cache metrics.
    pub fn stats(&mut self) -> io::Result<Value> {
        self.send(&serde_json::json!({"cmd": "stats"}))?;
        self.recv()
    }

    /// `shutdown` — ask the daemon to drain and exit.
    pub fn shutdown_server(&mut self) -> io::Result<Value> {
        self.send(&serde_json::json!({"cmd": "shutdown"}))?;
        self.recv()
    }

    /// Submit a design and block until it finishes, collecting the
    /// streamed stage events along the way. `options` uses the wire
    /// option names (`place_seed`, `place_effort`, `channel_width`,
    /// `verify_cycles`, `arch`); pass `Value::Null` for all-defaults.
    ///
    /// Flow errors and rejections come back as `io::ErrorKind::Other`
    /// with the server's message.
    pub fn compile(
        &mut self,
        format: &str,
        source: &str,
        options: Value,
    ) -> io::Result<CompileOutcome> {
        self.compile_detailed(format, source, options, None)
            .map_err(io::Error::from)
    }

    /// Like [`FlowClient::compile`], but with a per-job deadline and a
    /// typed error that distinguishes rejection / failure / timeout —
    /// what [`compile_with_retry`] needs to decide whether to retry.
    pub fn compile_detailed(
        &mut self,
        format: &str,
        source: &str,
        options: Value,
        deadline_ms: Option<u64>,
    ) -> Result<CompileOutcome, CompileError> {
        let mut req = serde_json::Map::new();
        req.insert("cmd".to_string(), serde_json::json!("compile"));
        req.insert("format".to_string(), serde_json::json!(format));
        req.insert("source".to_string(), serde_json::json!(source));
        if !options.is_null() {
            req.insert("options".to_string(), options);
        }
        if let Some(ms) = deadline_ms {
            req.insert("deadline_ms".to_string(), serde_json::json!(ms));
        }
        self.send(&Value::Object(req))?;

        let mut job = 0u64;
        let mut stage_events = Vec::new();
        loop {
            let event = self.recv()?;
            match event.get("event").and_then(Value::as_str) {
                Some("queued") => {
                    job = event.get("job").and_then(Value::as_u64).unwrap_or(0);
                }
                Some("stage") => stage_events.push(event),
                Some("done") => {
                    let hex = event
                        .get("bitstream_hex")
                        .and_then(Value::as_str)
                        .unwrap_or_default();
                    let bitstream = from_hex(hex).map_err(|e| {
                        CompileError::Io(io::Error::new(io::ErrorKind::InvalidData, e))
                    })?;
                    let report = event.get("report").cloned().unwrap_or(Value::Null);
                    return Ok(CompileOutcome {
                        job,
                        stage_events,
                        report,
                        bitstream,
                    });
                }
                Some("rejected") => {
                    return Err(CompileError::Rejected {
                        reason: event
                            .get("reason")
                            .and_then(Value::as_str)
                            .unwrap_or("rejected")
                            .to_string(),
                        retry_after_ms: event.get("retry_after_ms").and_then(Value::as_u64),
                    });
                }
                Some("timeout") => {
                    return Err(CompileError::TimedOut {
                        deadline_ms: event.get("deadline_ms").and_then(Value::as_u64),
                        completed_stages: event
                            .get("completed_stages")
                            .and_then(Value::as_array)
                            .map(|a| {
                                a.iter()
                                    .filter_map(Value::as_str)
                                    .map(str::to_string)
                                    .collect()
                            })
                            .unwrap_or_default(),
                    });
                }
                Some("error") => {
                    let kind = event.get("kind").and_then(Value::as_str);
                    let message = event
                        .get("message")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string();
                    // Saturation errors (connection cap) are rejections
                    // in spirit: same retry treatment as a full queue.
                    if kind == Some("overloaded") {
                        return Err(CompileError::Rejected {
                            reason: message,
                            retry_after_ms: event.get("retry_after_ms").and_then(Value::as_u64),
                        });
                    }
                    return Err(CompileError::Failed {
                        stage: event
                            .get("stage")
                            .and_then(Value::as_str)
                            .unwrap_or("?")
                            .to_string(),
                        message,
                        kind: kind.map(str::to_string),
                    });
                }
                other => {
                    return Err(CompileError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected event {other:?}"),
                    )));
                }
            }
        }
    }
}

/// Backoff shape for [`compile_with_retry`]. Deterministic: the jitter
/// comes from `jitter_seed`, so a fixed seed gives a fixed schedule.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt after that.
    pub base_ms: u64,
    /// Upper bound on any single backoff.
    pub max_backoff_ms: u64,
    /// Seed for the jitter PRNG.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_ms: 50,
            max_backoff_ms: 2_000,
            jitter_seed: 0x5eed_f10d,
        }
    }
}

/// xorshift64 — enough randomness to de-synchronize retrying clients,
/// with no dependency and full determinism under a fixed seed.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Submit with retries: each attempt opens a fresh connection via
/// `connect` (the previous one may have been closed by an overload
/// rejection), and retryable failures back off exponentially with
/// jitter, never less than the server's `retry_after_ms` hint.
/// `on_retry(attempt, error, backoff_ms)` fires before each backoff —
/// `flowc` logs from it; tests use it as a deterministic hook.
pub fn compile_with_retry(
    mut connect: impl FnMut() -> io::Result<FlowClient>,
    format: &str,
    source: &str,
    options: &Value,
    deadline_ms: Option<u64>,
    policy: &RetryPolicy,
    mut on_retry: impl FnMut(u32, &CompileError, u64),
) -> Result<CompileOutcome, CompileError> {
    let attempts = policy.max_attempts.max(1);
    let mut rng = policy.jitter_seed;
    let mut backoff = policy.base_ms.max(1);
    for attempt in 1..=attempts {
        let err = match connect() {
            Ok(mut client) => {
                match client.compile_detailed(format, source, options.clone(), deadline_ms) {
                    Ok(outcome) => return Ok(outcome),
                    Err(e) => e,
                }
            }
            Err(e) => CompileError::Io(e),
        };
        if attempt == attempts || !err.is_retryable() {
            return Err(err);
        }
        // Full jitter over [backoff/2, backoff], floored by the hint.
        let jittered = backoff / 2 + xorshift64(&mut rng) % (backoff / 2 + 1);
        let sleep_ms = jittered.max(err.retry_after_ms().unwrap_or(0));
        on_retry(attempt, &err, sleep_ms);
        std::thread::sleep(Duration::from_millis(sleep_ms));
        backoff = (backoff * 2).min(policy.max_backoff_ms.max(1));
    }
    unreachable!("loop always returns")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_is_by_kind() {
        let full = CompileError::Rejected {
            reason: "queue full".to_string(),
            retry_after_ms: Some(100),
        };
        assert!(full.is_retryable());
        assert_eq!(full.retry_after_ms(), Some(100));
        let down = CompileError::Rejected {
            reason: "shutting down".to_string(),
            retry_after_ms: None,
        };
        assert!(!down.is_retryable());
        let failed = CompileError::Failed {
            stage: "route".to_string(),
            message: "unroutable".to_string(),
            kind: None,
        };
        assert!(!failed.is_retryable());
        let timed_out = CompileError::TimedOut {
            deadline_ms: Some(5),
            completed_stages: vec![],
        };
        assert!(!timed_out.is_retryable());
        assert!(CompileError::Io(io::Error::other("refused")).is_retryable());
    }

    #[test]
    fn jitter_is_deterministic_under_a_fixed_seed() {
        let mut a = 42u64;
        let mut b = 42u64;
        let seq_a: Vec<u64> = (0..8).map(|_| xorshift64(&mut a) % 1000).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| xorshift64(&mut b) % 1000).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn retry_gives_up_on_non_retryable_errors_immediately() {
        let mut calls = 0u32;
        let result = compile_with_retry(
            || {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::Unsupported, "no server"))
            },
            "vhdl",
            "entity e is end e;",
            &Value::Null,
            None,
            &RetryPolicy {
                max_attempts: 3,
                base_ms: 1,
                max_backoff_ms: 2,
                jitter_seed: 7,
            },
            |_, _, _| {},
        );
        // Io errors ARE retryable: all three attempts run.
        assert!(matches!(result, Err(CompileError::Io(_))));
        assert_eq!(calls, 3);
    }
}
