//! `flowc`'s library half: a blocking client for the flowd protocol.
//!
//! Two levels of API:
//!
//! * [`FlowClient::compile`] — the original interface; every failure is
//!   an `io::Error` with the server's message.
//! * [`FlowClient::compile_detailed`] plus [`compile_with_retry`] — the
//!   hardened path: failures come back as a typed [`CompileError`], and
//!   the retry helper turns the daemon's `retry_after_ms` hints into
//!   jittered exponential backoff across fresh connections.

use std::io::{self, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use fpga_lint::Diagnostic;
use serde_json::Value;

use crate::proto::{
    self, from_hex, parse_event, CompileRequest, Event, EventParseError, Request, SourceFormat,
};

/// Either transport, behind one blocking interface.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The final state of one compile submission.
#[derive(Debug)]
pub struct CompileOutcome {
    /// Server-assigned job id.
    pub job: u64,
    /// The streamed `stage` events, in arrival order (wire form).
    pub stage_events: Vec<Value>,
    /// The flow report from the `done` event.
    pub report: Value,
    /// Decoded bitstream bytes.
    pub bitstream: Vec<u8>,
    /// The span tree from the `done` event, when the request set
    /// `trace` (decode with [`fpga_flow::trace::spans_from_value`]).
    pub trace: Option<Value>,
    /// Warn/info design-rule findings from the `done` event (present
    /// when the compile ran with the `lint` option on).
    pub lint: Vec<Diagnostic>,
    /// Names of events this client did not recognize and skipped — a
    /// newer server. `flowc` surfaces these as warnings. Capped at
    /// [`MAX_UNKNOWN_EVENTS`]; the overflow is counted, not stored, so
    /// a chatty future-version peer cannot grow client memory.
    pub unknown_events: Vec<String>,
    /// Unknown events past the cap (skipped but not recorded by name).
    pub unknown_events_dropped: u64,
}

/// The final state of one `lint` submission.
#[derive(Debug)]
pub struct LintOutcome {
    /// Server-assigned job id.
    pub job: u64,
    /// Design name from the report.
    pub design: String,
    /// The last lint point the deep check reached (`"netlist"` ...
    /// `"bitstream"`).
    pub reached: String,
    /// Every finding, in flow order.
    pub diagnostics: Vec<Diagnostic>,
    /// The streamed `stage` events, in arrival order (wire form).
    pub stage_events: Vec<Value>,
    /// Unknown event names skipped along the way (capped at
    /// [`MAX_UNKNOWN_EVENTS`], overflow counted in
    /// `unknown_events_dropped`).
    pub unknown_events: Vec<String>,
    /// Unknown events past the cap (skipped but not recorded by name).
    pub unknown_events_dropped: u64,
}

/// The final state of one `verify` submission.
#[derive(Debug)]
pub struct VerifyOutcome {
    /// Server-assigned job id.
    pub job: u64,
    /// Design name from the report.
    pub design: String,
    /// The last verify point the equivalence check reached (`"mapped"`
    /// ... `"bitstream"`).
    pub reached: String,
    /// Every EQ finding, in flow order (empty means proven-equivalent
    /// at every checked point).
    pub diagnostics: Vec<Diagnostic>,
    /// The streamed `stage` events, in arrival order (wire form).
    pub stage_events: Vec<Value>,
    /// Unknown event names skipped along the way (capped at
    /// [`MAX_UNKNOWN_EVENTS`], overflow counted in
    /// `unknown_events_dropped`).
    pub unknown_events: Vec<String>,
    /// Unknown events past the cap (skipped but not recorded by name).
    pub unknown_events_dropped: u64,
}

/// How many distinct unknown-event names an outcome records before it
/// starts counting instead of storing — a misbehaving or far-future peer
/// streaming novel events must not grow client memory without bound.
pub const MAX_UNKNOWN_EVENTS: usize = 32;

/// Record an unknown event name under the cap; past it, only count.
fn note_unknown(names: &mut Vec<String>, dropped: &mut u64, name: String) {
    if names.len() < MAX_UNKNOWN_EVENTS {
        names.push(name);
    } else {
        *dropped += 1;
    }
}

/// Why a compile submission did not produce a bitstream.
#[derive(Debug)]
pub enum CompileError {
    /// The daemon refused to take the job (queue full, too many
    /// connections, shutting down). `retry_after_ms` is the server's
    /// backoff hint when it gave one.
    Rejected {
        reason: String,
        retry_after_ms: Option<u64>,
    },
    /// The flow itself failed: an ordinary stage error, or a stage
    /// panic / lost worker (`kind` distinguishes them). When the failure
    /// was a design-rule denial (stage `"lint"`), `diagnostics` carries
    /// the structured findings.
    Failed {
        stage: String,
        message: String,
        kind: Option<String>,
        diagnostics: Vec<Diagnostic>,
    },
    /// The job's deadline elapsed; `completed_stages` is how far it got.
    TimedOut {
        deadline_ms: Option<u64>,
        completed_stages: Vec<String>,
    },
    /// Transport-level trouble (connect, read, protocol violation).
    Io(io::Error),
}

impl CompileError {
    /// Whether trying again on a fresh connection can plausibly succeed:
    /// saturation rejections and transport errors are transient; flow
    /// failures, timeouts, and shutdown refusals are not.
    pub fn is_retryable(&self) -> bool {
        match self {
            CompileError::Rejected { reason, .. } => reason != "shutting down",
            CompileError::Io(_) => true,
            CompileError::Failed { .. } | CompileError::TimedOut { .. } => false,
        }
    }

    /// The server's minimum-backoff hint, if it sent one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            CompileError::Rejected { retry_after_ms, .. } => *retry_after_ms,
            _ => None,
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Rejected { reason, .. } => write!(f, "job rejected: {reason}"),
            CompileError::Failed { stage, message, .. } => write!(f, "[{stage}] {message}"),
            CompileError::TimedOut {
                deadline_ms,
                completed_stages,
            } => write!(
                f,
                "timeout after {}ms ({} stage(s) completed)",
                deadline_ms.unwrap_or(0),
                completed_stages.len()
            ),
            CompileError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<io::Error> for CompileError {
    fn from(e: io::Error) -> Self {
        CompileError::Io(e)
    }
}

impl From<CompileError> for io::Error {
    fn from(e: CompileError) -> io::Error {
        match e {
            CompileError::Io(e) => e,
            other => io::Error::other(other.to_string()),
        }
    }
}

/// A connected client. One request/response exchange at a time.
pub struct FlowClient {
    reader: BufReader<Conn>,
    writer: Conn,
}

impl FlowClient {
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<FlowClient> {
        Self::from_conn(Conn::Tcp(TcpStream::connect(addr)?))
    }

    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<FlowClient> {
        Self::from_conn(Conn::Unix(UnixStream::connect(path)?))
    }

    #[cfg(not(unix))]
    pub fn connect_unix(_path: impl AsRef<Path>) -> io::Result<FlowClient> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix sockets are not available on this platform",
        ))
    }

    fn from_conn(conn: Conn) -> io::Result<FlowClient> {
        let writer = conn.try_clone()?;
        Ok(FlowClient {
            reader: BufReader::new(conn),
            writer,
        })
    }

    fn send(&mut self, v: &Value) -> io::Result<()> {
        proto::write_line(&mut self.writer, v)
    }

    fn recv(&mut self) -> io::Result<Value> {
        proto::read_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// `ping` — returns the `pong` event (carries the server's flow and
    /// protocol versions).
    pub fn ping(&mut self) -> io::Result<Value> {
        self.send(&Request::Ping.to_value())?;
        self.recv()
    }

    /// `stats` — job counters plus per-stage cache metrics.
    pub fn stats(&mut self) -> io::Result<Value> {
        self.send(&Request::Stats.to_value())?;
        self.recv()
    }

    /// `metrics` — per-stage latency histograms, cache tiers, queue
    /// high-water mark. With `text`, the body carries a Prometheus-style
    /// exposition under `"text"` instead of structured fields.
    pub fn metrics(&mut self, text: bool) -> io::Result<Value> {
        self.send(&Request::Metrics { text }.to_value())?;
        self.recv()
    }

    /// `shutdown` — ask the daemon to drain and exit.
    pub fn shutdown_server(&mut self) -> io::Result<Value> {
        self.send(&Request::Shutdown.to_value())?;
        self.recv()
    }

    /// `status` — node health: queue depth and worker state on `flowd`,
    /// the per-backend health/breaker/queue table on `flow-gateway`.
    pub fn status(&mut self) -> io::Result<Value> {
        self.send(&Request::Status.to_value())?;
        self.recv()
    }

    /// Submit a design and block until it finishes, collecting the
    /// streamed stage events along the way. `options` uses the wire
    /// option names (`place_seed`, `place_effort`, `channel_width`,
    /// `verify_cycles`, `arch`); pass `Value::Null` for all-defaults.
    ///
    /// Flow errors and rejections come back as `io::ErrorKind::Other`
    /// with the server's message.
    pub fn compile(
        &mut self,
        format: &str,
        source: &str,
        options: Value,
    ) -> io::Result<CompileOutcome> {
        self.compile_detailed(format, source, options, None)
            .map_err(io::Error::from)
    }

    /// Like [`FlowClient::compile`], but with a per-job deadline and a
    /// typed error that distinguishes rejection / failure / timeout —
    /// what [`compile_with_retry`] needs to decide whether to retry.
    pub fn compile_detailed(
        &mut self,
        format: &str,
        source: &str,
        options: Value,
        deadline_ms: Option<u64>,
    ) -> Result<CompileOutcome, CompileError> {
        let format = source_format(format)?;
        let mut req = CompileRequest::new(format, source)
            .with_options(options)
            .map_err(|e| CompileError::Io(io::Error::new(io::ErrorKind::InvalidInput, e)))?;
        req.deadline_ms = deadline_ms;
        self.compile_request(&req)
    }

    /// The fully-typed submission path: send a [`CompileRequest`]
    /// (including its `trace` flag) and fold the event stream into a
    /// [`CompileOutcome`]. Every known event is matched exhaustively;
    /// unknown event names are collected, not fatal.
    pub fn compile_request(
        &mut self,
        req: &CompileRequest,
    ) -> Result<CompileOutcome, CompileError> {
        self.send(&Request::Compile(Box::new(req.clone())).to_value())?;

        let mut job = 0u64;
        let mut stage_events = Vec::new();
        let mut unknown_events = Vec::new();
        let mut unknown_events_dropped = 0u64;
        loop {
            let raw = self.recv()?;
            let event = match parse_event(&raw) {
                Ok(event) => event,
                Err(EventParseError::Unknown(name)) => {
                    // A newer server sent something we don't know yet;
                    // skipping keeps the session alive, recording it
                    // lets flowc warn.
                    note_unknown(&mut unknown_events, &mut unknown_events_dropped, name);
                    continue;
                }
                Err(e @ EventParseError::Malformed(_)) => {
                    return Err(CompileError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        e.to_string(),
                    )));
                }
            };
            match event {
                Event::Queued { job: id } => job = id,
                Event::Stage { .. } => stage_events.push(raw),
                Event::Done {
                    bitstream_hex,
                    report,
                    trace,
                    lint,
                    ..
                } => {
                    let bitstream = from_hex(&bitstream_hex).map_err(|e| {
                        CompileError::Io(io::Error::new(io::ErrorKind::InvalidData, e))
                    })?;
                    return Ok(CompileOutcome {
                        job,
                        stage_events,
                        report,
                        bitstream,
                        trace,
                        lint,
                        unknown_events,
                        unknown_events_dropped,
                    });
                }
                Event::Rejected {
                    reason,
                    retry_after_ms,
                    ..
                } => {
                    return Err(CompileError::Rejected {
                        reason,
                        retry_after_ms,
                    });
                }
                Event::Timeout {
                    deadline_ms,
                    completed_stages,
                    ..
                } => {
                    return Err(CompileError::TimedOut {
                        deadline_ms,
                        completed_stages,
                    });
                }
                Event::Error {
                    kind,
                    stage,
                    message,
                    retry_after_ms,
                    diagnostics,
                    ..
                } => {
                    // Saturation errors (connection cap) are rejections
                    // in spirit: same retry treatment as a full queue.
                    if kind.as_deref() == Some("overloaded") {
                        return Err(CompileError::Rejected {
                            reason: message,
                            retry_after_ms,
                        });
                    }
                    return Err(CompileError::Failed {
                        stage: stage.unwrap_or_else(|| "?".to_string()),
                        message,
                        kind,
                        diagnostics,
                    });
                }
                Event::Pong { .. }
                | Event::Stats(_)
                | Event::Metrics(_)
                | Event::Status(_)
                | Event::ShuttingDown
                | Event::Artifact { .. }
                | Event::ArtifactAck { .. }
                | Event::LintReport { .. }
                | Event::VerifyReport { .. } => {
                    return Err(CompileError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("event out of place in a compile stream: {}", raw),
                    )));
                }
            }
        }
    }

    /// Submit a design for a deep design-rule check (`lint` verb) and
    /// block until its `lint_report` arrives. The same rejection /
    /// failure / timeout errors as a compile apply; deny-severity
    /// findings are NOT an error — they ride back in the outcome for the
    /// caller to judge.
    pub fn lint_request(&mut self, req: &CompileRequest) -> Result<LintOutcome, CompileError> {
        self.send(&Request::Lint(Box::new(req.clone())).to_value())?;

        let mut job = 0u64;
        let mut stage_events = Vec::new();
        let mut unknown_events = Vec::new();
        let mut unknown_events_dropped = 0u64;
        loop {
            let raw = self.recv()?;
            let event = match parse_event(&raw) {
                Ok(event) => event,
                Err(EventParseError::Unknown(name)) => {
                    note_unknown(&mut unknown_events, &mut unknown_events_dropped, name);
                    continue;
                }
                Err(e @ EventParseError::Malformed(_)) => {
                    return Err(CompileError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        e.to_string(),
                    )));
                }
            };
            match event {
                Event::Queued { job: id } => job = id,
                Event::Stage { .. } => stage_events.push(raw),
                Event::LintReport {
                    design,
                    reached,
                    diagnostics,
                    ..
                } => {
                    return Ok(LintOutcome {
                        job,
                        design,
                        reached,
                        diagnostics,
                        stage_events,
                        unknown_events,
                        unknown_events_dropped,
                    });
                }
                Event::Rejected {
                    reason,
                    retry_after_ms,
                    ..
                } => {
                    return Err(CompileError::Rejected {
                        reason,
                        retry_after_ms,
                    });
                }
                Event::Timeout {
                    deadline_ms,
                    completed_stages,
                    ..
                } => {
                    return Err(CompileError::TimedOut {
                        deadline_ms,
                        completed_stages,
                    });
                }
                Event::Error {
                    kind,
                    stage,
                    message,
                    retry_after_ms,
                    diagnostics,
                    ..
                } => {
                    if kind.as_deref() == Some("overloaded") {
                        return Err(CompileError::Rejected {
                            reason: message,
                            retry_after_ms,
                        });
                    }
                    return Err(CompileError::Failed {
                        stage: stage.unwrap_or_else(|| "?".to_string()),
                        message,
                        kind,
                        diagnostics,
                    });
                }
                Event::Pong { .. }
                | Event::Stats(_)
                | Event::Metrics(_)
                | Event::Status(_)
                | Event::ShuttingDown
                | Event::Artifact { .. }
                | Event::ArtifactAck { .. }
                | Event::VerifyReport { .. }
                | Event::Done { .. } => {
                    return Err(CompileError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("event out of place in a lint stream: {}", raw),
                    )));
                }
            }
        }
    }

    /// Submit a design for a deep equivalence check (`verify` verb) and
    /// block until its `verify_report` arrives. The same rejection /
    /// failure / timeout errors as a compile apply; deny-severity EQ
    /// findings are NOT an error — they ride back in the outcome for
    /// the caller to judge.
    pub fn verify_request(&mut self, req: &CompileRequest) -> Result<VerifyOutcome, CompileError> {
        self.send(&Request::Verify(Box::new(req.clone())).to_value())?;

        let mut job = 0u64;
        let mut stage_events = Vec::new();
        let mut unknown_events = Vec::new();
        let mut unknown_events_dropped = 0u64;
        loop {
            let raw = self.recv()?;
            let event = match parse_event(&raw) {
                Ok(event) => event,
                Err(EventParseError::Unknown(name)) => {
                    note_unknown(&mut unknown_events, &mut unknown_events_dropped, name);
                    continue;
                }
                Err(e @ EventParseError::Malformed(_)) => {
                    return Err(CompileError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        e.to_string(),
                    )));
                }
            };
            match event {
                Event::Queued { job: id } => job = id,
                Event::Stage { .. } => stage_events.push(raw),
                Event::VerifyReport {
                    design,
                    reached,
                    diagnostics,
                    ..
                } => {
                    return Ok(VerifyOutcome {
                        job,
                        design,
                        reached,
                        diagnostics,
                        stage_events,
                        unknown_events,
                        unknown_events_dropped,
                    });
                }
                Event::Rejected {
                    reason,
                    retry_after_ms,
                    ..
                } => {
                    return Err(CompileError::Rejected {
                        reason,
                        retry_after_ms,
                    });
                }
                Event::Timeout {
                    deadline_ms,
                    completed_stages,
                    ..
                } => {
                    return Err(CompileError::TimedOut {
                        deadline_ms,
                        completed_stages,
                    });
                }
                Event::Error {
                    kind,
                    stage,
                    message,
                    retry_after_ms,
                    diagnostics,
                    ..
                } => {
                    if kind.as_deref() == Some("overloaded") {
                        return Err(CompileError::Rejected {
                            reason: message,
                            retry_after_ms,
                        });
                    }
                    return Err(CompileError::Failed {
                        stage: stage.unwrap_or_else(|| "?".to_string()),
                        message,
                        kind,
                        diagnostics,
                    });
                }
                Event::Pong { .. }
                | Event::Stats(_)
                | Event::Metrics(_)
                | Event::Status(_)
                | Event::ShuttingDown
                | Event::Artifact { .. }
                | Event::ArtifactAck { .. }
                | Event::LintReport { .. }
                | Event::Done { .. } => {
                    return Err(CompileError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("event out of place in a verify stream: {}", raw),
                    )));
                }
            }
        }
    }
}

/// Map a wire format name to [`SourceFormat`].
fn source_format(name: &str) -> Result<SourceFormat, CompileError> {
    match name {
        "vhdl" => Ok(SourceFormat::Vhdl),
        "blif" => Ok(SourceFormat::Blif),
        other => Err(CompileError::Io(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unknown format '{other}'"),
        ))),
    }
}

/// Backoff shape for [`compile_with_retry`]. Deterministic: the jitter
/// comes from `jitter_seed`, so a fixed seed gives a fixed schedule.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt after that.
    pub base_ms: u64,
    /// Upper bound on any single backoff.
    pub max_backoff_ms: u64,
    /// Seed for the jitter PRNG.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_ms: 50,
            max_backoff_ms: 2_000,
            jitter_seed: 0x5eed_f10d,
        }
    }
}

/// xorshift64 — enough randomness to de-synchronize retrying clients,
/// with no dependency and full determinism under a fixed seed.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Submit with retries: each attempt opens a fresh connection via
/// `connect` (the previous one may have been closed by an overload
/// rejection), and retryable failures back off exponentially with
/// jitter, never less than the server's `retry_after_ms` hint.
/// `on_retry(attempt, error, backoff_ms)` fires before each backoff —
/// `flowc` logs from it; tests use it as a deterministic hook.
///
/// The request's `deadline_ms` is a *total* budget measured from the
/// first attempt: each reattempt carries only the remaining budget, and
/// a backoff that would sleep past the deadline gives up with the last
/// error instead — cumulative backoff plus reattempts never exceed the
/// caller's deadline.
pub fn compile_with_retry(
    mut connect: impl FnMut() -> io::Result<FlowClient>,
    req: &CompileRequest,
    policy: &RetryPolicy,
    mut on_retry: impl FnMut(u32, &CompileError, u64),
) -> Result<CompileOutcome, CompileError> {
    let attempts = policy.max_attempts.max(1);
    let mut rng = policy.jitter_seed;
    let mut backoff = policy.base_ms.max(1);
    let started = std::time::Instant::now();
    let mut attempt_req = req.clone();
    for attempt in 1..=attempts {
        if let Some(total) = req.deadline_ms {
            // Hand the server only what is left of the budget (floored
            // at 1 ms so the attempt still reaches the deadline path
            // server-side rather than turning into "no deadline").
            let elapsed = started.elapsed().as_millis() as u64;
            attempt_req.deadline_ms = Some(total.saturating_sub(elapsed).max(1));
        }
        let err = match connect() {
            Ok(mut client) => match client.compile_request(&attempt_req) {
                Ok(outcome) => return Ok(outcome),
                Err(e) => e,
            },
            Err(e) => CompileError::Io(e),
        };
        if attempt == attempts || !err.is_retryable() {
            return Err(err);
        }
        // Full jitter over [backoff/2, backoff], floored by the hint.
        let jittered = backoff / 2 + xorshift64(&mut rng) % (backoff / 2 + 1);
        let sleep_ms = jittered.max(err.retry_after_ms().unwrap_or(0));
        if let Some(total) = req.deadline_ms {
            let elapsed = started.elapsed().as_millis() as u64;
            if elapsed.saturating_add(sleep_ms) >= total {
                // Backing off would sleep past the caller's deadline —
                // retrying is pointless, surface the last error now.
                return Err(err);
            }
        }
        on_retry(attempt, &err, sleep_ms);
        std::thread::sleep(Duration::from_millis(sleep_ms));
        backoff = (backoff * 2).min(policy.max_backoff_ms.max(1));
    }
    unreachable!("loop always returns")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_is_by_kind() {
        let full = CompileError::Rejected {
            reason: "queue full".to_string(),
            retry_after_ms: Some(100),
        };
        assert!(full.is_retryable());
        assert_eq!(full.retry_after_ms(), Some(100));
        let down = CompileError::Rejected {
            reason: "shutting down".to_string(),
            retry_after_ms: None,
        };
        assert!(!down.is_retryable());
        let failed = CompileError::Failed {
            stage: "route".to_string(),
            message: "unroutable".to_string(),
            kind: None,
            diagnostics: Vec::new(),
        };
        assert!(!failed.is_retryable());
        let timed_out = CompileError::TimedOut {
            deadline_ms: Some(5),
            completed_stages: vec![],
        };
        assert!(!timed_out.is_retryable());
        assert!(CompileError::Io(io::Error::other("refused")).is_retryable());
    }

    #[test]
    fn jitter_is_deterministic_under_a_fixed_seed() {
        let mut a = 42u64;
        let mut b = 42u64;
        let seq_a: Vec<u64> = (0..8).map(|_| xorshift64(&mut a) % 1000).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| xorshift64(&mut b) % 1000).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn retry_gives_up_on_non_retryable_errors_immediately() {
        let mut calls = 0u32;
        let result = compile_with_retry(
            || {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::Unsupported, "no server"))
            },
            &CompileRequest::new(SourceFormat::Vhdl, "entity e is end e;"),
            &RetryPolicy {
                max_attempts: 3,
                base_ms: 1,
                max_backoff_ms: 2,
                jitter_seed: 7,
            },
            |_, _, _| {},
        );
        // Io errors ARE retryable: all three attempts run.
        assert!(matches!(result, Err(CompileError::Io(_))));
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_budget_is_capped_by_the_request_deadline() {
        // A 50 ms total budget with a >=500 ms first backoff: the helper
        // must give up after the first attempt instead of sleeping past
        // the deadline, and must never invoke the retry hook.
        let mut req = CompileRequest::new(SourceFormat::Vhdl, "entity e is end e;");
        req.deadline_ms = Some(50);
        let mut calls = 0u32;
        let mut retries = 0u32;
        let started = std::time::Instant::now();
        let result = compile_with_retry(
            || {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, "down"))
            },
            &req,
            &RetryPolicy {
                max_attempts: 5,
                base_ms: 1_000,
                max_backoff_ms: 2_000,
                jitter_seed: 7,
            },
            |_, _, _| retries += 1,
        );
        assert!(matches!(result, Err(CompileError::Io(_))));
        assert_eq!(calls, 1, "no budget for a second attempt");
        assert_eq!(retries, 0, "gave up before any backoff");
        assert!(
            started.elapsed() < Duration::from_millis(400),
            "must not have slept a full backoff"
        );
    }
}
