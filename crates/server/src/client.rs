//! `flowc`'s library half: a blocking client for the flowd protocol.

use std::io::{self, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

use serde_json::Value;

use crate::proto::{self, from_hex};

/// Either transport, behind one blocking interface.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The final state of one compile submission.
#[derive(Debug)]
pub struct CompileOutcome {
    /// Server-assigned job id.
    pub job: u64,
    /// The streamed `stage` events, in arrival order.
    pub stage_events: Vec<Value>,
    /// The flow report from the `done` event.
    pub report: Value,
    /// Decoded bitstream bytes.
    pub bitstream: Vec<u8>,
}

/// A connected client. One request/response exchange at a time.
pub struct FlowClient {
    reader: BufReader<Conn>,
    writer: Conn,
}

impl FlowClient {
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<FlowClient> {
        Self::from_conn(Conn::Tcp(TcpStream::connect(addr)?))
    }

    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<FlowClient> {
        Self::from_conn(Conn::Unix(UnixStream::connect(path)?))
    }

    #[cfg(not(unix))]
    pub fn connect_unix(_path: impl AsRef<Path>) -> io::Result<FlowClient> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix sockets are not available on this platform",
        ))
    }

    fn from_conn(conn: Conn) -> io::Result<FlowClient> {
        let writer = conn.try_clone()?;
        Ok(FlowClient {
            reader: BufReader::new(conn),
            writer,
        })
    }

    fn send(&mut self, v: &Value) -> io::Result<()> {
        proto::write_line(&mut self.writer, v)
    }

    fn recv(&mut self) -> io::Result<Value> {
        proto::read_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// `ping` — returns the `pong` event (carries the server version).
    pub fn ping(&mut self) -> io::Result<Value> {
        self.send(&serde_json::json!({"cmd": "ping"}))?;
        self.recv()
    }

    /// `stats` — job counters plus per-stage cache metrics.
    pub fn stats(&mut self) -> io::Result<Value> {
        self.send(&serde_json::json!({"cmd": "stats"}))?;
        self.recv()
    }

    /// `shutdown` — ask the daemon to drain and exit.
    pub fn shutdown_server(&mut self) -> io::Result<Value> {
        self.send(&serde_json::json!({"cmd": "shutdown"}))?;
        self.recv()
    }

    /// Submit a design and block until it finishes, collecting the
    /// streamed stage events along the way. `options` uses the wire
    /// option names (`place_seed`, `place_effort`, `channel_width`,
    /// `verify_cycles`, `arch`); pass `Value::Null` for all-defaults.
    ///
    /// Flow errors and rejections come back as `io::ErrorKind::Other`
    /// with the server's message.
    pub fn compile(
        &mut self,
        format: &str,
        source: &str,
        options: Value,
    ) -> io::Result<CompileOutcome> {
        let mut req = serde_json::Map::new();
        req.insert("cmd".to_string(), serde_json::json!("compile"));
        req.insert("format".to_string(), serde_json::json!(format));
        req.insert("source".to_string(), serde_json::json!(source));
        if !options.is_null() {
            req.insert("options".to_string(), options);
        }
        self.send(&Value::Object(req))?;

        let mut job = 0u64;
        let mut stage_events = Vec::new();
        loop {
            let event = self.recv()?;
            match event.get("event").and_then(Value::as_str) {
                Some("queued") => {
                    job = event.get("job").and_then(Value::as_u64).unwrap_or(0);
                }
                Some("stage") => stage_events.push(event),
                Some("done") => {
                    let hex = event
                        .get("bitstream_hex")
                        .and_then(Value::as_str)
                        .unwrap_or_default();
                    let bitstream =
                        from_hex(hex).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    let report = event.get("report").cloned().unwrap_or(Value::Null);
                    return Ok(CompileOutcome {
                        job,
                        stage_events,
                        report,
                        bitstream,
                    });
                }
                Some("rejected") => {
                    let reason = event
                        .get("reason")
                        .and_then(Value::as_str)
                        .unwrap_or("rejected")
                        .to_string();
                    return Err(io::Error::other(format!("job rejected: {reason}")));
                }
                Some("error") => {
                    let stage = event.get("stage").and_then(Value::as_str).unwrap_or("?");
                    let message = event.get("message").and_then(Value::as_str).unwrap_or("");
                    return Err(io::Error::other(format!("[{stage}] {message}")));
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected event {other:?}"),
                    ));
                }
            }
        }
    }
}
