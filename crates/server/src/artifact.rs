//! Daemon-side client for the farm's shared artifact tier.
//!
//! When `flowd` runs with `--artifact-gateway`, its stage cache gets a
//! [`RemoteTierClient`] as its [`RemoteTier`]: on a local miss the cache
//! asks the gateway (`artifact_get`) whether an affinity peer already
//! holds the stage's raw store entry, and after a local compute it
//! offers the fresh entry back (`artifact_put`).
//!
//! The tier is strictly best-effort, and every failure path degrades to
//! a local recompute — never a job error:
//!
//! * each exchange is bounded by a connect/read/write timeout;
//! * a fetch makes at most [`FETCH_ATTEMPTS`] attempts with capped,
//!   jittered backoff between them;
//! * failures feed a [`CircuitBreaker`], so while the gateway is down
//!   fetches are skipped outright (a counter, not a stall);
//! * fetched bytes are *not* trusted here — the cache re-verifies the
//!   entry's digest via `DiskStore::admit_raw`, and a corrupt or
//!   truncated transfer is quarantined and treated as a miss.
//!
//! Worst case, a fetch costs `FETCH_ATTEMPTS` timed-out exchanges plus
//! one capped backoff sleep — a few seconds at the default 1s timeout —
//! after which the stage computes locally inside whatever deadline the
//! job still has. The deadline check runs at stage boundaries either
//! way, so the artifact tier can delay a job, never wedge it.

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use fpga_flow::RemoteTier;
use serde_json::Value;

use crate::breaker::CircuitBreaker;
use crate::metrics::RemoteTierCounters;
use crate::proto::{self, ReadLineError, Request};

/// Attempts per fetch (1 initial + 1 retry). Publishes never retry.
pub const FETCH_ATTEMPTS: u32 = 2;
/// First inter-attempt backoff; doubled (and jittered) up to the cap.
const BACKOFF_BASE_MS: u64 = 50;
const BACKOFF_CAP_MS: u64 = 250;
/// Consecutive failures that open the breaker.
const BREAKER_THRESHOLD: u32 = 3;
/// Quiet period before the breaker half-opens for one probe fetch.
const BREAKER_REOPEN_MS: u64 = 2_000;

/// [`RemoteTier`] implementation speaking the proto-5 artifact verbs to
/// a `flow-gateway`.
pub struct RemoteTierClient {
    gateway: String,
    timeout: Duration,
    max_line_bytes: usize,
    breaker: Mutex<CircuitBreaker>,
    rng: Mutex<u64>,
    /// Breaker clock epoch (breakers take ms-since-start).
    epoch: Instant,
    fetch_hits: AtomicU64,
    fetch_misses: AtomicU64,
    fetch_failures: AtomicU64,
    bytes_fetched: AtomicU64,
    published: AtomicU64,
    publish_failures: AtomicU64,
    breaker_skips: AtomicU64,
}

impl RemoteTierClient {
    pub fn new(gateway: String, timeout_ms: u64, max_line_bytes: usize) -> Self {
        RemoteTierClient {
            gateway,
            timeout: Duration::from_millis(timeout_ms.max(1)),
            max_line_bytes,
            breaker: Mutex::new(CircuitBreaker::new(
                BREAKER_THRESHOLD,
                BREAKER_REOPEN_MS,
                0x5eed_a57e,
            )),
            rng: Mutex::new(0x5eed_a57e),
            epoch: Instant::now(),
            fetch_hits: AtomicU64::new(0),
            fetch_misses: AtomicU64::new(0),
            fetch_failures: AtomicU64::new(0),
            bytes_fetched: AtomicU64::new(0),
            published: AtomicU64::new(0),
            publish_failures: AtomicU64::new(0),
            breaker_skips: AtomicU64::new(0),
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn lock_breaker(&self) -> MutexGuard<'_, CircuitBreaker> {
        self.breaker
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn next_rand(&self) -> u64 {
        let mut state = self
            .rng
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut x = *state | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    /// One timed request/reply exchange with the gateway.
    fn exchange(&self, req: &Request) -> io::Result<Value> {
        let sock = self.gateway.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "gateway resolves to nothing",
            )
        })?;
        let stream = TcpStream::connect_timeout(&sock, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        proto::write_line(&mut writer, &req.to_value())?;
        match proto::read_line_limited(&mut reader, self.max_line_bytes) {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "gateway closed",
            )),
            Err(ReadLineError::TooLong { limit }) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("gateway reply exceeds {limit} bytes"),
            )),
            Err(ReadLineError::BadJson(message)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("gateway sent bad JSON: {message}"),
            )),
            Err(ReadLineError::Io(e)) => Err(e),
        }
    }

    /// Snapshot for the daemon's `metrics` verb.
    pub fn counters(&self) -> RemoteTierCounters {
        RemoteTierCounters {
            fetch_hits: self.fetch_hits.load(Ordering::Relaxed),
            fetch_misses: self.fetch_misses.load(Ordering::Relaxed),
            fetch_failures: self.fetch_failures.load(Ordering::Relaxed),
            bytes_fetched: self.bytes_fetched.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            publish_failures: self.publish_failures.load(Ordering::Relaxed),
            breaker_skips: self.breaker_skips.load(Ordering::Relaxed),
            breaker: self.lock_breaker().state().name(),
        }
    }
}

/// Extract a hit's payload. Anything else — a miss, a v4 daemon's
/// "unknown cmd" error, garbled hex — is a miss, never an error.
fn artifact_payload(body: &Value) -> Option<Vec<u8>> {
    if body["event"].as_str() != Some("artifact") || body["hit"].as_bool() != Some(true) {
        return None;
    }
    proto::from_hex(body["data_hex"].as_str()?).ok()
}

impl RemoteTier for RemoteTierClient {
    fn fetch(&self, stage: &'static str, key: &str, kind: &'static str) -> Option<Vec<u8>> {
        if !self.lock_breaker().allow(self.now_ms()) {
            self.breaker_skips.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let req = Request::ArtifactGet {
            stage: stage.to_string(),
            key: key.to_string(),
            kind: kind.to_string(),
        };
        let mut backoff = BACKOFF_BASE_MS;
        for attempt in 0..FETCH_ATTEMPTS {
            if attempt > 0 {
                let jitter = backoff / 2 + self.next_rand() % (backoff / 2 + 1);
                std::thread::sleep(Duration::from_millis(jitter.min(BACKOFF_CAP_MS)));
                backoff = (backoff * 2).min(BACKOFF_CAP_MS);
                if !self.lock_breaker().allow(self.now_ms()) {
                    break;
                }
            }
            match self.exchange(&req) {
                Ok(body) => {
                    self.lock_breaker().on_success();
                    if let Some(raw) = artifact_payload(&body) {
                        self.fetch_hits.fetch_add(1, Ordering::Relaxed);
                        self.bytes_fetched
                            .fetch_add(raw.len() as u64, Ordering::Relaxed);
                        return Some(raw);
                    }
                    self.fetch_misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                Err(_) => {
                    self.lock_breaker().on_failure(self.now_ms());
                }
            }
        }
        self.fetch_failures.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn publish(&self, stage: &'static str, key: &str, kind: &'static str, raw: &[u8]) {
        if !self.lock_breaker().allow(self.now_ms()) {
            self.breaker_skips.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let req = Request::ArtifactPut {
            stage: stage.to_string(),
            key: key.to_string(),
            kind: kind.to_string(),
            data_hex: proto::to_hex(raw),
        };
        match self.exchange(&req) {
            Ok(body) => {
                self.lock_breaker().on_success();
                if body["event"].as_str() == Some("artifact_ack")
                    && body["stored"].as_bool() == Some(true)
                {
                    self.published.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.publish_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.lock_breaker().on_failure(self.now_ms());
                self.publish_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Event;
    use std::net::TcpListener;

    /// A one-shot fake gateway: accepts one connection, reads one
    /// request line, answers with the given event, closes.
    fn fake_gateway(reply: Event) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            if let Ok((stream, _)) = listener.accept() {
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let _ = proto::read_line_limited(&mut reader, 1 << 20);
                let _ = proto::write_line(&mut writer, &reply.to_value());
            }
        });
        addr
    }

    #[test]
    fn fetch_returns_a_hit_payload_and_counts_bytes() {
        let payload = b"raw store entry bytes".to_vec();
        let addr = fake_gateway(Event::Artifact {
            stage: "synthesis".into(),
            key: "k".into(),
            hit: true,
            data_hex: Some(proto::to_hex(&payload)),
        });
        let client = RemoteTierClient::new(addr, 2_000, 1 << 20);
        assert_eq!(client.fetch("synthesis", "k", "netlist"), Some(payload));
        let c = client.counters();
        assert_eq!(c.fetch_hits, 1);
        assert_eq!(c.bytes_fetched, 21);
        assert_eq!(c.breaker, "closed");
    }

    #[test]
    fn fetch_treats_a_miss_reply_as_none() {
        let addr = fake_gateway(Event::Artifact {
            stage: "synthesis".into(),
            key: "k".into(),
            hit: false,
            data_hex: None,
        });
        let client = RemoteTierClient::new(addr, 2_000, 1 << 20);
        assert_eq!(client.fetch("synthesis", "k", "netlist"), None);
        assert_eq!(client.counters().fetch_misses, 1);
        assert_eq!(client.counters().fetch_failures, 0);
    }

    #[test]
    fn fetch_degrades_when_the_gateway_is_down_and_breaker_opens() {
        // Nothing listens here; connects are refused immediately.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
            // listener dropped: the port is closed again
        };
        let client = RemoteTierClient::new(dead, 200, 1 << 20);
        assert_eq!(client.fetch("synthesis", "k", "netlist"), None);
        assert_eq!(client.fetch("synthesis", "k", "netlist"), None);
        let c = client.counters();
        assert!(c.fetch_failures >= 1, "errors counted: {c:?}");
        // 2 attempts per fetch and a threshold of 3: by now it's open,
        // and the next fetch is a skip, not a stall.
        assert_eq!(c.breaker, "open");
        assert_eq!(client.fetch("synthesis", "k", "netlist"), None);
        assert!(client.counters().breaker_skips >= 1);
    }

    #[test]
    fn publish_counts_ack_outcomes() {
        let addr = fake_gateway(Event::ArtifactAck {
            stored: true,
            message: None,
        });
        let client = RemoteTierClient::new(addr, 2_000, 1 << 20);
        client.publish("synthesis", "k", "netlist", b"bytes");
        assert_eq!(client.counters().published, 1);
        // Second publish hits a dead port (the fake served once).
        client.publish("synthesis", "k", "netlist", b"bytes");
        assert_eq!(client.counters().publish_failures, 1);
    }
}
