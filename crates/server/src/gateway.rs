//! `flow-gateway` — the farm's front door.
//!
//! A gateway sits in front of N `flowd` backends and gives clients one
//! address that survives node death and overload:
//!
//! * **Affinity sharding.** Jobs are routed by rendezvous hashing over
//!   the stage-cache key material (format + source + options), so
//!   resubmissions of the same design land on the backend that already
//!   holds its cached stage artifacts — the shared-cache win without a
//!   shared disk.
//! * **Health checks + circuit breakers.** A background prober pings
//!   every backend (`proto_version` hello) on an interval; probe and job
//!   failures feed a per-backend [`CircuitBreaker`], so a dead node is
//!   cut off after a few failures and re-probed with a jittered backoff
//!   instead of hammering it in lockstep.
//! * **Mid-job failover.** If a backend dies mid-pipeline (connection
//!   drop, read timeout, SIGKILL), the gateway replays the job on the
//!   next-best healthy peer, carrying only the *remaining* deadline
//!   budget. The client sees one `queued` and exactly one terminal
//!   event; stage events may repeat across attempts (the peer re-runs
//!   the pipeline, cache-accelerated), terminals never do.
//! * **Tenant fair-share.** Admission runs through the
//!   [`TenantGovernor`]: token-bucket quotas per tenant (the optional
//!   `tenant` request field, proto v4) and weighted fair queuing, with
//!   bounded waiting — overload sheds with a `retry_after_ms` hint
//!   instead of queueing without limit.
//!
//! The gateway speaks the same typed protocol as `flowd` (`ping`,
//! `status`, `metrics`, `stats`, `compile`, `lint`, `shutdown`), so
//! `flowc` and `qor_bench --via-daemon` work against either unchanged.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use fpga_flow::hash::digest_hex;
use serde_json::Value;

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::metrics::{
    BackendSnapshot, GatewayArtifactCounters, GatewayJobCounters, GatewaySnapshot,
};
use crate::proto::{self, CompileRequest, Event, ReadLineError, Request, PROTO_VERSION};
use crate::tenancy::{AdmitOutcome, GovernorConfig, TenantGovernor};

/// Gateway tuning. Durations are milliseconds, like [`super::ServerConfig`].
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Listen address (`host:port`; port 0 picks a free one).
    pub tcp_addr: String,
    /// Backend `flowd` addresses, in priority-independent order.
    pub backends: Vec<String>,
    /// Health-probe period.
    pub health_interval_ms: u64,
    /// Connect/read timeout for probes, backend connects, and scrapes.
    pub probe_timeout_ms: u64,
    /// Consecutive failures that trip a backend's breaker.
    pub breaker_threshold: u32,
    /// Base quiet period before a tripped breaker half-opens.
    pub breaker_reopen_ms: u64,
    /// Seed for breaker reopen jitter (pin for deterministic chaos runs).
    pub jitter_seed: u64,
    /// Admission policy (quotas, fair-queue weights, bounds).
    pub governor: GovernorConfig,
    /// Client-side guards, mirroring the daemon's. `idle_timeout_ms`
    /// also bounds (plus slack) per-event backend reads for jobs with
    /// no deadline; `None` disables both.
    pub idle_timeout_ms: Option<u64>,
    pub max_line_bytes: usize,
    pub max_connections: usize,
    /// Route a job to an idle peer when its affinity backend is busy.
    /// The artifact tier keeps the steal cheap: the idle peer fetches
    /// the job's warm stage prefix remotely instead of recomputing it.
    pub steal: bool,
    /// Chaos hook: flip one byte of every artifact payload served
    /// through the gateway, so receivers must quarantine and recompute.
    pub corrupt_artifacts: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            tcp_addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            health_interval_ms: 500,
            probe_timeout_ms: 1_000,
            breaker_threshold: 3,
            breaker_reopen_ms: 5_000,
            jitter_seed: 0x5eed_f10d,
            governor: GovernorConfig::default(),
            idle_timeout_ms: Some(300_000),
            max_line_bytes: 8 * 1024 * 1024,
            max_connections: 256,
            steal: true,
            corrupt_artifacts: false,
        }
    }
}

/// Rendezvous order: backends ranked by `digest(key ‖ addr)` descending.
/// Deterministic, uniform, and stable under fleet changes — removing one
/// backend only moves the jobs that hashed to it.
pub fn affinity_order(key: &str, addrs: &[String]) -> Vec<usize> {
    let mut scored: Vec<(String, usize)> = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| (digest_hex(&[key.as_bytes(), addr.as_bytes()]), i))
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0));
    scored.into_iter().map(|(_, i)| i).collect()
}

/// The affinity key for a job: exactly the request material that
/// determines the stage-cache key on a backend, so identical
/// resubmissions rendezvous on the same node. `kind` is the wire verb
/// (`"compile"` / `"lint"`). Public so tests can predict routing.
pub fn affinity_key(kind: &str, req: &CompileRequest) -> String {
    format!(
        "{}\u{1f}{}\u{1f}{}\u{1f}{}",
        kind,
        req.format.name(),
        req.source,
        req.options
    )
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobKind {
    Compile,
    Lint,
    Verify,
}

/// Live per-backend state.
struct Backend {
    addr: String,
    breaker: Mutex<CircuitBreaker>,
    /// Separate breaker for artifact fetch/put exchanges: a flaky
    /// artifact path must never stop job routing, and vice versa.
    fetch_breaker: Mutex<CircuitBreaker>,
    /// Last health probe succeeded.
    probe_ok: AtomicBool,
    in_flight: AtomicU64,
    requests: AtomicU64,
    failures: AtomicU64,
    failovers: AtomicU64,
    steals: AtomicU64,
}

impl Backend {
    fn lock_breaker(&self) -> MutexGuard<'_, CircuitBreaker> {
        self.breaker
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_fetch_breaker(&self) -> MutexGuard<'_, CircuitBreaker> {
        self.fetch_breaker
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn snapshot(&self) -> BackendSnapshot {
        let breaker = self.lock_breaker();
        BackendSnapshot {
            addr: self.addr.clone(),
            healthy: self.probe_ok.load(Ordering::Relaxed) && breaker.state() != BreakerState::Open,
            breaker: breaker.state().name(),
            breaker_transitions: breaker.counters(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            fetch_breaker: self.lock_fetch_breaker().state().name(),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }
}

/// Gateway-side artifact-tier traffic counters (atomics; snapshotted
/// into [`GatewayArtifactCounters`]).
#[derive(Default)]
struct ArtifactStats {
    gets: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    fetch_failures: AtomicU64,
    puts: AtomicU64,
    put_failures: AtomicU64,
    bytes_served: AtomicU64,
    bytes_stored: AtomicU64,
    corrupted: AtomicU64,
}

impl ArtifactStats {
    fn snapshot(&self) -> GatewayArtifactCounters {
        GatewayArtifactCounters {
            gets: self.gets.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fetch_failures: self.fetch_failures.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            put_failures: self.put_failures.load(Ordering::Relaxed),
            bytes_served: self.bytes_served.load(Ordering::Relaxed),
            bytes_stored: self.bytes_stored.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    config: GatewayConfig,
    backends: Vec<Arc<Backend>>,
    governor: Arc<TenantGovernor>,
    artifacts: ArtifactStats,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_shed: AtomicU64,
    jobs_timed_out: AtomicU64,
    next_job_id: AtomicU64,
    open_connections: AtomicU64,
    connections_rejected: AtomicU64,
    shutting_down: AtomicBool,
    /// Breaker clock epoch: breakers take ms-since-start.
    epoch: Instant,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn snapshot(&self, cache: Option<(u64, u64, u64, u64)>) -> GatewaySnapshot {
        let (inflight, queued) = self.governor.depths();
        let gov = self.governor.config();
        GatewaySnapshot {
            jobs: GatewayJobCounters {
                submitted: self.jobs_submitted.load(Ordering::Relaxed),
                completed: self.jobs_completed.load(Ordering::Relaxed),
                failed: self.jobs_failed.load(Ordering::Relaxed),
                shed: self.jobs_shed.load(Ordering::Relaxed),
                timed_out: self.jobs_timed_out.load(Ordering::Relaxed),
            },
            backends: self.backends.iter().map(|b| b.snapshot()).collect(),
            tenants: self.governor.tenant_snapshots(),
            admission_inflight: inflight as u64,
            admission_queued: queued as u64,
            max_inflight: gov.max_inflight as u64,
            queue_bound: gov.queue_bound as u64,
            artifacts: self.artifacts.snapshot(),
            cache,
        }
    }

    /// The `status` verb body: the per-backend health/breaker table.
    fn status_json(&self) -> Value {
        let snap = self.snapshot(None);
        let mut body = match snap.to_json() {
            Value::Object(map) => map,
            other => {
                let mut map = serde_json::Map::new();
                map.insert("body".into(), other);
                map
            }
        };
        body.insert("event".into(), "status".into());
        body.insert("role".into(), "gateway".into());
        body.insert("version".into(), fpga_flow::FLOW_VERSION.into());
        body.insert("proto_version".into(), PROTO_VERSION.into());
        body.insert(
            "shutting_down".into(),
            self.shutting_down.load(Ordering::SeqCst).into(),
        );
        Value::Object(body)
    }

    /// Aggregate the `cache` object across reachable backends so
    /// cache-aware clients see one farm-wide view.
    fn scrape_backend_caches(&self) -> Option<(u64, u64, u64, u64)> {
        let timeout = Duration::from_millis(self.config.probe_timeout_ms.max(1));
        let mut total = (0u64, 0u64, 0u64, 0u64);
        let mut any = false;
        for backend in &self.backends {
            let Ok(body) = backend_verb(
                &backend.addr,
                &Request::Metrics { text: false },
                timeout,
                self.config.max_line_bytes,
            ) else {
                continue;
            };
            let cache = &body["cache"];
            let get = |k: &str| cache[k].as_u64().unwrap_or(0);
            total.0 += get("memory_hits");
            total.1 += get("disk_hits");
            total.2 += get("remote_hits");
            total.3 += get("misses");
            any = true;
        }
        any.then_some(total)
    }
}

/// One short request/response exchange with a backend (probe, scrape,
/// artifact fetch). The reply read is line-length-bounded like every
/// other socket read in the farm — a misbehaving backend cannot balloon
/// gateway memory with one endless line.
fn backend_verb(
    addr: &str,
    req: &Request,
    timeout: Duration,
    max_line_bytes: usize,
) -> io::Result<Value> {
    let sock = resolve(addr)?;
    let stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    proto::write_line(&mut writer, &req.to_value())?;
    match proto::read_line_limited(&mut reader, max_line_bytes) {
        Ok(Some(v)) => Ok(v),
        Ok(None) => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "backend closed",
        )),
        Err(ReadLineError::TooLong { limit }) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("backend reply exceeds {limit} bytes"),
        )),
        Err(ReadLineError::BadJson(message)) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("backend sent bad JSON: {message}"),
        )),
        Err(ReadLineError::Io(e)) => Err(e),
    }
}

fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            "address resolves to nothing",
        )
    })
}

/// A running gateway (mirrors [`super::Server`]'s lifecycle).
pub struct Gateway {
    shared: Arc<Shared>,
    tcp_addr: SocketAddr,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Gateway {
    pub fn start(config: GatewayConfig) -> Result<Gateway, String> {
        if config.backends.is_empty() {
            return Err("gateway needs at least one --backend".to_string());
        }
        let listener = TcpListener::bind(&config.tcp_addr)
            .map_err(|e| format!("bind {}: {e}", config.tcp_addr))?;
        let tcp_addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let backends: Vec<Arc<Backend>> = config
            .backends
            .iter()
            .enumerate()
            .map(|(i, addr)| {
                Arc::new(Backend {
                    addr: addr.clone(),
                    breaker: Mutex::new(CircuitBreaker::new(
                        config.breaker_threshold,
                        config.breaker_reopen_ms,
                        // Distinct seed per backend: no lockstep reprobes.
                        config.jitter_seed.wrapping_add(i as u64 + 1),
                    )),
                    fetch_breaker: Mutex::new(CircuitBreaker::new(
                        config.breaker_threshold,
                        config.breaker_reopen_ms,
                        config.jitter_seed.wrapping_add(0x100 + i as u64),
                    )),
                    probe_ok: AtomicBool::new(true),
                    in_flight: AtomicU64::new(0),
                    requests: AtomicU64::new(0),
                    failures: AtomicU64::new(0),
                    failovers: AtomicU64::new(0),
                    steals: AtomicU64::new(0),
                })
            })
            .collect();
        let governor = TenantGovernor::new(config.governor.clone());
        let shared = Arc::new(Shared {
            config,
            backends,
            governor,
            artifacts: ArtifactStats::default(),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_shed: AtomicU64::new(0),
            jobs_timed_out: AtomicU64::new(0),
            next_job_id: AtomicU64::new(1),
            open_connections: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            epoch: Instant::now(),
        });

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name("gw-accept".to_string())
                    .spawn(move || accept_loop(listener, &shared))
                    .map_err(|e| format!("spawn accept loop: {e}"))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name("gw-health".to_string())
                    .spawn(move || health_loop(&shared))
                    .map_err(|e| format!("spawn health loop: {e}"))?,
            );
        }
        Ok(Gateway {
            shared,
            tcp_addr,
            threads,
        })
    }

    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// The `status` verb's body.
    pub fn status_json(&self) -> Value {
        self.shared.status_json()
    }

    /// The `metrics` verb's JSON body (without backend cache scrape).
    pub fn metrics_json(&self) -> Value {
        self.shared.snapshot(None).to_json()
    }

    /// Prometheus text exposition of the gateway family.
    pub fn metrics_text(&self) -> String {
        self.shared.snapshot(None).to_prometheus_text()
    }

    /// Stop accepting, poke the listener awake, join the daemon threads.
    pub fn shutdown(mut self) {
        trigger_shutdown(&self.shared, self.tcp_addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        drain_connections(&self.shared);
    }

    /// Block until a client's `shutdown` verb stops the gateway.
    pub fn wait(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        drain_connections(&self.shared);
    }
}

fn trigger_shutdown(shared: &Arc<Shared>, tcp_addr: SocketAddr) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    // Poke the blocking accept() so the loop observes the flag.
    let _ = TcpStream::connect_timeout(&tcp_addr, Duration::from_millis(250));
}

/// Bounded grace for in-flight connection threads to finish final writes.
fn drain_connections(shared: &Arc<Shared>) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while shared.open_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let open = shared.open_connections.fetch_add(1, Ordering::SeqCst) + 1;
        if open > shared.config.max_connections as u64 {
            shared.open_connections.fetch_sub(1, Ordering::SeqCst);
            shared.connections_rejected.fetch_add(1, Ordering::Relaxed);
            let mut writer = stream;
            let _ = proto::write_line(
                &mut writer,
                &Event::Error {
                    job: None,
                    kind: Some("overloaded".to_string()),
                    stage: None,
                    message: "too many connections".to_string(),
                    retry_after_ms: Some(shared.config.governor.retry_after_ms),
                    diagnostics: Vec::new(),
                }
                .to_value(),
            );
            continue;
        }
        let conn_shared = Arc::clone(shared);
        let spawned = thread::Builder::new()
            .name("gw-conn".to_string())
            .spawn(move || {
                serve_connection(stream, &conn_shared);
                conn_shared.open_connections.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            shared.open_connections.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Probe every backend on the configured interval, feeding breakers.
fn health_loop(shared: &Arc<Shared>) {
    let interval = Duration::from_millis(shared.config.health_interval_ms.max(10));
    let timeout = Duration::from_millis(shared.config.probe_timeout_ms.max(1));
    while !shared.shutting_down.load(Ordering::SeqCst) {
        for backend in &shared.backends {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            // Respect the breaker: while open, no probes until the
            // jittered reopen deadline grants the half-open slot.
            if !backend.lock_breaker().allow(shared.now_ms()) {
                continue;
            }
            let ok = matches!(
                backend_verb(
                    &backend.addr,
                    &Request::Ping,
                    timeout,
                    shared.config.max_line_bytes
                ),
                Ok(ref v) if v["event"].as_str() == Some("pong")
            );
            backend.probe_ok.store(ok, Ordering::Relaxed);
            let mut breaker = backend.lock_breaker();
            if ok {
                breaker.on_success();
            } else {
                breaker.on_failure(shared.now_ms());
            }
        }
        // Sleep in small steps so shutdown is prompt.
        let mut slept = Duration::ZERO;
        while slept < interval && !shared.shutting_down.load(Ordering::SeqCst) {
            let step = Duration::from_millis(20).min(interval - slept);
            thread::sleep(step);
            slept += step;
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    if let Some(ms) = shared.config.idle_timeout_ms {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(ms.max(1))));
    }
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match proto::read_line_limited(&mut reader, shared.config.max_line_bytes) {
            Ok(Some(v)) => v,
            Ok(None) => return,
            Err(ReadLineError::TooLong { limit }) => {
                if proto::write_line(
                    &mut writer,
                    &conn_error(
                        Some("oversized"),
                        format!("request line exceeds {limit} bytes"),
                    ),
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
            Err(ReadLineError::BadJson(message)) => {
                let _ = proto::write_line(
                    &mut writer,
                    &conn_error(None, format!("bad JSON: {message}")),
                );
                return;
            }
            Err(ReadLineError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                let _ = proto::write_line(
                    &mut writer,
                    &conn_error(Some("idle-timeout"), "connection idle too long".to_string()),
                );
                return;
            }
            Err(ReadLineError::Io(_)) => return,
        };
        let req = match proto::parse_request_value(&line) {
            Ok(req) => req,
            Err(message) => {
                let _ = proto::write_line(&mut writer, &conn_error(None, message));
                continue;
            }
        };
        // Exhaustive, like the daemon: new verbs must be answered here.
        match req {
            Request::Ping => {
                let pong = Event::Pong {
                    version: fpga_flow::FLOW_VERSION.to_string(),
                    proto_version: PROTO_VERSION,
                };
                let _ = proto::write_line(&mut writer, &pong.to_value());
            }
            Request::Stats => {
                let snap = shared.snapshot(None);
                let mut body = match snap.to_json() {
                    Value::Object(map) => map,
                    _ => serde_json::Map::new(),
                };
                body.insert("event".into(), "stats".into());
                body.insert("version".into(), fpga_flow::FLOW_VERSION.into());
                let _ =
                    proto::write_line(&mut writer, &Event::Stats(Value::Object(body)).to_value());
            }
            Request::Metrics { text } => {
                let snap = shared.snapshot(shared.scrape_backend_caches());
                let body = if text {
                    serde_json::json!({
                        "event": "metrics",
                        "format": "text",
                        "text": snap.to_prometheus_text(),
                    })
                } else {
                    snap.to_json()
                };
                let _ = proto::write_line(&mut writer, &Event::Metrics(body).to_value());
            }
            Request::Status => {
                let _ =
                    proto::write_line(&mut writer, &Event::Status(shared.status_json()).to_value());
            }
            Request::Shutdown => {
                // The gateway stops; backends keep running (they have
                // their own shutdown verb).
                let tcp_addr = writer.local_addr().ok();
                let _ = proto::write_line(&mut writer, &Event::ShuttingDown.to_value());
                if let Some(addr) = tcp_addr {
                    trigger_shutdown(shared, addr);
                }
                return;
            }
            Request::Compile(req) => {
                if !handle_job(JobKind::Compile, *req, shared, &mut writer) {
                    return; // client gone mid-stream
                }
            }
            Request::Lint(req) => {
                if !handle_job(JobKind::Lint, *req, shared, &mut writer) {
                    return;
                }
            }
            Request::Verify(req) => {
                if !handle_job(JobKind::Verify, *req, shared, &mut writer) {
                    return;
                }
            }
            Request::ArtifactGet { stage, key, kind } => {
                let event = handle_artifact_get(shared, &stage, &key, &kind);
                let _ = proto::write_line(&mut writer, &event.to_value());
            }
            Request::ArtifactPut {
                stage,
                key,
                kind,
                data_hex,
            } => {
                let event = handle_artifact_put(shared, &stage, &key, &kind, &data_hex);
                let _ = proto::write_line(&mut writer, &event.to_value());
            }
        }
    }
}

/// Serve an `artifact_get` by asking affinity peers, best-ranked first,
/// each behind its own fetch breaker. Every failure mode — no backend,
/// breaker open, exchange error, peer without the entry — collapses to
/// a `hit=false` reply; the requesting daemon then recomputes locally,
/// never errors.
fn handle_artifact_get(shared: &Arc<Shared>, stage: &str, key: &str, kind: &str) -> Event {
    shared.artifacts.gets.fetch_add(1, Ordering::Relaxed);
    let timeout = Duration::from_millis(shared.config.probe_timeout_ms.max(1));
    let req = Request::ArtifactGet {
        stage: stage.to_string(),
        key: key.to_string(),
        kind: kind.to_string(),
    };
    for &i in &affinity_order(key, &shared.config.backends) {
        let backend = &shared.backends[i];
        if !backend.lock_fetch_breaker().allow(shared.now_ms()) {
            continue;
        }
        match backend_verb(&backend.addr, &req, timeout, shared.config.max_line_bytes) {
            Ok(body) => {
                // Any well-formed answer counts as a live backend — a
                // version-4 daemon's "unknown cmd" error is just a miss.
                backend.lock_fetch_breaker().on_success();
                if body["event"].as_str() == Some("artifact") && body["hit"].as_bool() == Some(true)
                {
                    if let Some(data_hex) = body["data_hex"].as_str() {
                        let mut data_hex = data_hex.to_string();
                        if shared.config.corrupt_artifacts {
                            corrupt_hex(&mut data_hex);
                            shared.artifacts.corrupted.fetch_add(1, Ordering::Relaxed);
                        }
                        shared.artifacts.hits.fetch_add(1, Ordering::Relaxed);
                        shared
                            .artifacts
                            .bytes_served
                            .fetch_add((data_hex.len() / 2) as u64, Ordering::Relaxed);
                        return Event::Artifact {
                            stage: stage.to_string(),
                            key: key.to_string(),
                            hit: true,
                            data_hex: Some(data_hex),
                        };
                    }
                }
            }
            Err(_) => {
                shared
                    .artifacts
                    .fetch_failures
                    .fetch_add(1, Ordering::Relaxed);
                backend.lock_fetch_breaker().on_failure(shared.now_ms());
            }
        }
    }
    shared.artifacts.misses.fetch_add(1, Ordering::Relaxed);
    Event::Artifact {
        stage: stage.to_string(),
        key: key.to_string(),
        hit: false,
        data_hex: None,
    }
}

/// Replicas an `artifact_put` fans out to: two affinity peers, so the
/// entry survives one node's SIGKILL and the next fetch for it still
/// lands warm.
const PUT_REPLICAS: usize = 2;

/// Serve an `artifact_put` by replicating to the first
/// [`PUT_REPLICAS`] fetch-breaker-admitted peers in affinity order.
/// Best-effort: the ack reports whether *any* replica stored it, and
/// the publishing daemon ignores even that — publish failures only
/// show in counters.
fn handle_artifact_put(
    shared: &Arc<Shared>,
    stage: &str,
    key: &str,
    kind: &str,
    data_hex: &str,
) -> Event {
    shared.artifacts.puts.fetch_add(1, Ordering::Relaxed);
    shared
        .artifacts
        .bytes_stored
        .fetch_add((data_hex.len() / 2) as u64, Ordering::Relaxed);
    let timeout = Duration::from_millis(shared.config.probe_timeout_ms.max(1));
    let req = Request::ArtifactPut {
        stage: stage.to_string(),
        key: key.to_string(),
        kind: kind.to_string(),
        data_hex: data_hex.to_string(),
    };
    let mut stored = 0usize;
    let mut attempted = 0usize;
    for &i in &affinity_order(key, &shared.config.backends) {
        if attempted >= PUT_REPLICAS {
            break;
        }
        let backend = &shared.backends[i];
        if !backend.lock_fetch_breaker().allow(shared.now_ms()) {
            continue;
        }
        attempted += 1;
        match backend_verb(&backend.addr, &req, timeout, shared.config.max_line_bytes) {
            Ok(body) => {
                backend.lock_fetch_breaker().on_success();
                if body["event"].as_str() == Some("artifact_ack")
                    && body["stored"].as_bool() == Some(true)
                {
                    stored += 1;
                } else {
                    shared
                        .artifacts
                        .put_failures
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                shared
                    .artifacts
                    .put_failures
                    .fetch_add(1, Ordering::Relaxed);
                backend.lock_fetch_breaker().on_failure(shared.now_ms());
            }
        }
    }
    Event::ArtifactAck {
        stored: stored > 0,
        message: (stored == 0).then(|| "no backend stored the artifact".to_string()),
    }
}

/// Flip the payload's first byte while keeping the hex well-formed, so
/// the receiver's digest verification — not its hex decoder — is what
/// catches the corruption.
fn corrupt_hex(s: &mut String) {
    if s.starts_with('0') {
        s.replace_range(0..1, "1");
    } else if !s.is_empty() {
        s.replace_range(0..1, "0");
    }
}

fn conn_error(kind: Option<&str>, message: String) -> Value {
    Event::Error {
        job: None,
        kind: kind.map(str::to_string),
        stage: None,
        message,
        retry_after_ms: None,
        diagnostics: Vec::new(),
    }
    .to_value()
}

/// How one attempt against one backend ended.
enum Attempt {
    /// A terminal event was forwarded to the client; the job is over.
    Terminal(Terminal),
    /// The client connection broke; the job is abandoned.
    ClientGone,
    /// The backend failed mid-job (connect, drop, lost worker) — a
    /// breaker failure; retry on a peer.
    Transient(String),
    /// The backend refused the job (queue full / shutting down) — not a
    /// breaker failure; try a peer.
    Saturated { retry_after_ms: Option<u64> },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Terminal {
    Completed,
    Failed,
    TimedOut,
}

/// Run one job through admission, affinity routing, and failover.
/// Returns `false` when the client connection broke.
fn handle_job(
    kind: JobKind,
    req: CompileRequest,
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
) -> bool {
    let started = Instant::now();
    let job_id = shared.next_job_id.fetch_add(1, Ordering::SeqCst);
    shared.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    let total_deadline_ms = req.deadline_ms;
    let deadline = total_deadline_ms.map(|ms| started + Duration::from_millis(ms));
    let tenant = req.tenant.clone().unwrap_or_else(|| "anon".to_string());

    // Admission first: quota + fair queue + bounded wait.
    let permit = match shared.governor.admit(&tenant, deadline) {
        AdmitOutcome::Admitted(permit) => permit,
        AdmitOutcome::Shed { retry_after_ms } => {
            shared.jobs_shed.fetch_add(1, Ordering::Relaxed);
            return proto::write_line(
                writer,
                &Event::Rejected {
                    job: job_id,
                    reason: format!(
                        "gateway saturated: tenant '{tenant}' over quota or queue full"
                    ),
                    retry_after_ms: Some(retry_after_ms),
                }
                .to_value(),
            )
            .is_ok();
        }
        AdmitOutcome::Expired => {
            shared.jobs_timed_out.fetch_add(1, Ordering::Relaxed);
            return proto::write_line(
                writer,
                &Event::Timeout {
                    job: job_id,
                    deadline_ms: total_deadline_ms,
                    completed_stages: Vec::new(),
                    message: "deadline elapsed while queued at the gateway".to_string(),
                }
                .to_value(),
            )
            .is_ok();
        }
    };
    // The permit lives for the rest of the job; dropping it (any return
    // path) releases the slot and pumps the next waiter.
    let _permit = permit;

    // The client hears `queued` from the gateway exactly once, before
    // the first attempt; backend `queued` events are swallowed.
    if proto::write_line(writer, &Event::Queued { job: job_id }.to_value()).is_err() {
        return false;
    }

    let verb = match kind {
        JobKind::Compile => "compile",
        JobKind::Lint => "lint",
        JobKind::Verify => "verify",
    };
    let order = affinity_order(&affinity_key(verb, &req), &shared.config.backends);
    let mut tried = vec![false; shared.backends.len()];
    let mut completed_stages: Vec<String> = Vec::new();
    let mut last_saturated: Option<Option<u64>> = None;
    let mut last_transient: Option<String> = None;
    let mut prior_failure = false;

    loop {
        // Remaining deadline budget, or a timeout terminal if spent.
        let remaining_ms = match total_deadline_ms {
            None => None,
            Some(total) => {
                let elapsed = started.elapsed().as_millis() as u64;
                let left = total.saturating_sub(elapsed);
                if left == 0 {
                    shared.jobs_timed_out.fetch_add(1, Ordering::Relaxed);
                    return proto::write_line(
                        writer,
                        &Event::Timeout {
                            job: job_id,
                            deadline_ms: total_deadline_ms,
                            completed_stages: completed_stages.clone(),
                            message: format!(
                                "deadline of {total}ms exhausted across {} attempt(s)",
                                tried.iter().filter(|t| **t).count()
                            ),
                        }
                        .to_value(),
                    )
                    .is_ok();
                }
                Some(left)
            }
        };

        // Next-best untried backend whose breaker admits a request.
        let now = shared.now_ms();
        let pick = order
            .iter()
            .copied()
            .find(|&i| !tried[i] && shared.backends[i].lock_breaker().allow(now));
        // Work stealing: when the affinity pick is busy and a peer sits
        // idle, route there — its cold stage prefix is one remote fetch
        // away, cheaper than queueing behind the busy node. Only fully
        // closed breakers take part, so a half-open probe slot granted
        // by `allow` above is never abandoned unanswered.
        let pick = pick.map(|best| {
            if shared.config.steal
                && shared.backends[best].in_flight.load(Ordering::Relaxed) > 0
                && shared.backends[best].lock_breaker().state() == BreakerState::Closed
            {
                let idle = order.iter().copied().find(|&i| {
                    i != best
                        && !tried[i]
                        && shared.backends[i].in_flight.load(Ordering::Relaxed) == 0
                        && shared.backends[i].probe_ok.load(Ordering::Relaxed)
                        && shared.backends[i].lock_breaker().state() == BreakerState::Closed
                });
                if let Some(idle) = idle {
                    shared.backends[idle].steals.fetch_add(1, Ordering::Relaxed);
                    return idle;
                }
            }
            best
        });
        let Some(index) = pick else {
            // Nobody left: shed with the best hint we have. Retryable
            // from the client's point of view (it is a `rejected`).
            shared.jobs_shed.fetch_add(1, Ordering::Relaxed);
            let (reason, retry_after_ms) = match (&last_saturated, &last_transient) {
                (Some(hint), _) => (
                    "all backends saturated".to_string(),
                    hint.or(Some(shared.config.governor.retry_after_ms)),
                ),
                (None, Some(err)) => (
                    format!("no healthy backend: {err}"),
                    Some(shared.config.breaker_reopen_ms),
                ),
                (None, None) => (
                    "no healthy backend available".to_string(),
                    Some(shared.config.breaker_reopen_ms),
                ),
            };
            return proto::write_line(
                writer,
                &Event::Rejected {
                    job: job_id,
                    reason,
                    retry_after_ms,
                }
                .to_value(),
            )
            .is_ok();
        };

        tried[index] = true;
        let backend = &shared.backends[index];
        backend.requests.fetch_add(1, Ordering::Relaxed);
        if prior_failure {
            // This attempt exists because a peer died mid-job.
            backend.failovers.fetch_add(1, Ordering::Relaxed);
        }
        let mut attempt_req = req.clone();
        attempt_req.deadline_ms = remaining_ms;
        match run_attempt(
            kind,
            &attempt_req,
            backend,
            shared,
            writer,
            job_id,
            &mut completed_stages,
        ) {
            Attempt::Terminal(terminal) => {
                backend.lock_breaker().on_success();
                match terminal {
                    Terminal::Completed => {
                        shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Terminal::Failed => {
                        shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
                    }
                    Terminal::TimedOut => {
                        shared.jobs_timed_out.fetch_add(1, Ordering::Relaxed);
                    }
                }
                return true;
            }
            Attempt::ClientGone => {
                // Not the backend's fault; dropping our backend
                // connection cancels the job at its next stage boundary.
                backend.lock_breaker().on_success();
                return false;
            }
            Attempt::Transient(message) => {
                backend.failures.fetch_add(1, Ordering::Relaxed);
                backend.lock_breaker().on_failure(shared.now_ms());
                last_transient = Some(message);
                prior_failure = true;
                // Loop: the next-best peer picks the job up with the
                // remaining budget.
            }
            Attempt::Saturated { retry_after_ms } => {
                // Backpressure, not death: no breaker penalty — but the
                // backend did answer, so if this attempt held the
                // half-open probe slot it must be released, or the
                // breaker camps in HalfOpen and the backend is never
                // routed to (or probed) again.
                backend.lock_breaker().on_saturated();
                last_saturated = Some(retry_after_ms);
                prior_failure = false;
            }
        }
    }
}

/// Forward one attempt's event stream. Swallows `queued`, rewrites the
/// `job` field to the gateway's id on everything it forwards, and keeps
/// terminal events exactly-once by construction (only the attempt that
/// produced one forwards it, and a forwarded terminal ends the job).
fn run_attempt(
    kind: JobKind,
    req: &CompileRequest,
    backend: &Backend,
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    job_id: u64,
    completed_stages: &mut Vec<String>,
) -> Attempt {
    let connect_timeout = Duration::from_millis(shared.config.probe_timeout_ms.max(1));
    let sock = match resolve(&backend.addr) {
        Ok(s) => s,
        Err(e) => return Attempt::Transient(format!("resolve {}: {e}", backend.addr)),
    };
    let stream = match TcpStream::connect_timeout(&sock, connect_timeout) {
        Ok(s) => s,
        Err(e) => return Attempt::Transient(format!("connect {}: {e}", backend.addr)),
    };
    // Reads block until the backend's next event; bound them by the
    // job's remaining deadline (plus slack for the backend to notice and
    // emit its own timeout event) so a silently dead backend cannot hang
    // the client forever. Deadline-free jobs fall back to the operator's
    // `--idle-timeout` (plus larger slack, since a long pipeline stage
    // legitimately emits nothing while it runs); with idle timeouts
    // disabled, deadline-free reads are unbounded by choice.
    let read_timeout = match req.deadline_ms {
        Some(ms) => Some(ms.saturating_add(10_000)),
        None => shared
            .config
            .idle_timeout_ms
            .map(|ms| ms.saturating_add(30_000)),
    };
    if stream
        .set_read_timeout(read_timeout.map(|ms| Duration::from_millis(ms.max(1))))
        .is_err()
    {
        return Attempt::Transient("set_read_timeout failed".to_string());
    }
    let mut backend_writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => return Attempt::Transient(format!("clone stream: {e}")),
    };
    let mut backend_reader = BufReader::new(stream);
    let request = match kind {
        JobKind::Compile => Request::Compile(Box::new(req.clone())),
        JobKind::Lint => Request::Lint(Box::new(req.clone())),
        JobKind::Verify => Request::Verify(Box::new(req.clone())),
    };
    if let Err(e) = proto::write_line(&mut backend_writer, &request.to_value()) {
        return Attempt::Transient(format!("send to {}: {e}", backend.addr));
    }

    backend.in_flight.fetch_add(1, Ordering::Relaxed);
    let result = forward_events(
        backend,
        writer,
        &mut backend_reader,
        job_id,
        completed_stages,
        shared.config.max_line_bytes,
    );
    backend.in_flight.fetch_sub(1, Ordering::Relaxed);
    result
}

fn forward_events(
    backend: &Backend,
    writer: &mut TcpStream,
    backend_reader: &mut BufReader<TcpStream>,
    job_id: u64,
    completed_stages: &mut Vec<String>,
    max_line_bytes: usize,
) -> Attempt {
    loop {
        // Length-bounded like every other farm read: one runaway event
        // line fails the attempt (and feeds the breaker) instead of
        // growing gateway memory without bound.
        let raw = match proto::read_line_limited(backend_reader, max_line_bytes) {
            Ok(Some(v)) => v,
            Ok(None) => {
                return Attempt::Transient(format!("{} closed mid-job", backend.addr));
            }
            Err(ReadLineError::TooLong { limit }) => {
                return Attempt::Transient(format!(
                    "{} sent an event over {limit} bytes",
                    backend.addr
                ));
            }
            Err(ReadLineError::BadJson(message)) => {
                return Attempt::Transient(format!("{} sent bad JSON: {message}", backend.addr));
            }
            Err(ReadLineError::Io(e)) => {
                return Attempt::Transient(format!("read from {}: {e}", backend.addr));
            }
        };
        let event = match proto::parse_event(&raw) {
            Ok(event) => event,
            Err(proto::EventParseError::Unknown(_)) => {
                // Forward-compat passthrough: a newer backend's event the
                // gateway doesn't know rides through untouched (job id
                // rewritten) for the client to judge.
                if proto::write_line(writer, &rewrite_job(raw, job_id)).is_err() {
                    return Attempt::ClientGone;
                }
                continue;
            }
            Err(e @ proto::EventParseError::Malformed(_)) => {
                return Attempt::Transient(format!("{}: {e}", backend.addr));
            }
        };
        match event {
            // The gateway already announced the job under its own id.
            Event::Queued { .. } => continue,
            Event::Stage {
                ok,
                ref id,
                ref stage,
                ..
            } => {
                if ok {
                    let name = id.clone().unwrap_or_else(|| stage.clone());
                    if !completed_stages.contains(&name) {
                        completed_stages.push(name);
                    }
                }
                if proto::write_line(writer, &rewrite_job(raw, job_id)).is_err() {
                    return Attempt::ClientGone;
                }
            }
            Event::Rejected { retry_after_ms, .. } => {
                return Attempt::Saturated { retry_after_ms };
            }
            Event::Error {
                ref kind,
                ref retry_after_ms,
                ref message,
                ..
            } => {
                match kind.as_deref() {
                    // The backend's worker died under the job; a peer
                    // can still complete it (the compile is pure).
                    Some("worker-lost") => {
                        return Attempt::Transient(format!("{}: {message}", backend.addr));
                    }
                    // Connection-cap backpressure: same as a rejection.
                    Some("overloaded") => {
                        return Attempt::Saturated {
                            retry_after_ms: *retry_after_ms,
                        };
                    }
                    // Real flow failures (including panics and lint
                    // denials) are deterministic: failing over would
                    // just fail again. Forward as the terminal.
                    _ => {
                        if proto::write_line(writer, &rewrite_job(raw, job_id)).is_err() {
                            return Attempt::ClientGone;
                        }
                        return Attempt::Terminal(Terminal::Failed);
                    }
                }
            }
            Event::Timeout { .. } => {
                if proto::write_line(writer, &rewrite_job(raw, job_id)).is_err() {
                    return Attempt::ClientGone;
                }
                return Attempt::Terminal(Terminal::TimedOut);
            }
            Event::Done { .. } | Event::LintReport { .. } | Event::VerifyReport { .. } => {
                if proto::write_line(writer, &rewrite_job(raw, job_id)).is_err() {
                    return Attempt::ClientGone;
                }
                return Attempt::Terminal(Terminal::Completed);
            }
            Event::Pong { .. }
            | Event::Stats(_)
            | Event::Metrics(_)
            | Event::Status(_)
            | Event::Artifact { .. }
            | Event::ArtifactAck { .. }
            | Event::ShuttingDown => {
                return Attempt::Transient(format!(
                    "{} sent an out-of-place event mid-job",
                    backend.addr
                ));
            }
        }
    }
}

/// Rewrite the `job` field to the gateway's id before forwarding.
fn rewrite_job(raw: Value, job_id: u64) -> Value {
    match raw {
        Value::Object(mut map) => {
            map.insert("job".to_string(), job_id.into());
            Value::Object(map)
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_order_is_deterministic_and_complete() {
        let addrs: Vec<String> = (0..4).map(|i| format!("127.0.0.1:910{i}")).collect();
        let a = affinity_order("key-1", &addrs);
        assert_eq!(a, affinity_order("key-1", &addrs));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "a permutation of all backends");
    }

    #[test]
    fn affinity_spreads_distinct_keys() {
        let addrs: Vec<String> = (0..3).map(|i| format!("127.0.0.1:910{i}")).collect();
        let firsts: std::collections::HashSet<usize> = (0..32)
            .map(|i| affinity_order(&format!("design-{i}"), &addrs)[0])
            .collect();
        assert!(
            firsts.len() > 1,
            "32 keys all hashed to one backend: {firsts:?}"
        );
    }

    #[test]
    fn removing_a_backend_only_moves_its_own_keys() {
        let full: Vec<String> = (0..3).map(|i| format!("127.0.0.1:910{i}")).collect();
        let reduced: Vec<String> = full[..2].to_vec();
        for i in 0..16 {
            let key = format!("design-{i}");
            let first_full = affinity_order(&key, &full)[0];
            let first_reduced = affinity_order(&key, &reduced)[0];
            if first_full < 2 {
                // Keys not on the removed backend keep their placement —
                // the rendezvous-hash stability property.
                assert_eq!(first_full, first_reduced, "key {key} moved needlessly");
            }
        }
    }

    #[test]
    fn rewrite_job_overwrites_the_backend_id() {
        let raw = serde_json::json!({"event": "stage", "job": 42u64, "stage": "route"});
        let out = rewrite_job(raw, 7);
        assert_eq!(out["job"].as_u64(), Some(7));
        assert_eq!(out["stage"].as_str(), Some("route"));
    }
}
