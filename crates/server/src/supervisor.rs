//! Worker-pool supervision: the pool never shrinks.
//!
//! Workers already run each job under `catch_unwind`, so a panicking
//! stage normally becomes a structured error event and the worker keeps
//! serving. The supervisor is the layer below that: if a worker thread
//! nevertheless *dies* — a panic outside the job guard, or a deliberate
//! kill in the fault-injection tests — it is respawned immediately, so a
//! daemon configured for N workers always has N workers.
//!
//! Mechanism: every worker thread carries a [`ExitNotice`] guard whose
//! `Drop` reports how the thread ended over a channel — `Drop` runs even
//! during an unwind, so death cannot go unnoticed. The supervisor thread
//! blocks on that channel (no polling): graceful exits (the worker's
//! loop returned, i.e. the queue is draining) count the pool down;
//! deaths trigger a respawn. When the last worker leaves gracefully the
//! supervisor joins them all and exits, which is what `Server::shutdown`
//! waits on.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// How a supervised worker thread ended.
enum Exit {
    /// The worker's loop returned: the daemon is draining.
    Graceful(u64),
    /// The worker thread unwound without returning.
    Died(u64),
}

/// Drop guard reporting a worker's end to the supervisor.
struct ExitNotice {
    id: u64,
    tx: mpsc::Sender<Exit>,
    graceful: bool,
}

impl Drop for ExitNotice {
    fn drop(&mut self) {
        let exit = if self.graceful {
            Exit::Graceful(self.id)
        } else {
            Exit::Died(self.id)
        };
        // The supervisor outlives every worker it watches; if it is
        // somehow gone (process teardown), there is nothing left to tell.
        let _ = self.tx.send(exit);
    }
}

/// Spawn `count` worker threads each running `work()` plus the
/// supervisor thread that respawns any of them that dies. Returns the
/// supervisor's handle; joining it joins the whole (final) pool.
/// `respawned` is incremented once per replacement worker.
pub(crate) fn supervise_workers<F>(
    name_prefix: &str,
    count: usize,
    respawned: Arc<AtomicU64>,
    work: F,
) -> io::Result<JoinHandle<()>>
where
    F: Fn() + Send + Sync + Clone + 'static,
{
    let (tx, rx) = mpsc::channel::<Exit>();
    let mut handles: HashMap<u64, JoinHandle<()>> = HashMap::new();
    for id in 0..count as u64 {
        handles.insert(
            id,
            spawn_worker(&format!("{name_prefix}-{id}"), id, tx.clone(), work.clone())?,
        );
    }

    let name_prefix = name_prefix.to_string();
    std::thread::Builder::new()
        .name(format!("{name_prefix}-supervisor"))
        .spawn(move || {
            let mut live = handles.len();
            let mut next_id = live as u64;
            while live > 0 {
                // `tx` is held by this thread for respawns, so the only
                // way recv fails is catastrophic teardown — then there is
                // nothing left to supervise.
                let Ok(exit) = rx.recv() else { break };
                match exit {
                    Exit::Graceful(id) => {
                        if let Some(h) = handles.remove(&id) {
                            let _ = h.join();
                        }
                        live -= 1;
                    }
                    Exit::Died(id) => {
                        if let Some(h) = handles.remove(&id) {
                            let _ = h.join();
                        }
                        respawned.fetch_add(1, Ordering::Relaxed);
                        let id = next_id;
                        next_id += 1;
                        match spawn_worker(
                            &format!("{name_prefix}-r{id}"),
                            id,
                            tx.clone(),
                            work.clone(),
                        ) {
                            Ok(h) => {
                                handles.insert(id, h);
                            }
                            // Out of threads: keep supervising the rest
                            // rather than silently deadlocking the pool.
                            Err(_) => live -= 1,
                        }
                    }
                }
            }
            for (_, h) in handles {
                let _ = h.join();
            }
        })
}

fn spawn_worker<F>(
    name: &str,
    id: u64,
    tx: mpsc::Sender<Exit>,
    work: F,
) -> io::Result<JoinHandle<()>>
where
    F: Fn() + Send + 'static,
{
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            let mut notice = ExitNotice {
                id,
                tx,
                graceful: false,
            };
            work();
            notice.graceful = true;
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    #[test]
    fn graceful_exits_wind_the_pool_down() {
        let respawned = Arc::new(AtomicU64::new(0));
        let ran = Arc::new(AtomicUsize::new(0));
        let sup = {
            let ran = Arc::clone(&ran);
            supervise_workers("t-graceful", 3, Arc::clone(&respawned), move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap()
        };
        sup.join().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 3);
        assert_eq!(respawned.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn dead_workers_are_replaced_until_they_exit_gracefully() {
        // Each logical worker panics on its first run; its replacement
        // pops the marker and exits gracefully.
        let respawned = Arc::new(AtomicU64::new(0));
        let deaths_left = Arc::new(Mutex::new(2usize));
        let runs = Arc::new(AtomicUsize::new(0));
        let sup = {
            let deaths_left = Arc::clone(&deaths_left);
            let runs = Arc::clone(&runs);
            supervise_workers("t-respawn", 2, Arc::clone(&respawned), move || {
                runs.fetch_add(1, Ordering::SeqCst);
                let mut left = deaths_left.lock().unwrap_or_else(|p| p.into_inner());
                if *left > 0 {
                    *left -= 1;
                    drop(left);
                    panic!("injected worker death");
                }
            })
            .unwrap()
        };
        sup.join().unwrap();
        assert_eq!(respawned.load(Ordering::SeqCst), 2, "both deaths replaced");
        assert_eq!(runs.load(Ordering::SeqCst), 4, "2 deaths + 2 graceful");
    }
}
