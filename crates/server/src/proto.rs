//! Wire protocol: newline-delimited JSON, one object per line.
//!
//! Both directions are *typed*: clients build a [`Request`], servers
//! answer with [`Event`]s, and each side round-trips through
//! [`Request::to_value`] / [`parse_request`] and [`Event::to_value`] /
//! [`parse_event`]. The JSON shapes themselves are the contract — they
//! are parsed and emitted explicitly, field by field, never by derived
//! enum encodings — so the wire stays compatible with version-1 peers
//! that matched on raw `"cmd"` / `"event"` strings.
//!
//! [`PROTO_VERSION`] is carried in the `ping`/`pong` hello: clients send
//! theirs, servers echo their own in the ack, and either side may treat
//! a missing field as version 1.

use std::io::{self, BufRead, Write};

use fpga_arch::Architecture;
use fpga_flow::{FlowOptions, VerifyMode};
use fpga_lint::{diagnostics_from_value, diagnostics_to_value, Diagnostic, LintMode};
use serde_json::Value;

/// Version of the request/event schema this build speaks. Bumped when a
/// verb or event changes shape; absent on the wire means 1.
///
/// * 1 — `ping`/`stats`/`shutdown`/`compile`, stringly matched.
/// * 2 — typed enums; adds the `metrics` verb, `trace` on compile
///   requests (spans in the `done` event), and `proto_version` itself.
/// * 3 — design-rule lint: the `lint` verb and its terminal
///   `lint_report` event, the `lint` flow option (`off`/`warn`/`deny`),
///   and typed `diagnostics` riding `done` and `error` events. All
///   additions are optional fields or new verbs, so version-2 peers
///   interoperate unchanged.
/// * 4 — compile farm: optional `tenant` on `compile`/`lint` (fair-share
///   accounting at the gateway; version-3 daemons ignore the unknown
///   field), and the `status` verb + event (node health — on `flowd` its
///   queue/worker state, on `flow-gateway` the per-backend breaker
///   table). Wire-compatible with version 3 in both directions.
/// * 5 — shared artifact tier: the `artifact_get`/`artifact_put` verbs
///   and their `artifact`/`artifact_ack` replies, moving raw
///   [`DiskStore`](fpga_flow::DiskStore) entries (self-verifying,
///   digest-checked on receipt) between farm nodes via the gateway.
///   New verbs only — version-4 peers interoperate unchanged, and a
///   version-4 daemon answering "unknown cmd" is treated as an artifact
///   miss, never an error.
/// * 6 — equivalence checking: the `verify` verb and its terminal
///   `verify_report` event (deep cross-stage CEC, EQ rule codes), and
///   the `verify` flow option (`off`/`warn`/`deny`) gating compiles.
///   All additions are a new verb, a new event, and a new optional
///   option field, so version-5 peers interoperate unchanged.
pub const PROTO_VERSION: u64 = 6;

/// Source language of a submitted design.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceFormat {
    Vhdl,
    Blif,
}

impl SourceFormat {
    pub fn name(self) -> &'static str {
        match self {
            SourceFormat::Vhdl => "vhdl",
            SourceFormat::Blif => "blif",
        }
    }
}

/// A compile submission.
#[derive(Clone, Debug)]
pub struct CompileRequest {
    pub format: SourceFormat,
    pub source: String,
    /// Flow options exactly as they appear on the wire (`Value::Null`
    /// for "all defaults"). Validated eagerly at parse/build time, so a
    /// stored request is always convertible via
    /// [`CompileRequest::flow_options`].
    pub options: Value,
    /// Client-requested job deadline in milliseconds, measured from
    /// submission. The server clamps it to its own cap.
    pub deadline_ms: Option<u64>,
    /// Ask the server to record a per-stage trace and attach the span
    /// tree to the `done` event.
    pub trace: bool,
    /// Who is asking, for fair-share accounting at the gateway. Optional
    /// and advisory: `flowd` itself ignores it, and version-3 peers drop
    /// it as an unknown field (proto 4).
    pub tenant: Option<String>,
    /// Place-and-route worker threads for this job. Optional and
    /// advisory: absent means "server default". Deliberately a top-level
    /// field rather than a flow option so it never enters stage-cache
    /// keys, and so older peers drop it as an unknown field
    /// (wire-compatible with version 5 in both directions).
    pub threads: Option<u64>,
}

impl CompileRequest {
    /// A request for `source` with default options, no deadline, no
    /// trace.
    pub fn new(format: SourceFormat, source: impl Into<String>) -> Self {
        CompileRequest {
            format,
            source: source.into(),
            options: Value::Null,
            deadline_ms: None,
            trace: false,
            tenant: None,
            threads: None,
        }
    }

    /// Set the wire options, validating them now rather than at run
    /// time.
    pub fn with_options(mut self, options: Value) -> Result<Self, String> {
        parse_options(Some(&options))?;
        self.options = match options {
            Value::Object(o) if o.is_empty() => Value::Null,
            other => other,
        };
        Ok(self)
    }

    /// Materialize [`FlowOptions`] from the stored wire options.
    pub fn flow_options(&self) -> Result<FlowOptions, String> {
        parse_options(Some(&self.options))
    }
}

/// Everything a client can ask.
#[derive(Clone, Debug)]
pub enum Request {
    Ping,
    Stats,
    /// Latency histograms + counters; `text` asks for the
    /// Prometheus-style exposition instead of JSON.
    Metrics {
        text: bool,
    },
    Shutdown,
    /// Node health: on `flowd`, queue depth and worker state; on
    /// `flow-gateway`, the per-backend health/breaker/queue table.
    Status,
    Compile(Box<CompileRequest>),
    /// Deep design-rule check: same submission shape as `compile`
    /// (source, options, deadline), but the job runs the lint driver —
    /// no power, no verification, no bitstream in the reply — and
    /// terminates with a `lint_report` event.
    Lint(Box<CompileRequest>),
    /// Deep equivalence check (proto 6): same submission shape as
    /// `compile`, but the job drives the stages purely to prove each
    /// artifact equivalent to the synthesized netlist — collecting every
    /// EQ finding instead of stopping at the first — and terminates with
    /// a `verify_report` event.
    Verify(Box<CompileRequest>),
    /// Fetch one stage artifact's raw store entry by its content
    /// address (proto 5, the farm's shared artifact tier). `flowd`
    /// answers from its own durable store only; `flow-gateway` fans the
    /// lookup out to affinity peers. Answered with one `artifact` event
    /// — a miss is a normal answer, never an error.
    ArtifactGet {
        stage: String,
        key: String,
        kind: String,
    },
    /// Offer a raw store entry (hex-encoded self-verifying bytes) for
    /// local installation. The receiver verifies the digest before
    /// storing; corrupt bytes are quarantined and refused. Answered
    /// with one `artifact_ack` event.
    ArtifactPut {
        stage: String,
        key: String,
        kind: String,
        data_hex: String,
    },
}

impl Request {
    /// The wire form. Inverse of [`parse_request_value`].
    pub fn to_value(&self) -> Value {
        let mut obj = serde_json::Map::new();
        match self {
            Request::Ping => {
                obj.insert("cmd".into(), "ping".into());
                obj.insert("proto_version".into(), PROTO_VERSION.into());
            }
            Request::Stats => {
                obj.insert("cmd".into(), "stats".into());
            }
            Request::Metrics { text } => {
                obj.insert("cmd".into(), "metrics".into());
                if *text {
                    obj.insert("format".into(), "text".into());
                }
            }
            Request::Shutdown => {
                obj.insert("cmd".into(), "shutdown".into());
            }
            Request::Status => {
                obj.insert("cmd".into(), "status".into());
            }
            Request::Compile(c) | Request::Lint(c) | Request::Verify(c) => {
                let cmd = match self {
                    Request::Compile(_) => "compile",
                    Request::Lint(_) => "lint",
                    _ => "verify",
                };
                obj.insert("cmd".into(), cmd.into());
                obj.insert("format".into(), c.format.name().into());
                obj.insert("source".into(), c.source.clone().into());
                if !c.options.is_null() {
                    obj.insert("options".into(), c.options.clone());
                }
                if let Some(ms) = c.deadline_ms {
                    obj.insert("deadline_ms".into(), ms.into());
                }
                if c.trace {
                    obj.insert("trace".into(), true.into());
                }
                if let Some(tenant) = &c.tenant {
                    obj.insert("tenant".into(), tenant.clone().into());
                }
                if let Some(threads) = c.threads {
                    obj.insert("threads".into(), threads.into());
                }
            }
            Request::ArtifactGet { stage, key, kind } => {
                obj.insert("cmd".into(), "artifact_get".into());
                obj.insert("stage".into(), stage.clone().into());
                obj.insert("key".into(), key.clone().into());
                obj.insert("kind".into(), kind.clone().into());
            }
            Request::ArtifactPut {
                stage,
                key,
                kind,
                data_hex,
            } => {
                obj.insert("cmd".into(), "artifact_put".into());
                obj.insert("stage".into(), stage.clone().into());
                obj.insert("key".into(), key.clone().into());
                obj.insert("kind".into(), kind.clone().into());
                obj.insert("data_hex".into(), data_hex.clone().into());
            }
        }
        Value::Object(obj)
    }
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
    parse_request_value(&v)
}

/// Parse a request from an already-decoded [`Value`] — the daemon's
/// connection loop decodes each line exactly once and parses from that,
/// with no re-serialization round trip.
pub fn parse_request_value(v: &Value) -> Result<Request, String> {
    let cmd = v
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing 'cmd'".to_string())?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "metrics" => {
            let text = match v.get("format").and_then(Value::as_str) {
                None | Some("json") => false,
                Some("text") => true,
                Some(other) => return Err(format!("unknown metrics format '{other}'")),
            };
            Ok(Request::Metrics { text })
        }
        "shutdown" => Ok(Request::Shutdown),
        "status" => Ok(Request::Status),
        "compile" | "lint" | "verify" => {
            let format = match v.get("format").and_then(Value::as_str) {
                Some("vhdl") | None => SourceFormat::Vhdl,
                Some("blif") => SourceFormat::Blif,
                Some(other) => return Err(format!("unknown format '{other}'")),
            };
            let source = v
                .get("source")
                .and_then(Value::as_str)
                .ok_or_else(|| "missing 'source'".to_string())?
                .to_string();
            // Validate now: a stored request is always convertible.
            parse_options(v.get("options"))?;
            let options = v.get("options").cloned().unwrap_or(Value::Null);
            let deadline_ms = match v.get("deadline_ms") {
                None | Some(Value::Null) => None,
                Some(d) => Some(
                    d.as_u64()
                        .ok_or_else(|| "deadline_ms must be an integer".to_string())?,
                ),
            };
            let trace = match v.get("trace") {
                None | Some(Value::Null) => false,
                Some(t) => t
                    .as_bool()
                    .ok_or_else(|| "trace must be a boolean".to_string())?,
            };
            let tenant = match v.get("tenant") {
                None | Some(Value::Null) => None,
                Some(t) => Some(
                    t.as_str()
                        .ok_or_else(|| "tenant must be a string".to_string())?
                        .to_string(),
                ),
            };
            let threads = match v.get("threads") {
                None | Some(Value::Null) => None,
                Some(t) => match t.as_u64() {
                    Some(n) if n >= 1 => Some(n),
                    _ => return Err("threads must be a positive integer".to_string()),
                },
            };
            let req = Box::new(CompileRequest {
                format,
                source,
                options,
                deadline_ms,
                trace,
                tenant,
                threads,
            });
            Ok(match cmd {
                "lint" => Request::Lint(req),
                "verify" => Request::Verify(req),
                _ => Request::Compile(req),
            })
        }
        "artifact_get" | "artifact_put" => {
            let field = |name: &str| -> Result<String, String> {
                v.get(name)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("'{cmd}' missing '{name}'"))
            };
            let (stage, key, kind) = (field("stage")?, field("key")?, field("kind")?);
            if cmd == "artifact_get" {
                Ok(Request::ArtifactGet { stage, key, kind })
            } else {
                Ok(Request::ArtifactPut {
                    stage,
                    key,
                    kind,
                    data_hex: field("data_hex")?,
                })
            }
        }
        other => Err(format!("unknown cmd '{other}'")),
    }
}

/// Overlay the request's option fields onto [`FlowOptions::default`].
/// Absent fields keep their defaults; `channel_width: null` means
/// "search the minimum" explicitly.
fn parse_options(v: Option<&Value>) -> Result<FlowOptions, String> {
    let mut opts = FlowOptions::default();
    let Some(v) = v else { return Ok(opts) };
    if v.is_null() {
        return Ok(opts);
    }
    let obj = v
        .as_object()
        .ok_or_else(|| "'options' must be an object".to_string())?;
    for (key, val) in obj.iter() {
        match key.as_str() {
            "place_seed" => {
                opts.place_seed = val
                    .as_u64()
                    .ok_or_else(|| "place_seed must be an integer".to_string())?;
            }
            "place_effort" => {
                opts.place_effort = val
                    .as_f64()
                    .ok_or_else(|| "place_effort must be a number".to_string())?;
            }
            "channel_width" => {
                opts.channel_width = if val.is_null() {
                    None
                } else {
                    Some(
                        val.as_u64()
                            .ok_or_else(|| "channel_width must be an integer".to_string())?
                            as usize,
                    )
                };
            }
            "verify_cycles" => {
                opts.verify_cycles = val
                    .as_u64()
                    .ok_or_else(|| "verify_cycles must be an integer".to_string())?
                    as usize;
            }
            "arch" => {
                let text = serde_json::to_string(val).map_err(|e| e.to_string())?;
                opts.arch =
                    Architecture::from_json(&text).map_err(|e| format!("bad 'arch': {e}"))?;
            }
            "lint" => {
                let name = val
                    .as_str()
                    .ok_or_else(|| "lint must be a string".to_string())?;
                opts.lint = LintMode::parse(name)
                    .ok_or_else(|| format!("unknown lint mode '{name}' (off/warn/deny)"))?;
            }
            "verify" => {
                let name = val
                    .as_str()
                    .ok_or_else(|| "verify must be a string".to_string())?;
                opts.verify = VerifyMode::parse(name)
                    .ok_or_else(|| format!("unknown verify mode '{name}' (off/warn/deny)"))?;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

/// Everything a server can answer. One JSON object per line on the
/// wire; [`Event::to_value`] and [`parse_event`] are inverses.
///
/// The `Stats` and `Metrics` payloads stay opaque [`Value`]s: their
/// bodies are assembled by the service from live counters and rendered
/// verbatim — the protocol layer only frames them.
#[derive(Clone, Debug)]
pub enum Event {
    /// Ack of `ping`; carries the server's flow version and
    /// [`PROTO_VERSION`] (absent from version-1 servers — parsed as 1).
    Pong { version: String, proto_version: u64 },
    /// Full stats body, including its `"event":"stats"` marker.
    Stats(Value),
    /// Full metrics body (JSON or `{"format":"text","text":...}`),
    /// including its `"event":"metrics"` marker.
    Metrics(Value),
    /// Full status body (node health), including its `"event":"status"`
    /// marker. Opaque like `Stats`/`Metrics`: the serving node assembles
    /// it from live state, the protocol layer only frames it.
    Status(Value),
    /// Ack of `shutdown`: the queue is already draining.
    ShuttingDown,
    /// Compile accepted; stage events for `job` follow.
    Queued { job: u64 },
    /// Compile refused (queue full / shutting down).
    Rejected {
        job: u64,
        reason: String,
        retry_after_ms: Option<u64>,
    },
    /// One pipeline stage finished. `id` is the short stable stage id
    /// (`"synthesis"`); `stage` the human-readable title.
    Stage {
        job: u64,
        id: Option<String>,
        stage: String,
        ok: bool,
        elapsed_ms: f64,
        metrics: Value,
    },
    /// Terminal success. `trace` carries the span tree when the request
    /// asked for one; `lint` any warn/info findings when the compile ran
    /// with design-rule checks enabled (absent on the wire when empty).
    Done {
        job: u64,
        design: String,
        report: Value,
        bitstream_hex: String,
        trace: Option<Value>,
        lint: Vec<Diagnostic>,
    },
    /// Terminal reply to a `lint` request: every finding the deep check
    /// produced, plus how far the flow got (`reached` is the last stage
    /// whose artifact was linted, e.g. `"netlist"` or `"bitstream"`).
    LintReport {
        job: u64,
        design: String,
        reached: String,
        diagnostics: Vec<Diagnostic>,
    },
    /// Terminal reply to a `verify` request (proto 6): every EQ finding
    /// the deep equivalence check produced — counterexamples ride in the
    /// diagnostics' notes — plus how far the flow got (`reached` is the
    /// last check point, e.g. `"mapped"` or `"bitstream"`).
    VerifyReport {
        job: u64,
        design: String,
        reached: String,
        diagnostics: Vec<Diagnostic>,
    },
    /// Terminal deadline overrun.
    Timeout {
        job: u64,
        deadline_ms: Option<u64>,
        completed_stages: Vec<String>,
        message: String,
    },
    /// Terminal failure, or a connection-level complaint (no `job`).
    /// `kind` distinguishes panics, rejections under load, etc.
    /// `diagnostics` carries the structured findings when the failure
    /// came from a design-rule gate (stage `"lint"`); empty otherwise
    /// and absent on the wire.
    Error {
        job: Option<u64>,
        kind: Option<String>,
        stage: Option<String>,
        message: String,
        retry_after_ms: Option<u64>,
        diagnostics: Vec<Diagnostic>,
    },
    /// Reply to `artifact_get` (proto 5). On a hit, `data_hex` carries
    /// the raw self-verifying store entry; a miss (`hit: false`, no
    /// data) is a normal answer — the fetcher falls back to computing.
    Artifact {
        stage: String,
        key: String,
        hit: bool,
        data_hex: Option<String>,
    },
    /// Reply to `artifact_put` (proto 5). `stored: false` means the
    /// bytes failed verification (and were quarantined) or could not be
    /// persisted; `message` says why.
    ArtifactAck {
        stored: bool,
        message: Option<String>,
    },
}

impl Event {
    /// The wire form. Inverse of [`parse_event`]; field names and
    /// shapes match what version-1 clients already string-matched on.
    pub fn to_value(&self) -> Value {
        let mut obj = serde_json::Map::new();
        match self {
            Event::Pong {
                version,
                proto_version,
            } => {
                obj.insert("event".into(), "pong".into());
                obj.insert("version".into(), version.clone().into());
                obj.insert("proto_version".into(), (*proto_version).into());
            }
            Event::Stats(body) | Event::Metrics(body) | Event::Status(body) => {
                let marker = match self {
                    Event::Stats(_) => "stats",
                    Event::Metrics(_) => "metrics",
                    _ => "status",
                };
                match body {
                    Value::Object(map) => {
                        for (k, v) in map.iter() {
                            obj.insert(k.clone(), v.clone());
                        }
                    }
                    other => {
                        obj.insert("body".into(), other.clone());
                    }
                }
                obj.insert("event".into(), marker.into());
            }
            Event::ShuttingDown => {
                obj.insert("event".into(), "shutting_down".into());
            }
            Event::Queued { job } => {
                obj.insert("event".into(), "queued".into());
                obj.insert("job".into(), (*job).into());
            }
            Event::Rejected {
                job,
                reason,
                retry_after_ms,
            } => {
                obj.insert("event".into(), "rejected".into());
                obj.insert("job".into(), (*job).into());
                obj.insert("reason".into(), reason.clone().into());
                if let Some(ms) = retry_after_ms {
                    obj.insert("retry_after_ms".into(), (*ms).into());
                }
            }
            Event::Stage {
                job,
                id,
                stage,
                ok,
                elapsed_ms,
                metrics,
            } => {
                obj.insert("event".into(), "stage".into());
                obj.insert("job".into(), (*job).into());
                if let Some(id) = id {
                    obj.insert("id".into(), id.clone().into());
                }
                obj.insert("stage".into(), stage.clone().into());
                obj.insert("ok".into(), (*ok).into());
                obj.insert("elapsed_ms".into(), (*elapsed_ms).into());
                obj.insert("metrics".into(), metrics.clone());
            }
            Event::Done {
                job,
                design,
                report,
                bitstream_hex,
                trace,
                lint,
            } => {
                obj.insert("event".into(), "done".into());
                obj.insert("job".into(), (*job).into());
                obj.insert("design".into(), design.clone().into());
                obj.insert("report".into(), report.clone());
                obj.insert("bitstream_hex".into(), bitstream_hex.clone().into());
                if let Some(trace) = trace {
                    obj.insert("trace".into(), trace.clone());
                }
                if !lint.is_empty() {
                    obj.insert("lint".into(), diagnostics_to_value(lint));
                }
            }
            Event::LintReport {
                job,
                design,
                reached,
                diagnostics,
            }
            | Event::VerifyReport {
                job,
                design,
                reached,
                diagnostics,
            } => {
                let marker = if matches!(self, Event::LintReport { .. }) {
                    "lint_report"
                } else {
                    "verify_report"
                };
                obj.insert("event".into(), marker.into());
                obj.insert("job".into(), (*job).into());
                obj.insert("design".into(), design.clone().into());
                obj.insert("reached".into(), reached.clone().into());
                obj.insert("diagnostics".into(), diagnostics_to_value(diagnostics));
            }
            Event::Timeout {
                job,
                deadline_ms,
                completed_stages,
                message,
            } => {
                obj.insert("event".into(), "timeout".into());
                obj.insert("job".into(), (*job).into());
                obj.insert(
                    "deadline_ms".into(),
                    deadline_ms.map(Value::from).unwrap_or(Value::Null),
                );
                obj.insert(
                    "completed_stages".into(),
                    Value::Array(completed_stages.iter().map(|s| s.clone().into()).collect()),
                );
                obj.insert("message".into(), message.clone().into());
            }
            Event::Error {
                job,
                kind,
                stage,
                message,
                retry_after_ms,
                diagnostics,
            } => {
                obj.insert("event".into(), "error".into());
                if let Some(kind) = kind {
                    obj.insert("kind".into(), kind.clone().into());
                }
                if let Some(job) = job {
                    obj.insert("job".into(), (*job).into());
                }
                if let Some(stage) = stage {
                    obj.insert("stage".into(), stage.clone().into());
                }
                obj.insert("message".into(), message.clone().into());
                if let Some(ms) = retry_after_ms {
                    obj.insert("retry_after_ms".into(), (*ms).into());
                }
                if !diagnostics.is_empty() {
                    obj.insert("diagnostics".into(), diagnostics_to_value(diagnostics));
                }
            }
            Event::Artifact {
                stage,
                key,
                hit,
                data_hex,
            } => {
                obj.insert("event".into(), "artifact".into());
                obj.insert("stage".into(), stage.clone().into());
                obj.insert("key".into(), key.clone().into());
                obj.insert("hit".into(), (*hit).into());
                if let Some(data) = data_hex {
                    obj.insert("data_hex".into(), data.clone().into());
                }
            }
            Event::ArtifactAck { stored, message } => {
                obj.insert("event".into(), "artifact_ack".into());
                obj.insert("stored".into(), (*stored).into());
                if let Some(message) = message {
                    obj.insert("message".into(), message.clone().into());
                }
            }
        }
        Value::Object(obj)
    }
}

/// Why [`parse_event`] could not produce an [`Event`].
#[derive(Clone, Debug)]
pub enum EventParseError {
    /// The event name is not one this build knows — a newer (or older)
    /// peer. Clients should warn and skip, not die: unknown events are
    /// the protocol's forward-compatibility escape hatch.
    Unknown(String),
    /// A known event arrived with missing/mistyped fields.
    Malformed(String),
}

impl std::fmt::Display for EventParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventParseError::Unknown(name) => write!(f, "unknown event '{name}'"),
            EventParseError::Malformed(msg) => write!(f, "malformed event: {msg}"),
        }
    }
}

/// Parse a server event from its decoded wire form.
pub fn parse_event(v: &Value) -> Result<Event, EventParseError> {
    use EventParseError::Malformed;
    let name = v
        .get("event")
        .and_then(Value::as_str)
        .ok_or_else(|| Malformed("missing 'event'".into()))?;
    let job = |v: &Value| -> Result<u64, EventParseError> {
        v.get("job")
            .and_then(Value::as_u64)
            .ok_or_else(|| Malformed(format!("'{name}' missing numeric 'job'")))
    };
    let message = |v: &Value| {
        v.get("message")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string()
    };
    match name {
        "pong" => Ok(Event::Pong {
            version: v
                .get("version")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            // Absent = a version-1 server.
            proto_version: v.get("proto_version").and_then(Value::as_u64).unwrap_or(1),
        }),
        "stats" => Ok(Event::Stats(v.clone())),
        "metrics" => Ok(Event::Metrics(v.clone())),
        "status" => Ok(Event::Status(v.clone())),
        "shutting_down" => Ok(Event::ShuttingDown),
        "queued" => Ok(Event::Queued { job: job(v)? }),
        "rejected" => Ok(Event::Rejected {
            job: job(v)?,
            reason: v
                .get("reason")
                .and_then(Value::as_str)
                .unwrap_or("rejected")
                .to_string(),
            retry_after_ms: v.get("retry_after_ms").and_then(Value::as_u64),
        }),
        "stage" => Ok(Event::Stage {
            job: job(v)?,
            id: v.get("id").and_then(Value::as_str).map(str::to_string),
            stage: v
                .get("stage")
                .and_then(Value::as_str)
                .ok_or_else(|| Malformed("'stage' missing 'stage'".into()))?
                .to_string(),
            ok: v.get("ok").and_then(Value::as_bool).unwrap_or(true),
            elapsed_ms: v.get("elapsed_ms").and_then(Value::as_f64).unwrap_or(0.0),
            metrics: v.get("metrics").cloned().unwrap_or(Value::Null),
        }),
        "done" => Ok(Event::Done {
            job: job(v)?,
            design: v
                .get("design")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            report: v.get("report").cloned().unwrap_or(Value::Null),
            bitstream_hex: v
                .get("bitstream_hex")
                .and_then(Value::as_str)
                .ok_or_else(|| Malformed("'done' missing 'bitstream_hex'".into()))?
                .to_string(),
            trace: v.get("trace").filter(|t| !t.is_null()).cloned(),
            lint: diagnostics_from_value(v.get("lint").unwrap_or(&Value::Null))
                .map_err(|e| Malformed(format!("'done' lint findings: {e}")))?,
        }),
        "lint_report" | "verify_report" => {
            let design = v
                .get("design")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            let reached = v
                .get("reached")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            let diagnostics = diagnostics_from_value(v.get("diagnostics").unwrap_or(&Value::Null))
                .map_err(|e| Malformed(format!("'{name}' diagnostics: {e}")))?;
            Ok(if name == "lint_report" {
                Event::LintReport {
                    job: job(v)?,
                    design,
                    reached,
                    diagnostics,
                }
            } else {
                Event::VerifyReport {
                    job: job(v)?,
                    design,
                    reached,
                    diagnostics,
                }
            })
        }
        "timeout" => Ok(Event::Timeout {
            job: job(v)?,
            deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
            completed_stages: v
                .get("completed_stages")
                .and_then(Value::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(Value::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default(),
            message: message(v),
        }),
        "error" => Ok(Event::Error {
            job: v.get("job").and_then(Value::as_u64),
            kind: v.get("kind").and_then(Value::as_str).map(str::to_string),
            stage: v.get("stage").and_then(Value::as_str).map(str::to_string),
            message: message(v),
            retry_after_ms: v.get("retry_after_ms").and_then(Value::as_u64),
            diagnostics: diagnostics_from_value(v.get("diagnostics").unwrap_or(&Value::Null))
                .map_err(|e| Malformed(format!("'error' diagnostics: {e}")))?,
        }),
        "artifact" => Ok(Event::Artifact {
            stage: v
                .get("stage")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            key: v
                .get("key")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            hit: v.get("hit").and_then(Value::as_bool).unwrap_or(false),
            data_hex: v
                .get("data_hex")
                .and_then(Value::as_str)
                .map(str::to_string),
        }),
        "artifact_ack" => Ok(Event::ArtifactAck {
            stored: v.get("stored").and_then(Value::as_bool).unwrap_or(false),
            message: v.get("message").and_then(Value::as_str).map(str::to_string),
        }),
        other => Err(EventParseError::Unknown(other.to_string())),
    }
}

/// Write one event line and flush (clients block on complete lines).
pub fn write_line(w: &mut impl Write, v: &Value) -> io::Result<()> {
    writeln!(w, "{v}")?;
    w.flush()
}

/// Why [`read_line_limited`] could not produce a request.
#[derive(Debug)]
pub enum ReadLineError {
    /// The line exceeded the byte limit. At most `limit + 1` bytes were
    /// ever buffered, so a hostile or broken client cannot balloon the
    /// daemon's memory; the remainder of the line was *drained* (read
    /// and discarded up to its newline), so the stream is still framed
    /// and the connection can keep serving subsequent requests.
    TooLong { limit: usize },
    /// The line was not valid JSON.
    BadJson(String),
    /// Transport error; `WouldBlock`/`TimedOut` kinds mean the
    /// connection's read timeout elapsed.
    Io(io::Error),
}

/// Discard the rest of the current line (through its newline, or EOF)
/// without accumulating it: only the reader's internal buffer is used.
fn drain_line(r: &mut impl BufRead) -> io::Result<()> {
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            return Ok(()); // EOF mid-line
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                r.consume(i + 1);
                return Ok(());
            }
            None => {
                let len = buf.len();
                r.consume(len);
            }
        }
    }
}

/// Read the next line as JSON, never buffering more than `limit + 1`
/// bytes. `Ok(None)` on clean EOF; blank lines are skipped; a final line
/// without a trailing newline still parses. An oversized line is drained
/// to its newline before returning [`ReadLineError::TooLong`], so the
/// next call reads the next request, not the tail of the rejected one.
pub fn read_line_limited(
    r: &mut impl BufRead,
    limit: usize,
) -> Result<Option<Value>, ReadLineError> {
    let mut line = String::new();
    loop {
        line.clear();
        let mut bounded = io::Read::take(&mut *r, limit as u64 + 1);
        let n = bounded.read_line(&mut line).map_err(ReadLineError::Io)?;
        if n == 0 {
            return Ok(None);
        }
        if n > limit {
            if !line.ends_with('\n') {
                drain_line(r).map_err(ReadLineError::Io)?;
            }
            return Err(ReadLineError::TooLong { limit });
        }
        if line.trim().is_empty() {
            continue;
        }
        return serde_json::from_str(line.trim())
            .map(Some)
            .map_err(|e| ReadLineError::BadJson(e.to_string()));
    }
}

/// Read the next line as JSON with no practical size limit (the client
/// side trusts its server: `done` events carry whole bitstreams).
/// `Ok(None)` on clean EOF.
pub fn read_line(r: &mut impl BufRead) -> io::Result<Option<Value>> {
    match read_line_limited(r, usize::MAX - 1) {
        Ok(v) => Ok(v),
        Err(ReadLineError::Io(e)) => Err(e),
        Err(ReadLineError::BadJson(m)) => Err(io::Error::new(io::ErrorKind::InvalidData, m)),
        Err(ReadLineError::TooLong { .. }) => unreachable!("effectively unlimited"),
    }
}

/// Lowercase hex encoding for bitstream bytes on the wire.
pub fn to_hex(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        write!(s, "{b:02x}").expect("write to String");
    }
    s
}

/// Inverse of [`to_hex`].
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex".to_string());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| format!("bad hex at {i}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_compile_with_options() {
        let req = parse_request(
            r#"{"cmd":"compile","format":"blif","source":".model m",
                "options":{"place_seed":9,"channel_width":12,"verify_cycles":0}}"#,
        )
        .unwrap();
        let Request::Compile(c) = req else {
            panic!("not compile")
        };
        assert_eq!(c.format, SourceFormat::Blif);
        assert!(!c.trace);
        let opts = c.flow_options().unwrap();
        assert_eq!(opts.place_seed, 9);
        assert_eq!(opts.channel_width, Some(12));
        assert_eq!(opts.verify_cycles, 0);
        // Untouched fields keep defaults.
        assert_eq!(opts.place_effort, FlowOptions::default().place_effort);
    }

    #[test]
    fn rejects_unknown_cmd_and_option() {
        assert!(parse_request(r#"{"cmd":"fly"}"#).is_err());
        // Bad options are rejected at parse time, not first use.
        assert!(parse_request(r#"{"cmd":"compile","source":"x","options":{"speed":9}}"#).is_err());
        assert!(parse_request(r#"{"cmd":"metrics","format":"xml"}"#).is_err());
    }

    #[test]
    fn requests_round_trip_through_to_value() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Metrics { text: true },
            Request::Metrics { text: false },
            Request::Shutdown,
            Request::Status,
            Request::Compile(Box::new({
                let mut c = CompileRequest::new(SourceFormat::Blif, ".model m")
                    .with_options(serde_json::json!({"place_seed": 3}))
                    .unwrap();
                c.deadline_ms = Some(900);
                c.trace = true;
                c.tenant = Some("acme".into());
                c
            })),
            Request::Lint(Box::new(
                CompileRequest::new(SourceFormat::Vhdl, "entity e is end;")
                    .with_options(serde_json::json!({"lint": "deny"}))
                    .unwrap(),
            )),
            Request::Verify(Box::new(
                CompileRequest::new(SourceFormat::Vhdl, "entity e is end;")
                    .with_options(serde_json::json!({"verify": "deny"}))
                    .unwrap(),
            )),
            Request::ArtifactGet {
                stage: "route".into(),
                key: "ab".repeat(32),
                kind: "routed-design".into(),
            },
            Request::ArtifactPut {
                stage: "pack".into(),
                key: "cd".repeat(32),
                kind: "clustering".into(),
                data_hex: "deadbeef".into(),
            },
        ];
        for req in reqs {
            let v = req.to_value();
            let back = parse_request_value(&v).unwrap();
            assert_eq!(back.to_value(), v, "round trip changed {v}");
        }
        // The hello carries our protocol version.
        assert_eq!(
            Request::Ping.to_value()["proto_version"].as_u64(),
            Some(PROTO_VERSION)
        );
    }

    #[test]
    fn events_round_trip_through_to_value() {
        let events = [
            Event::Pong {
                version: "1.0".into(),
                proto_version: PROTO_VERSION,
            },
            Event::ShuttingDown,
            Event::Queued { job: 7 },
            Event::Rejected {
                job: 7,
                reason: "queue full".into(),
                retry_after_ms: Some(250),
            },
            Event::Stage {
                job: 7,
                id: Some("pack".into()),
                stage: "packing (T-VPack)".into(),
                ok: true,
                elapsed_ms: 1.25,
                metrics: serde_json::json!({"clbs": 4, "cache": "hit"}),
            },
            Event::Done {
                job: 7,
                design: "counter".into(),
                report: serde_json::json!({"stages": Vec::<Value>::new()}),
                bitstream_hex: "a0b1".into(),
                trace: Some(serde_json::json!({"spans": Vec::<Value>::new()})),
                lint: Vec::new(),
            },
            Event::Done {
                job: 8,
                design: "counter".into(),
                report: Value::Null,
                bitstream_hex: "".into(),
                trace: None,
                lint: vec![Diagnostic::new(
                    "NL003",
                    fpga_lint::Severity::Warn,
                    "netlist",
                    "net 'spare'",
                    "net 'spare' is driven but never read",
                )],
            },
            Event::LintReport {
                job: 9,
                design: "loopy".into(),
                reached: "netlist".into(),
                diagnostics: vec![Diagnostic::new(
                    "NL001",
                    fpga_lint::Severity::Deny,
                    "netlist",
                    "cell 'g1'",
                    "combinational loop",
                )
                .with_note("a -> b -> a")],
            },
            Event::VerifyReport {
                job: 11,
                design: "rent24".into(),
                reached: "bitstream".into(),
                diagnostics: vec![Diagnostic::new(
                    "EQ001",
                    fpga_lint::Severity::Deny,
                    "verify",
                    "po:y",
                    "'mapped' diverges from the netlist on po:y",
                )
                .with_note("counterexample: observable po:y reference=1 candidate=0 :: a=1 b=0")],
            },
            Event::Timeout {
                job: 7,
                deadline_ms: Some(100),
                completed_stages: vec!["synthesis".into()],
                message: "deadline of 100ms exceeded".into(),
            },
            Event::Error {
                job: Some(7),
                kind: Some("panic".into()),
                stage: None,
                message: "boom".into(),
                retry_after_ms: None,
                diagnostics: Vec::new(),
            },
            Event::Error {
                job: Some(7),
                kind: None,
                stage: Some("lint".into()),
                message: "design-rule check failed".into(),
                retry_after_ms: None,
                diagnostics: vec![Diagnostic::new(
                    "PK001",
                    fpga_lint::Severity::Deny,
                    "pack",
                    "cluster 0",
                    "cluster 0 holds 6 BLEs but the architecture allows 5",
                )],
            },
            Event::Artifact {
                stage: "route".into(),
                key: "ab".repeat(32),
                hit: true,
                data_hex: Some("00ff".into()),
            },
            Event::Artifact {
                stage: "route".into(),
                key: "ab".repeat(32),
                hit: false,
                data_hex: None,
            },
            Event::ArtifactAck {
                stored: true,
                message: None,
            },
            Event::ArtifactAck {
                stored: false,
                message: Some("payload digest mismatch".into()),
            },
        ];
        for ev in events {
            let v = ev.to_value();
            let back = parse_event(&v).unwrap();
            assert_eq!(back.to_value(), v, "round trip changed {v}");
        }
    }

    #[test]
    fn diagnostics_survive_the_wire_intact() {
        // Satellite check for the lint protocol: a finding serialized
        // into a lint_report, written as a line, read back, and parsed
        // keeps its code, severity, subject, and notes.
        let ev = Event::LintReport {
            job: 3,
            design: "mux".into(),
            reached: "route".into(),
            diagnostics: vec![
                Diagnostic::new(
                    "RT001",
                    fpga_lint::Severity::Deny,
                    "route",
                    "rr node 42",
                    "routing resource used by 2 nets",
                )
                .with_note("nets: a, b"),
                Diagnostic::new(
                    "NL003",
                    fpga_lint::Severity::Info,
                    "netlist",
                    "net 'nc'",
                    "net 'nc' is never driven and never read",
                ),
            ],
        };
        let mut wire = Vec::new();
        write_line(&mut wire, &ev.to_value()).unwrap();
        let mut r = std::io::BufReader::new(wire.as_slice());
        let line = read_line(&mut r).unwrap().unwrap();
        let Event::LintReport {
            diagnostics,
            reached,
            ..
        } = parse_event(&line).unwrap()
        else {
            panic!("not a lint_report");
        };
        assert_eq!(reached, "route");
        assert_eq!(diagnostics.len(), 2);
        assert_eq!(diagnostics[0].code, "RT001");
        assert_eq!(diagnostics[0].severity, fpga_lint::Severity::Deny);
        assert_eq!(diagnostics[0].subject, "rr node 42");
        assert_eq!(diagnostics[0].notes, vec!["nets: a, b".to_string()]);
        assert_eq!(diagnostics[1].code, "NL003");
        assert_eq!(diagnostics[1].severity, fpga_lint::Severity::Info);

        // Mangled severities are a malformed event, not a silent default.
        let bad: Value = serde_json::from_str(
            r#"{"event":"lint_report","job":3,"design":"mux","reached":"route",
                "diagnostics":[{"code":"RT001","severity":"fatal","stage":"route",
                "subject":"rr node 42","message":"m","notes":[]}]}"#,
        )
        .unwrap();
        assert!(matches!(
            parse_event(&bad),
            Err(EventParseError::Malformed(_))
        ));
    }

    #[test]
    fn parses_lint_option_and_rejects_bad_modes() {
        let req = parse_request(
            r#"{"cmd":"compile","source":".model m","format":"blif",
                "options":{"lint":"warn"}}"#,
        )
        .unwrap();
        let Request::Compile(c) = req else {
            panic!("not compile")
        };
        assert_eq!(c.flow_options().unwrap().lint, LintMode::Warn);
        // Default stays Off: absent option means no behavior change.
        let opts = parse_options(None).unwrap();
        assert_eq!(opts.lint, LintMode::Off);
        assert!(
            parse_request(r#"{"cmd":"lint","source":"x","options":{"lint":"strict"}}"#).is_err()
        );
        assert!(parse_request(r#"{"cmd":"lint","source":"x","options":{"lint":7}}"#).is_err());
    }

    #[test]
    fn unknown_events_are_flagged_not_fatal() {
        let v = serde_json::json!({"event": "hologram", "job": 1});
        match parse_event(&v) {
            Err(EventParseError::Unknown(name)) => assert_eq!(name, "hologram"),
            other => panic!("expected Unknown, got {other:?}"),
        }
        // A version-1 pong (no proto_version) parses as protocol 1.
        let v = serde_json::json!({"event": "pong", "version": "0.9"});
        match parse_event(&v) {
            Ok(Event::Pong { proto_version, .. }) => assert_eq!(proto_version, 1),
            other => panic!("expected Pong, got {other:?}"),
        }
        assert!(matches!(
            parse_event(&serde_json::json!({"event": "queued"})),
            Err(EventParseError::Malformed(_))
        ));
    }

    #[test]
    fn tenant_field_is_optional_and_v3_compatible() {
        // A version-3 line (no tenant) parses with tenant = None …
        let req = parse_request(r#"{"cmd":"compile","source":".model m"}"#).unwrap();
        let Request::Compile(c) = req else {
            panic!("not compile")
        };
        assert_eq!(c.tenant, None);
        // … and its wire form carries no tenant key at all.
        assert!(Request::Compile(c).to_value().get("tenant").is_none());
        // Explicit null is the same as absent; a non-string is rejected.
        let req = parse_request(r#"{"cmd":"lint","source":".model m","tenant":null}"#).unwrap();
        let Request::Lint(c) = req else {
            panic!("not lint")
        };
        assert_eq!(c.tenant, None);
        assert!(parse_request(r#"{"cmd":"compile","source":"x","tenant":7}"#).is_err());
        // Present tenant survives the round trip.
        let req = parse_request(r#"{"cmd":"compile","source":"x","tenant":"acme"}"#).unwrap();
        let Request::Compile(c) = req else {
            panic!("not compile")
        };
        assert_eq!(c.tenant.as_deref(), Some("acme"));
    }

    #[test]
    fn threads_field_is_optional_and_v5_compatible() {
        // A version-5 line (no threads) parses with threads = None …
        let req = parse_request(r#"{"cmd":"compile","source":".model m"}"#).unwrap();
        let Request::Compile(c) = req else {
            panic!("not compile")
        };
        assert_eq!(c.threads, None);
        // … and its wire form carries no threads key at all.
        assert!(Request::Compile(c).to_value().get("threads").is_none());
        // Explicit null is the same as absent.
        let req = parse_request(r#"{"cmd":"lint","source":".model m","threads":null}"#).unwrap();
        let Request::Lint(c) = req else {
            panic!("not lint")
        };
        assert_eq!(c.threads, None);
        // Zero, negative, and non-integer counts are rejected.
        for bad in ["0", "-1", "\"four\"", "2.5"] {
            let line = format!(r#"{{"cmd":"compile","source":"x","threads":{bad}}}"#);
            assert!(parse_request(&line).is_err(), "accepted threads={bad}");
        }
        // A present count survives the round trip.
        let req = parse_request(r#"{"cmd":"compile","source":"x","threads":8}"#).unwrap();
        let Request::Compile(c) = req else {
            panic!("not compile")
        };
        assert_eq!(c.threads, Some(8));
        let wire = Request::Compile(c).to_value();
        assert_eq!(wire.get("threads").and_then(Value::as_u64), Some(8));
    }

    #[test]
    fn status_events_frame_their_body_like_stats() {
        let body = serde_json::json!({
            "event": "status", "role": "gateway",
            "backends": serde_json::json!([
                serde_json::json!({"addr": "127.0.0.1:9", "breaker": "open"})
            ]),
        });
        let ev = Event::Status(body.clone());
        let v = ev.to_value();
        assert_eq!(v["event"], serde_json::json!("status"));
        assert_eq!(v["role"], serde_json::json!("gateway"));
        let Event::Status(back) = parse_event(&v).unwrap() else {
            panic!("not status")
        };
        assert_eq!(back, v);
    }

    #[test]
    fn parses_deadline_ms() {
        let req =
            parse_request(r#"{"cmd":"compile","source":".model m","deadline_ms":1500}"#).unwrap();
        let Request::Compile(c) = req else {
            panic!("not compile")
        };
        assert_eq!(c.deadline_ms, Some(1500));
        assert!(parse_request(r#"{"cmd":"compile","source":"x","deadline_ms":"soon"}"#).is_err());
        let req = parse_request(r#"{"cmd":"compile","source":"x","deadline_ms":null}"#).unwrap();
        let Request::Compile(c) = req else {
            panic!("not compile")
        };
        assert_eq!(c.deadline_ms, None);
    }

    #[test]
    fn read_line_limited_rejects_oversized_without_buffering_them() {
        let line = format!("{{\"cmd\":\"ping\",\"pad\":\"{}\"}}\n", "x".repeat(256));
        let mut r = std::io::BufReader::new(line.as_bytes());
        match read_line_limited(&mut r, 64) {
            Err(ReadLineError::TooLong { limit }) => assert_eq!(limit, 64),
            other => panic!("expected TooLong, got {other:?}"),
        }
        // Under the limit the same line parses fine.
        let mut r = std::io::BufReader::new(line.as_bytes());
        let v = read_line_limited(&mut r, 8 * 1024).unwrap().unwrap();
        assert_eq!(v["cmd"], serde_json::json!("ping"));
    }

    #[test]
    fn read_line_limited_accepts_lines_at_the_limit() {
        let line = "{\"cmd\":\"ping\"}\n";
        let mut r = std::io::BufReader::new(line.as_bytes());
        let v = read_line_limited(&mut r, line.len()).unwrap().unwrap();
        assert_eq!(v["cmd"], serde_json::json!("ping"));
        assert!(read_line_limited(&mut r, line.len()).unwrap().is_none());
        // One byte under the limit fails; the boundary is exact.
        let mut r = std::io::BufReader::new(line.as_bytes());
        assert!(matches!(
            read_line_limited(&mut r, line.len() - 1),
            Err(ReadLineError::TooLong { .. })
        ));
    }

    #[test]
    fn read_line_limited_handles_crlf() {
        let input = "{\"cmd\":\"ping\"}\r\n{\"cmd\":\"stats\"}\r\n";
        let mut r = std::io::BufReader::new(input.as_bytes());
        let v = read_line_limited(&mut r, 64).unwrap().unwrap();
        assert_eq!(v["cmd"], serde_json::json!("ping"));
        let v = read_line_limited(&mut r, 64).unwrap().unwrap();
        assert_eq!(v["cmd"], serde_json::json!("stats"));
        assert!(read_line_limited(&mut r, 64).unwrap().is_none());
    }

    #[test]
    fn read_line_limited_parses_final_line_without_newline() {
        let input = "{\"cmd\":\"ping\"}"; // EOF mid-line
        let mut r = std::io::BufReader::new(input.as_bytes());
        let v = read_line_limited(&mut r, 64).unwrap().unwrap();
        assert_eq!(v["cmd"], serde_json::json!("ping"));
        assert!(read_line_limited(&mut r, 64).unwrap().is_none());
    }

    #[test]
    fn oversized_line_is_drained_and_the_next_request_still_parses() {
        let input = format!(
            "{{\"cmd\":\"compile\",\"source\":\"{}\"}}\n{{\"cmd\":\"ping\"}}\n",
            "x".repeat(100_000)
        );
        // A tiny internal buffer forces drain_line through many refills.
        let mut r = std::io::BufReader::with_capacity(16, input.as_bytes());
        assert!(matches!(
            read_line_limited(&mut r, 64),
            Err(ReadLineError::TooLong { limit: 64 })
        ));
        let v = read_line_limited(&mut r, 64).unwrap().unwrap();
        assert_eq!(v["cmd"], serde_json::json!("ping"));
        assert!(read_line_limited(&mut r, 64).unwrap().is_none());
    }

    #[test]
    fn oversized_line_ending_within_the_probe_does_not_eat_the_next() {
        // The line is limit+1 bytes *including* its newline: too long,
        // but fully consumed by the probe read — the drain must not then
        // swallow the following request.
        let limit = 16;
        let first = format!("{}\n", "y".repeat(limit)); // limit+1 bytes with \n
        let input = format!("{first}{{\"cmd\":\"ping\"}}\n");
        let mut r = std::io::BufReader::with_capacity(8, input.as_bytes());
        assert!(matches!(
            read_line_limited(&mut r, limit),
            Err(ReadLineError::TooLong { .. })
        ));
        let v = read_line_limited(&mut r, limit).unwrap().unwrap();
        assert_eq!(v["cmd"], serde_json::json!("ping"));
    }

    #[test]
    fn hex_round_trips() {
        let data = vec![0u8, 1, 0xab, 0xff, 0x10];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }
}
