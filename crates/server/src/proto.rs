//! Wire protocol: newline-delimited JSON, one object per line.
//!
//! Requests and events are plain JSON objects rather than derived enum
//! encodings — the protocol is the contract here, so it is parsed and
//! emitted explicitly, field by field.

use std::io::{self, BufRead, Write};

use fpga_arch::Architecture;
use fpga_flow::FlowOptions;
use serde_json::Value;

/// Source language of a submitted design.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceFormat {
    Vhdl,
    Blif,
}

impl SourceFormat {
    pub fn name(self) -> &'static str {
        match self {
            SourceFormat::Vhdl => "vhdl",
            SourceFormat::Blif => "blif",
        }
    }
}

/// A compile submission.
#[derive(Clone, Debug)]
pub struct CompileRequest {
    pub format: SourceFormat,
    pub source: String,
    pub options: FlowOptions,
    /// Client-requested job deadline in milliseconds, measured from
    /// submission. The server clamps it to its own cap.
    pub deadline_ms: Option<u64>,
}

/// Everything a client can ask.
#[derive(Clone, Debug)]
pub enum Request {
    Ping,
    Stats,
    Shutdown,
    Compile(Box<CompileRequest>),
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
    parse_request_value(&v)
}

/// Parse a request from an already-decoded [`Value`] — the daemon's
/// connection loop decodes each line exactly once and parses from that,
/// with no re-serialization round trip.
pub fn parse_request_value(v: &Value) -> Result<Request, String> {
    let cmd = v
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing 'cmd'".to_string())?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "compile" => {
            let format = match v.get("format").and_then(Value::as_str) {
                Some("vhdl") | None => SourceFormat::Vhdl,
                Some("blif") => SourceFormat::Blif,
                Some(other) => return Err(format!("unknown format '{other}'")),
            };
            let source = v
                .get("source")
                .and_then(Value::as_str)
                .ok_or_else(|| "missing 'source'".to_string())?
                .to_string();
            let options = parse_options(v.get("options"))?;
            let deadline_ms = match v.get("deadline_ms") {
                None | Some(Value::Null) => None,
                Some(d) => Some(
                    d.as_u64()
                        .ok_or_else(|| "deadline_ms must be an integer".to_string())?,
                ),
            };
            Ok(Request::Compile(Box::new(CompileRequest {
                format,
                source,
                options,
                deadline_ms,
            })))
        }
        other => Err(format!("unknown cmd '{other}'")),
    }
}

/// Overlay the request's option fields onto [`FlowOptions::default`].
/// Absent fields keep their defaults; `channel_width: null` means
/// "search the minimum" explicitly.
fn parse_options(v: Option<&Value>) -> Result<FlowOptions, String> {
    let mut opts = FlowOptions::default();
    let Some(v) = v else { return Ok(opts) };
    if v.is_null() {
        return Ok(opts);
    }
    let obj = v
        .as_object()
        .ok_or_else(|| "'options' must be an object".to_string())?;
    for (key, val) in obj.iter() {
        match key.as_str() {
            "place_seed" => {
                opts.place_seed = val
                    .as_u64()
                    .ok_or_else(|| "place_seed must be an integer".to_string())?;
            }
            "place_effort" => {
                opts.place_effort = val
                    .as_f64()
                    .ok_or_else(|| "place_effort must be a number".to_string())?;
            }
            "channel_width" => {
                opts.channel_width = if val.is_null() {
                    None
                } else {
                    Some(
                        val.as_u64()
                            .ok_or_else(|| "channel_width must be an integer".to_string())?
                            as usize,
                    )
                };
            }
            "verify_cycles" => {
                opts.verify_cycles = val
                    .as_u64()
                    .ok_or_else(|| "verify_cycles must be an integer".to_string())?
                    as usize;
            }
            "arch" => {
                let text = serde_json::to_string(val).map_err(|e| e.to_string())?;
                opts.arch =
                    Architecture::from_json(&text).map_err(|e| format!("bad 'arch': {e}"))?;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

/// Write one event line and flush (clients block on complete lines).
pub fn write_line(w: &mut impl Write, v: &Value) -> io::Result<()> {
    writeln!(w, "{v}")?;
    w.flush()
}

/// Why [`read_line_limited`] could not produce a request.
#[derive(Debug)]
pub enum ReadLineError {
    /// The line exceeded the byte limit. At most `limit + 1` bytes were
    /// ever buffered, so a hostile or broken client cannot balloon the
    /// daemon's memory; the remainder of the line was *drained* (read
    /// and discarded up to its newline), so the stream is still framed
    /// and the connection can keep serving subsequent requests.
    TooLong { limit: usize },
    /// The line was not valid JSON.
    BadJson(String),
    /// Transport error; `WouldBlock`/`TimedOut` kinds mean the
    /// connection's read timeout elapsed.
    Io(io::Error),
}

/// Discard the rest of the current line (through its newline, or EOF)
/// without accumulating it: only the reader's internal buffer is used.
fn drain_line(r: &mut impl BufRead) -> io::Result<()> {
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            return Ok(()); // EOF mid-line
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                r.consume(i + 1);
                return Ok(());
            }
            None => {
                let len = buf.len();
                r.consume(len);
            }
        }
    }
}

/// Read the next line as JSON, never buffering more than `limit + 1`
/// bytes. `Ok(None)` on clean EOF; blank lines are skipped; a final line
/// without a trailing newline still parses. An oversized line is drained
/// to its newline before returning [`ReadLineError::TooLong`], so the
/// next call reads the next request, not the tail of the rejected one.
pub fn read_line_limited(
    r: &mut impl BufRead,
    limit: usize,
) -> Result<Option<Value>, ReadLineError> {
    let mut line = String::new();
    loop {
        line.clear();
        let mut bounded = io::Read::take(&mut *r, limit as u64 + 1);
        let n = bounded.read_line(&mut line).map_err(ReadLineError::Io)?;
        if n == 0 {
            return Ok(None);
        }
        if n > limit {
            if !line.ends_with('\n') {
                drain_line(r).map_err(ReadLineError::Io)?;
            }
            return Err(ReadLineError::TooLong { limit });
        }
        if line.trim().is_empty() {
            continue;
        }
        return serde_json::from_str(line.trim())
            .map(Some)
            .map_err(|e| ReadLineError::BadJson(e.to_string()));
    }
}

/// Read the next line as JSON with no practical size limit (the client
/// side trusts its server: `done` events carry whole bitstreams).
/// `Ok(None)` on clean EOF.
pub fn read_line(r: &mut impl BufRead) -> io::Result<Option<Value>> {
    match read_line_limited(r, usize::MAX - 1) {
        Ok(v) => Ok(v),
        Err(ReadLineError::Io(e)) => Err(e),
        Err(ReadLineError::BadJson(m)) => Err(io::Error::new(io::ErrorKind::InvalidData, m)),
        Err(ReadLineError::TooLong { .. }) => unreachable!("effectively unlimited"),
    }
}

/// Lowercase hex encoding for bitstream bytes on the wire.
pub fn to_hex(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        write!(s, "{b:02x}").expect("write to String");
    }
    s
}

/// Inverse of [`to_hex`].
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex".to_string());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| format!("bad hex at {i}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_compile_with_options() {
        let req = parse_request(
            r#"{"cmd":"compile","format":"blif","source":".model m",
                "options":{"place_seed":9,"channel_width":12,"verify_cycles":0}}"#,
        )
        .unwrap();
        let Request::Compile(c) = req else {
            panic!("not compile")
        };
        assert_eq!(c.format, SourceFormat::Blif);
        assert_eq!(c.options.place_seed, 9);
        assert_eq!(c.options.channel_width, Some(12));
        assert_eq!(c.options.verify_cycles, 0);
        // Untouched fields keep defaults.
        assert_eq!(c.options.place_effort, FlowOptions::default().place_effort);
    }

    #[test]
    fn rejects_unknown_cmd_and_option() {
        assert!(parse_request(r#"{"cmd":"fly"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"compile","source":"x","options":{"speed":9}}"#).is_err());
    }

    #[test]
    fn parses_deadline_ms() {
        let req =
            parse_request(r#"{"cmd":"compile","source":".model m","deadline_ms":1500}"#).unwrap();
        let Request::Compile(c) = req else {
            panic!("not compile")
        };
        assert_eq!(c.deadline_ms, Some(1500));
        assert!(parse_request(r#"{"cmd":"compile","source":"x","deadline_ms":"soon"}"#).is_err());
        let req = parse_request(r#"{"cmd":"compile","source":"x","deadline_ms":null}"#).unwrap();
        let Request::Compile(c) = req else {
            panic!("not compile")
        };
        assert_eq!(c.deadline_ms, None);
    }

    #[test]
    fn read_line_limited_rejects_oversized_without_buffering_them() {
        let line = format!("{{\"cmd\":\"ping\",\"pad\":\"{}\"}}\n", "x".repeat(256));
        let mut r = std::io::BufReader::new(line.as_bytes());
        match read_line_limited(&mut r, 64) {
            Err(ReadLineError::TooLong { limit }) => assert_eq!(limit, 64),
            other => panic!("expected TooLong, got {other:?}"),
        }
        // Under the limit the same line parses fine.
        let mut r = std::io::BufReader::new(line.as_bytes());
        let v = read_line_limited(&mut r, 8 * 1024).unwrap().unwrap();
        assert_eq!(v["cmd"], serde_json::json!("ping"));
    }

    #[test]
    fn read_line_limited_accepts_lines_at_the_limit() {
        let line = "{\"cmd\":\"ping\"}\n";
        let mut r = std::io::BufReader::new(line.as_bytes());
        let v = read_line_limited(&mut r, line.len()).unwrap().unwrap();
        assert_eq!(v["cmd"], serde_json::json!("ping"));
        assert!(read_line_limited(&mut r, line.len()).unwrap().is_none());
        // One byte under the limit fails; the boundary is exact.
        let mut r = std::io::BufReader::new(line.as_bytes());
        assert!(matches!(
            read_line_limited(&mut r, line.len() - 1),
            Err(ReadLineError::TooLong { .. })
        ));
    }

    #[test]
    fn read_line_limited_handles_crlf() {
        let input = "{\"cmd\":\"ping\"}\r\n{\"cmd\":\"stats\"}\r\n";
        let mut r = std::io::BufReader::new(input.as_bytes());
        let v = read_line_limited(&mut r, 64).unwrap().unwrap();
        assert_eq!(v["cmd"], serde_json::json!("ping"));
        let v = read_line_limited(&mut r, 64).unwrap().unwrap();
        assert_eq!(v["cmd"], serde_json::json!("stats"));
        assert!(read_line_limited(&mut r, 64).unwrap().is_none());
    }

    #[test]
    fn read_line_limited_parses_final_line_without_newline() {
        let input = "{\"cmd\":\"ping\"}"; // EOF mid-line
        let mut r = std::io::BufReader::new(input.as_bytes());
        let v = read_line_limited(&mut r, 64).unwrap().unwrap();
        assert_eq!(v["cmd"], serde_json::json!("ping"));
        assert!(read_line_limited(&mut r, 64).unwrap().is_none());
    }

    #[test]
    fn oversized_line_is_drained_and_the_next_request_still_parses() {
        let input = format!(
            "{{\"cmd\":\"compile\",\"source\":\"{}\"}}\n{{\"cmd\":\"ping\"}}\n",
            "x".repeat(100_000)
        );
        // A tiny internal buffer forces drain_line through many refills.
        let mut r = std::io::BufReader::with_capacity(16, input.as_bytes());
        assert!(matches!(
            read_line_limited(&mut r, 64),
            Err(ReadLineError::TooLong { limit: 64 })
        ));
        let v = read_line_limited(&mut r, 64).unwrap().unwrap();
        assert_eq!(v["cmd"], serde_json::json!("ping"));
        assert!(read_line_limited(&mut r, 64).unwrap().is_none());
    }

    #[test]
    fn oversized_line_ending_within_the_probe_does_not_eat_the_next() {
        // The line is limit+1 bytes *including* its newline: too long,
        // but fully consumed by the probe read — the drain must not then
        // swallow the following request.
        let limit = 16;
        let first = format!("{}\n", "y".repeat(limit)); // limit+1 bytes with \n
        let input = format!("{first}{{\"cmd\":\"ping\"}}\n");
        let mut r = std::io::BufReader::with_capacity(8, input.as_bytes());
        assert!(matches!(
            read_line_limited(&mut r, limit),
            Err(ReadLineError::TooLong { .. })
        ));
        let v = read_line_limited(&mut r, limit).unwrap().unwrap();
        assert_eq!(v["cmd"], serde_json::json!("ping"));
    }

    #[test]
    fn hex_round_trips() {
        let data = vec![0u8, 1, 0xab, 0xff, 0x10];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }
}
