//! Wire protocol: newline-delimited JSON, one object per line.
//!
//! Requests and events are plain JSON objects rather than derived enum
//! encodings — the protocol is the contract here, so it is parsed and
//! emitted explicitly, field by field.

use std::io::{self, BufRead, Write};

use fpga_arch::Architecture;
use fpga_flow::FlowOptions;
use serde_json::Value;

/// Source language of a submitted design.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceFormat {
    Vhdl,
    Blif,
}

impl SourceFormat {
    pub fn name(self) -> &'static str {
        match self {
            SourceFormat::Vhdl => "vhdl",
            SourceFormat::Blif => "blif",
        }
    }
}

/// A compile submission.
#[derive(Clone, Debug)]
pub struct CompileRequest {
    pub format: SourceFormat,
    pub source: String,
    pub options: FlowOptions,
}

/// Everything a client can ask.
#[derive(Clone, Debug)]
pub enum Request {
    Ping,
    Stats,
    Shutdown,
    Compile(Box<CompileRequest>),
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
    let cmd = v
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing 'cmd'".to_string())?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "compile" => {
            let format = match v.get("format").and_then(Value::as_str) {
                Some("vhdl") | None => SourceFormat::Vhdl,
                Some("blif") => SourceFormat::Blif,
                Some(other) => return Err(format!("unknown format '{other}'")),
            };
            let source = v
                .get("source")
                .and_then(Value::as_str)
                .ok_or_else(|| "missing 'source'".to_string())?
                .to_string();
            let options = parse_options(v.get("options"))?;
            Ok(Request::Compile(Box::new(CompileRequest {
                format,
                source,
                options,
            })))
        }
        other => Err(format!("unknown cmd '{other}'")),
    }
}

/// Overlay the request's option fields onto [`FlowOptions::default`].
/// Absent fields keep their defaults; `channel_width: null` means
/// "search the minimum" explicitly.
fn parse_options(v: Option<&Value>) -> Result<FlowOptions, String> {
    let mut opts = FlowOptions::default();
    let Some(v) = v else { return Ok(opts) };
    if v.is_null() {
        return Ok(opts);
    }
    let obj = v
        .as_object()
        .ok_or_else(|| "'options' must be an object".to_string())?;
    for (key, val) in obj.iter() {
        match key.as_str() {
            "place_seed" => {
                opts.place_seed = val
                    .as_u64()
                    .ok_or_else(|| "place_seed must be an integer".to_string())?;
            }
            "place_effort" => {
                opts.place_effort = val
                    .as_f64()
                    .ok_or_else(|| "place_effort must be a number".to_string())?;
            }
            "channel_width" => {
                opts.channel_width = if val.is_null() {
                    None
                } else {
                    Some(
                        val.as_u64()
                            .ok_or_else(|| "channel_width must be an integer".to_string())?
                            as usize,
                    )
                };
            }
            "verify_cycles" => {
                opts.verify_cycles = val
                    .as_u64()
                    .ok_or_else(|| "verify_cycles must be an integer".to_string())?
                    as usize;
            }
            "arch" => {
                let text = serde_json::to_string(val).map_err(|e| e.to_string())?;
                opts.arch =
                    Architecture::from_json(&text).map_err(|e| format!("bad 'arch': {e}"))?;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

/// Write one event line and flush (clients block on complete lines).
pub fn write_line(w: &mut impl Write, v: &Value) -> io::Result<()> {
    writeln!(w, "{v}")?;
    w.flush()
}

/// Read the next line as JSON. `Ok(None)` on clean EOF.
pub fn read_line(r: &mut impl BufRead) -> io::Result<Option<Value>> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue;
        }
        return serde_json::from_str(line.trim())
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
    }
}

/// Lowercase hex encoding for bitstream bytes on the wire.
pub fn to_hex(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        write!(s, "{b:02x}").expect("write to String");
    }
    s
}

/// Inverse of [`to_hex`].
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex".to_string());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| format!("bad hex at {i}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_compile_with_options() {
        let req = parse_request(
            r#"{"cmd":"compile","format":"blif","source":".model m",
                "options":{"place_seed":9,"channel_width":12,"verify_cycles":0}}"#,
        )
        .unwrap();
        let Request::Compile(c) = req else {
            panic!("not compile")
        };
        assert_eq!(c.format, SourceFormat::Blif);
        assert_eq!(c.options.place_seed, 9);
        assert_eq!(c.options.channel_width, Some(12));
        assert_eq!(c.options.verify_cycles, 0);
        // Untouched fields keep defaults.
        assert_eq!(c.options.place_effort, FlowOptions::default().place_effort);
    }

    #[test]
    fn rejects_unknown_cmd_and_option() {
        assert!(parse_request(r#"{"cmd":"fly"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"compile","source":"x","options":{"speed":9}}"#).is_err());
    }

    #[test]
    fn hex_round_trips() {
        let data = vec![0u8, 1, 0xab, 0xff, 0x10];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }
}
