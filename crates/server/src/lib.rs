//! # fpga-server
//!
//! `flowd`, a concurrent compile-service daemon, and `flowc`, its command
//! line client — the stand-in for the paper's web server front end
//! (Fig. 12): users hand a design to a long-running service and get back
//! per-stage progress, a report, and the configuration bitstream.
//!
//! The daemon accepts newline-delimited JSON requests over TCP and/or a
//! Unix-domain socket (std-only networking), queues compile jobs into a
//! bounded, backpressured queue, and runs them on a fixed worker pool.
//! All workers share one content-addressed [`fpga_flow::StageCache`], so
//! identical submissions — even concurrent ones, thanks to the cache's
//! single-flight lookups — cost one computation per stage and later
//! clients are served byte-identical bitstreams from cache.
//!
//! Protocol (one JSON object per line, client speaks first):
//!
//! ```text
//! -> {"cmd":"compile","format":"vhdl","source":"...","options":{"place_seed":7}}
//! <- {"event":"queued","job":1}
//! <- {"event":"stage","job":1,"stage":"synthesis (VHDL Parser + DIVINER)",...}
//! <- ... one per stage ...
//! <- {"event":"done","job":1,"report":{...},"bitstream_hex":"..."}
//! ```
//!
//! plus `{"cmd":"ping"}`, `{"cmd":"stats"}` (job counters and per-stage
//! cache hit/miss/wall-time metrics) and `{"cmd":"shutdown"}` (graceful:
//! new jobs are rejected, queued jobs drain, then the daemon exits).

pub mod client;
pub mod proto;
pub mod queue;
pub mod service;

pub use client::{CompileOutcome, FlowClient};
pub use proto::{CompileRequest, Request, SourceFormat};
pub use queue::{JobQueue, SubmitError};
pub use service::{Server, ServerConfig};
