//! # fpga-server
//!
//! `flowd`, a concurrent compile-service daemon, and `flowc`, its command
//! line client — the stand-in for the paper's web server front end
//! (Fig. 12): users hand a design to a long-running service and get back
//! per-stage progress, a report, and the configuration bitstream.
//!
//! The daemon accepts newline-delimited JSON requests over TCP and/or a
//! Unix-domain socket (std-only networking), queues compile jobs into a
//! bounded, backpressured queue, and runs them on a fixed worker pool.
//! All workers share one content-addressed [`fpga_flow::StageCache`], so
//! identical submissions — even concurrent ones, thanks to the cache's
//! single-flight lookups — cost one computation per stage and later
//! clients are served byte-identical bitstreams from cache.
//!
//! Protocol (one JSON object per line, client speaks first):
//!
//! ```text
//! -> {"cmd":"compile","format":"vhdl","source":"...","options":{"place_seed":7}}
//! <- {"event":"queued","job":1}
//! <- {"event":"stage","job":1,"stage":"synthesis (VHDL Parser + DIVINER)",...}
//! <- ... one per stage ...
//! <- {"event":"done","job":1,"report":{...},"bitstream_hex":"..."}
//! ```
//!
//! plus `{"cmd":"ping"}` (the hello — both sides exchange
//! [`proto::PROTO_VERSION`] here), `{"cmd":"stats"}` (job counters and
//! per-stage cache hit/miss/wall-time metrics), `{"cmd":"metrics"}`
//! (per-stage latency histograms, cache memory/disk hit tiers, the
//! queue high-water mark, and per-rule lint counters — ask with
//! `"format":"text"` for a Prometheus-style exposition),
//! `{"cmd":"lint"}` (same shape as `compile`; runs the deep design-rule
//! check and answers with a terminal `{"event":"lint_report"}` carrying
//! typed diagnostics) and `{"cmd":"shutdown"}` (graceful: new jobs are
//! rejected, queued jobs drain, then the daemon exits).
//!
//! Both sides speak through the *typed* layer in [`proto`]:
//! [`proto::Request`] and [`proto::Event`] round-trip through the JSON
//! shapes above, so matching is exhaustive — a new verb or event is a
//! compile error until every consumer handles it. Compile requests may
//! set `"trace": true` to receive the per-stage span tree
//! ([`fpga_flow::TraceLog`]) in the `done` event; `flowc --trace`
//! renders it as a waterfall.
//!
//! ## Fault tolerance
//!
//! The daemon is hardened against misbehaving jobs and clients:
//!
//! * a panicking stage answers with `{"event":"error","kind":"panic"}`
//!   and the worker keeps serving; a worker thread that dies outright is
//!   respawned by a supervisor, so the pool never shrinks;
//! * every job runs under a deadline (`deadline_ms` on the request,
//!   clamped to the server's `--max-deadline` cap); overruns answer with
//!   `{"event":"timeout","completed_stages":[...]}` and a client that
//!   hangs up cancels its job at the next stage boundary;
//! * connections are guarded: an idle read timeout, a cap on concurrent
//!   connections, and a byte limit on request lines. Queue-full and
//!   overload rejections carry a `retry_after_ms` hint that
//!   [`client::compile_with_retry`] honors with jittered exponential
//!   backoff.

pub mod artifact;
pub mod breaker;
pub mod client;
pub mod gateway;
pub mod metrics;
pub mod proto;
pub mod queue;
pub mod service;
mod supervisor;
pub mod tenancy;

pub use artifact::RemoteTierClient;
pub use breaker::{BreakerCounters, BreakerState, CircuitBreaker};
pub use client::{
    compile_with_retry, CompileError, CompileOutcome, FlowClient, LintOutcome, RetryPolicy,
    VerifyOutcome, MAX_UNKNOWN_EVENTS,
};
pub use gateway::{Gateway, GatewayConfig};
pub use metrics::{Histogram, HistogramSnapshot, Metrics, MetricsSnapshot};
pub use proto::{
    CompileRequest, Event, EventParseError, ReadLineError, Request, SourceFormat, PROTO_VERSION,
};
pub use queue::{FairQueue, JobQueue, SubmitError};
pub use service::{Server, ServerConfig};
pub use tenancy::{AdmitOutcome, GovernorConfig, TenantGovernor};
