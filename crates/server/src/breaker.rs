//! Per-backend circuit breaker for the gateway.
//!
//! Classic three-state machine, kept *pure*: every transition takes the
//! caller's clock (`now_ms`) instead of reading one, so tests drive it
//! with a fake clock and the schedule is fully deterministic under a
//! fixed jitter seed.
//!
//! ```text
//!            failures >= threshold
//!   Closed ──────────────────────────▶ Open
//!     ▲                                 │ now >= reopen_at
//!     │ probe succeeds                  ▼ (jittered)
//!     └────────────────────────── HalfOpen ── probe fails ──▶ Open
//! ```
//!
//! While `Open`, every request is refused until the jittered reopen
//! deadline passes; the first `allow` after that *is* the half-open
//! probe (exactly one in flight — further `allow`s refuse until the
//! probe reports back). A failed probe re-opens with a fresh jittered
//! deadline; a success snaps the breaker closed and clears the failure
//! count.

/// Where the breaker is in its cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Tripped: requests are refused until the reopen deadline.
    Open,
    /// One probe is in flight; its outcome decides the next state.
    HalfOpen,
}

impl BreakerState {
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Lifetime transition counters — the metrics family's
/// `breaker_transitions_total{to=...}` series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BreakerCounters {
    pub opened: u64,
    pub half_opened: u64,
    pub closed: u64,
}

/// The state machine. One per backend, behind the gateway's lock.
#[derive(Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Consecutive failures while `Closed`; trips at `threshold`.
    consecutive_failures: u32,
    threshold: u32,
    /// Base quiet period after tripping; the actual deadline adds up to
    /// 50% jitter so a fleet of breakers doesn't reprobe in lockstep.
    reopen_after_ms: u64,
    /// Absolute (caller-clock) time the next probe may go out.
    reopen_at_ms: u64,
    rng: u64,
    counters: BreakerCounters,
}

impl CircuitBreaker {
    /// `threshold` consecutive failures trip the breaker;
    /// `reopen_after_ms` is the base quiet period before a probe.
    pub fn new(threshold: u32, reopen_after_ms: u64, jitter_seed: u64) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            threshold: threshold.max(1),
            reopen_after_ms,
            reopen_at_ms: 0,
            // Seed 0 would lock xorshift at 0; the |1 below also guards.
            rng: jitter_seed,
            counters: BreakerCounters::default(),
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn counters(&self) -> BreakerCounters {
        self.counters
    }

    /// May a request go to this backend right now? Crossing the reopen
    /// deadline flips `Open` to `HalfOpen` and grants the caller the
    /// single probe slot.
    pub fn allow(&mut self, now_ms: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_ms >= self.reopen_at_ms {
                    self.state = BreakerState::HalfOpen;
                    self.counters.half_opened += 1;
                    true // the caller is the probe
                } else {
                    false
                }
            }
            // The probe is already out; hold everything else back.
            BreakerState::HalfOpen => false,
        }
    }

    /// A request (or health probe) against this backend succeeded.
    pub fn on_success(&mut self) {
        if self.state != BreakerState::Closed {
            self.counters.closed += 1;
        }
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// The backend answered, but with backpressure (a queue-full
    /// `rejected` or an `overloaded` error). It is alive, so a
    /// half-open probe closes the breaker — otherwise the probe slot
    /// would be held forever and the backend never retried. In any
    /// other state this is a no-op: saturation neither counts toward
    /// the trip threshold nor clears failures already accumulated.
    pub fn on_saturated(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.counters.closed += 1;
            self.state = BreakerState::Closed;
            self.consecutive_failures = 0;
        }
    }

    /// A request (or health probe) against this backend failed.
    pub fn on_failure(&mut self, now_ms: u64) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.trip(now_ms);
                }
            }
            // A failed probe goes straight back to Open with a fresh
            // jittered deadline; extra failures while Open (stragglers
            // from already-in-flight jobs) just refresh it.
            BreakerState::HalfOpen | BreakerState::Open => self.trip(now_ms),
        }
    }

    fn trip(&mut self, now_ms: u64) {
        if self.state != BreakerState::Open {
            self.counters.opened += 1;
        }
        self.state = BreakerState::Open;
        self.consecutive_failures = 0;
        // Full deadline = base + jitter in [0, base/2]: deterministic
        // under a fixed seed, desynchronized across distinct seeds.
        let jitter = xorshift64(&mut self.rng) % (self.reopen_after_ms / 2 + 1);
        self.reopen_at_ms = now_ms + self.reopen_after_ms + jitter;
    }
}

/// Same tiny PRNG the retry backoff uses: deterministic, dependency-free.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, 1_000, 42);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(0);
        b.on_failure(1);
        assert!(b.allow(2), "two failures stay under a threshold of 3");
        b.on_failure(2);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(3));
        assert_eq!(b.counters().opened, 1);
    }

    #[test]
    fn success_resets_the_failure_count() {
        let mut b = CircuitBreaker::new(3, 1_000, 42);
        b.on_failure(0);
        b.on_failure(1);
        b.on_success();
        b.on_failure(2);
        b.on_failure(3);
        assert_eq!(b.state(), BreakerState::Closed, "counter was reset");
    }

    #[test]
    fn half_open_grants_exactly_one_probe() {
        let mut b = CircuitBreaker::new(1, 100, 42);
        b.on_failure(0);
        assert_eq!(b.state(), BreakerState::Open);
        // Jitter is bounded by base/2, so base*2 is always past it.
        assert!(!b.allow(50), "still inside the quiet period");
        assert!(b.allow(200), "first caller past the deadline is the probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(201), "only one probe at a time");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(202));
        let c = b.counters();
        assert_eq!((c.opened, c.half_opened, c.closed), (1, 1, 1));
    }

    #[test]
    fn saturated_probe_releases_the_half_open_slot() {
        let mut b = CircuitBreaker::new(1, 100, 42);
        b.on_failure(0);
        assert!(b.allow(200), "caller takes the probe slot");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // The backend answered `rejected`/overloaded: alive, so the
        // breaker must close rather than camp in HalfOpen forever.
        b.on_saturated();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(201), "backend is routable again");
        assert_eq!(b.counters().closed, 1);
    }

    #[test]
    fn saturation_is_neutral_outside_half_open() {
        let mut b = CircuitBreaker::new(2, 100, 42);
        b.on_failure(0);
        b.on_saturated();
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(1);
        assert_eq!(
            b.state(),
            BreakerState::Open,
            "saturation must not reset the failure count"
        );
        b.on_saturated();
        assert_eq!(b.state(), BreakerState::Open, "no-op while Open");
        assert!(!b.allow(50), "quiet period still holds");
    }

    #[test]
    fn failed_probe_reopens_with_a_fresh_deadline() {
        let mut b = CircuitBreaker::new(1, 100, 42);
        b.on_failure(0);
        assert!(b.allow(200));
        b.on_failure(200);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(
            !b.allow(250),
            "new quiet period runs from the probe failure"
        );
        assert!(b.allow(400));
        assert_eq!(b.counters().opened, 2);
    }

    #[test]
    fn reopen_jitter_is_deterministic_and_bounded() {
        let deadline = |seed: u64| {
            let mut b = CircuitBreaker::new(1, 1_000, seed);
            b.on_failure(0);
            // The deadline is observable through allow(): binary-search
            // the first now_ms that flips the probe open.
            (0..=1_501).find(|&t| b.allow(t)).unwrap_or(u64::MAX)
        };
        let a = deadline(7);
        assert_eq!(a, deadline(7), "same seed, same schedule");
        for seed in [1, 2, 3, 99] {
            let d = deadline(seed);
            assert!((1_000..=1_500).contains(&d), "jitter out of range: {d}");
        }
    }
}
