//! Per-tenant admission control for the gateway: token-bucket quotas
//! plus weighted fair queuing over a bounded wait queue.
//!
//! Split in two layers, like the breaker:
//!
//! * [`GovernorCore`] is *pure* — every operation takes the caller's
//!   clock (`now_ms`), so unit tests drive the bucket refill and the
//!   scheduler with a fake clock and stay fully deterministic.
//! * [`TenantGovernor`] wraps the core in a mutex + condvar and turns
//!   "queued" into a blocking wait with a deadline, handing back an RAII
//!   [`Permit`] whose drop releases the concurrency slot and pumps the
//!   next waiter.
//!
//! A submission is **admitted** when a global concurrency slot is free
//! and the tenant's bucket holds a whole token; **queued** (up to the
//! bound) otherwise; **shed** with a `retry_after_ms` hint when the wait
//! queue is full — the bounded-admission backstop that keeps overload
//! from turning into unbounded memory and unbounded latency.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::queue::FairQueue;

/// One job's worth of tokens, in milli-tokens (the bucket's unit, so
/// fractional refill rates stay in integer math).
const TOKEN_MILLI: u64 = 1_000;

/// Shed hints are capped: past this there is no point telling a client
/// to come back, the number would just be noise.
const MAX_RETRY_AFTER_MS: u64 = 60_000;

/// Admission policy knobs.
#[derive(Clone, Debug)]
pub struct GovernorConfig {
    /// Jobs in flight across all tenants (gateway-wide concurrency).
    pub max_inflight: usize,
    /// Waiters across all tenants; beyond this, submissions shed.
    pub queue_bound: usize,
    /// Bucket capacity per tenant, in whole jobs (the burst allowance).
    pub tenant_burst: u64,
    /// Refill rate in milli-tokens per second (2_000 = 2 jobs/s). Zero
    /// means no refill: tenants get their burst and nothing more.
    pub tenant_refill_milli_per_s: u64,
    /// Baseline backoff hint attached to sheds.
    pub retry_after_ms: u64,
    /// Fair-queue weights; unlisted tenants weigh 1.
    pub weights: Vec<(String, u32)>,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            max_inflight: 64,
            queue_bound: 128,
            tenant_burst: 8,
            tenant_refill_milli_per_s: 4_000,
            retry_after_ms: 200,
            weights: Vec::new(),
        }
    }
}

/// Lifetime per-tenant counters — the metrics family's
/// `tenant_jobs_total{state=...}` series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantCounters {
    pub admitted: u64,
    pub queued: u64,
    pub shed: u64,
}

struct TenantState {
    tokens_milli: u64,
    last_refill_ms: u64,
    counters: TenantCounters,
}

/// What [`GovernorCore::submit`] decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// A slot and a token were available; the caller holds both.
    Admitted,
    /// Queued behind the fair scheduler; poll the ticket.
    Queued(u64),
    /// The wait queue is full — come back in `retry_after_ms`.
    Shed { retry_after_ms: u64 },
}

/// The pure admission core. All clocks are the caller's.
pub struct GovernorCore {
    config: GovernorConfig,
    tenants: HashMap<String, TenantState>,
    /// Waiting tickets, fair-queued per tenant.
    waiters: FairQueue<u64>,
    /// Tickets the pump admitted that their waiter has not observed yet.
    /// They already hold their concurrency slot.
    ready: HashSet<u64>,
    inflight: usize,
    next_ticket: u64,
}

impl GovernorCore {
    pub fn new(config: GovernorConfig) -> Self {
        let mut waiters = FairQueue::new(config.queue_bound, 1);
        for (tenant, weight) in &config.weights {
            waiters.set_weight(tenant, *weight);
        }
        GovernorCore {
            config,
            tenants: HashMap::new(),
            waiters,
            ready: HashSet::new(),
            inflight: 0,
            next_ticket: 0,
        }
    }

    /// Ask to run one job for `tenant`.
    pub fn submit(&mut self, tenant: &str, now_ms: u64) -> Admission {
        self.refill(tenant, now_ms);
        let state = self.tenant_mut(tenant, now_ms);
        let has_token = state.tokens_milli >= TOKEN_MILLI;
        if has_token && self.inflight < self.config.max_inflight && self.waiters.is_empty() {
            // Fast path: nothing ahead of us, slot and token in hand.
            let state = self.tenant_mut(tenant, now_ms);
            state.tokens_milli -= TOKEN_MILLI;
            state.counters.admitted += 1;
            self.inflight += 1;
            return Admission::Admitted;
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        match self.waiters.push(tenant, ticket) {
            Ok(()) => {
                // The freed slot may already be ours.
                self.pump(now_ms);
                if self.ready.remove(&ticket) {
                    Admission::Admitted
                } else {
                    // Count only jobs that actually wait — a ticket the
                    // pump admitted in the same call never queued from
                    // the caller's point of view.
                    self.tenant_mut(tenant, now_ms).counters.queued += 1;
                    Admission::Queued(ticket)
                }
            }
            Err(_) => {
                let retry_after_ms = self.shed_hint(tenant, now_ms);
                let state = self.tenant_mut(tenant, now_ms);
                state.counters.shed += 1;
                Admission::Shed { retry_after_ms }
            }
        }
    }

    /// Has the scheduler admitted this queued ticket yet? A `true` hands
    /// the caller its concurrency slot.
    pub fn poll(&mut self, ticket: u64, now_ms: u64) -> bool {
        self.pump(now_ms);
        self.ready.remove(&ticket)
    }

    /// Abandon a queued ticket (deadline expired while waiting). If the
    /// pump admitted it in the meantime, the slot is released again.
    pub fn cancel(&mut self, tenant: &str, ticket: u64, now_ms: u64) {
        if self.ready.remove(&ticket) {
            self.release(now_ms);
        } else {
            self.waiters.remove_where(tenant, |t| *t == ticket);
        }
    }

    /// A permit was dropped: free its slot and admit the next waiter.
    pub fn release(&mut self, now_ms: u64) {
        self.inflight = self.inflight.saturating_sub(1);
        self.pump(now_ms);
    }

    /// Move waiters into `ready` while slots and tokens allow, in
    /// weighted-fair order.
    fn pump(&mut self, now_ms: u64) {
        while self.inflight < self.config.max_inflight {
            let config = &self.config;
            let tenants = &mut self.tenants;
            let popped = self.waiters.pop_where(|tenant| {
                let state = tenants
                    .entry(tenant.to_string())
                    .or_insert_with(|| TenantState {
                        tokens_milli: config.tenant_burst.saturating_mul(TOKEN_MILLI),
                        last_refill_ms: now_ms,
                        counters: TenantCounters::default(),
                    });
                refill_state(state, config, now_ms);
                state.tokens_milli >= TOKEN_MILLI
            });
            let Some((tenant, ticket)) = popped else {
                break; // nobody eligible (token drought) or queue empty
            };
            let state = self.tenant_mut(&tenant, now_ms);
            state.tokens_milli -= TOKEN_MILLI;
            state.counters.admitted += 1;
            self.inflight += 1;
            self.ready.insert(ticket);
        }
    }

    /// How long until `tenant` plausibly gets a token, floored by the
    /// configured baseline and capped at [`MAX_RETRY_AFTER_MS`].
    fn shed_hint(&mut self, tenant: &str, now_ms: u64) -> u64 {
        let config_retry = self.config.retry_after_ms;
        let refill = self.config.tenant_refill_milli_per_s;
        let state = self.tenant_mut(tenant, now_ms);
        let hint = if state.tokens_milli >= TOKEN_MILLI || refill == 0 {
            // Not token-starved (or never refilling): the queue is the
            // bottleneck, the baseline hint is all we know.
            config_retry
        } else {
            let missing = TOKEN_MILLI - state.tokens_milli;
            // ceil(missing / refill-per-ms), in integer math.
            let ms = missing.saturating_mul(1_000).div_ceil(refill);
            ms.max(config_retry)
        };
        hint.clamp(1, MAX_RETRY_AFTER_MS)
    }

    /// Tenants seen so far with their counters, sorted by name (stable
    /// metrics output).
    pub fn tenant_snapshots(&self) -> Vec<(String, TenantCounters)> {
        let mut rows: Vec<(String, TenantCounters)> = self
            .tenants
            .iter()
            .map(|(name, s)| (name.clone(), s.counters))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    pub fn inflight(&self) -> usize {
        self.inflight
    }

    pub fn queued(&self) -> usize {
        self.waiters.len()
    }

    pub fn config(&self) -> &GovernorConfig {
        &self.config
    }

    fn tenant_mut(&mut self, tenant: &str, now_ms: u64) -> &mut TenantState {
        let burst = self.config.tenant_burst;
        self.tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                // A fresh tenant starts with a full bucket.
                tokens_milli: burst.saturating_mul(TOKEN_MILLI),
                last_refill_ms: now_ms,
                counters: TenantCounters::default(),
            })
    }

    fn refill(&mut self, tenant: &str, now_ms: u64) {
        let config = self.config.clone();
        let state = self.tenant_mut(tenant, now_ms);
        refill_state(state, &config, now_ms);
    }
}

fn refill_state(state: &mut TenantState, config: &GovernorConfig, now_ms: u64) {
    let elapsed = now_ms.saturating_sub(state.last_refill_ms);
    if elapsed == 0 {
        return;
    }
    let gained = elapsed.saturating_mul(config.tenant_refill_milli_per_s) / 1_000;
    if gained > 0 || config.tenant_refill_milli_per_s == 0 {
        state.tokens_milli = (state.tokens_milli.saturating_add(gained))
            .min(config.tenant_burst.saturating_mul(TOKEN_MILLI));
        state.last_refill_ms = now_ms;
    }
    // else: under a millisecond's worth of refill — keep last_refill_ms
    // so sub-token trickles accumulate instead of rounding to zero.
}

/// What a blocking [`TenantGovernor::admit`] resolved to.
pub enum AdmitOutcome {
    /// Run the job; drop the permit when done.
    Admitted(Permit),
    /// Queue full: tell the client to come back.
    Shed { retry_after_ms: u64 },
    /// The caller's deadline elapsed while waiting for a slot.
    Expired,
}

/// Blocking front of the governor: mutex + condvar around
/// [`GovernorCore`], real clock anchored at construction.
pub struct TenantGovernor {
    core: Mutex<GovernorCore>,
    wake: Condvar,
    epoch: Instant,
}

impl TenantGovernor {
    pub fn new(config: GovernorConfig) -> Arc<Self> {
        Arc::new(TenantGovernor {
            core: Mutex::new(GovernorCore::new(config)),
            wake: Condvar::new(),
            epoch: Instant::now(),
        })
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Recover from poisoning like the job queue does: the core keeps
    /// its invariants between statements.
    fn lock(&self) -> MutexGuard<'_, GovernorCore> {
        self.core
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Admit one job for `tenant`, blocking in fair-queue order until a
    /// slot frees, the queue sheds us, or `deadline` passes.
    pub fn admit(self: &Arc<Self>, tenant: &str, deadline: Option<Instant>) -> AdmitOutcome {
        let mut core = self.lock();
        let ticket = match core.submit(tenant, self.now_ms()) {
            Admission::Admitted => {
                return AdmitOutcome::Admitted(Permit {
                    governor: Arc::clone(self),
                })
            }
            Admission::Shed { retry_after_ms } => return AdmitOutcome::Shed { retry_after_ms },
            Admission::Queued(ticket) => ticket,
        };
        loop {
            let wait = match deadline {
                Some(d) => match d.checked_duration_since(Instant::now()) {
                    Some(left) => left.min(Duration::from_millis(50)),
                    None => {
                        core.cancel(tenant, ticket, self.now_ms());
                        return AdmitOutcome::Expired;
                    }
                },
                // No deadline: wake periodically anyway so token refills
                // are noticed without a release event.
                None => Duration::from_millis(50),
            };
            core = self
                .wake
                .wait_timeout(core, wait)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
            if core.poll(ticket, self.now_ms()) {
                return AdmitOutcome::Admitted(Permit {
                    governor: Arc::clone(self),
                });
            }
        }
    }

    /// Current per-tenant counters.
    pub fn tenant_snapshots(&self) -> Vec<(String, TenantCounters)> {
        self.lock().tenant_snapshots()
    }

    /// (in-flight, queued) right now.
    pub fn depths(&self) -> (usize, usize) {
        let core = self.lock();
        (core.inflight(), core.queued())
    }

    /// The policy this governor runs.
    pub fn config(&self) -> GovernorConfig {
        self.lock().config().clone()
    }
}

/// RAII concurrency slot: dropping it releases the slot and pumps the
/// fair queue.
pub struct Permit {
    governor: Arc<TenantGovernor>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let now = self.governor.now_ms();
        self.governor.lock().release(now);
        self.governor.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(max_inflight: usize, queue_bound: usize, burst: u64, refill: u64) -> GovernorConfig {
        GovernorConfig {
            max_inflight,
            queue_bound,
            tenant_burst: burst,
            tenant_refill_milli_per_s: refill,
            retry_after_ms: 100,
            weights: Vec::new(),
        }
    }

    #[test]
    fn burst_then_queue_then_shed() {
        let mut g = GovernorCore::new(config(1, 1, 8, 0));
        assert_eq!(g.submit("a", 0), Admission::Admitted);
        // Slot taken: the next lands in the queue, the one after sheds.
        assert!(matches!(g.submit("a", 1), Admission::Queued(_)));
        let Admission::Shed { retry_after_ms } = g.submit("a", 2) else {
            panic!("expected shed");
        };
        assert!(retry_after_ms >= 100);
        let rows = g.tenant_snapshots();
        assert_eq!(
            rows[0].1,
            TenantCounters {
                admitted: 1,
                queued: 1,
                shed: 1
            }
        );
    }

    #[test]
    fn queue_transit_admission_does_not_count_as_queued() {
        // "a" drains its bucket and parks a waiter; "b" then submits
        // with a full bucket and free slots. The fair queue isn't
        // empty, so "b" transits it, but the same call's pump admits
        // the ticket — it never waited, so it must not count as queued.
        let mut g = GovernorCore::new(config(8, 8, 1, 0));
        assert_eq!(g.submit("a", 0), Admission::Admitted);
        assert!(matches!(g.submit("a", 0), Admission::Queued(_)));
        assert_eq!(g.submit("b", 0), Admission::Admitted);
        let rows = g.tenant_snapshots();
        let b = rows.iter().find(|(name, _)| name == "b").unwrap();
        assert_eq!(
            b.1,
            TenantCounters {
                admitted: 1,
                queued: 0,
                shed: 0
            }
        );
    }

    #[test]
    fn token_bucket_gates_admission_and_refills_over_time() {
        // Burst 2, refill 1 token/s, plenty of slots.
        let mut g = GovernorCore::new(config(8, 8, 2, 1_000));
        assert_eq!(g.submit("a", 0), Admission::Admitted);
        assert_eq!(g.submit("a", 0), Admission::Admitted);
        // Bucket empty: queued even though slots are free.
        let Admission::Queued(ticket) = g.submit("a", 0) else {
            panic!("expected queued");
        };
        assert!(!g.poll(ticket, 10), "no token 10ms in");
        assert!(g.poll(ticket, 1_100), "one token after a second");
        // A different tenant has its own full bucket.
        assert_eq!(g.submit("b", 1_100), Admission::Admitted);
    }

    #[test]
    fn release_pumps_the_next_waiter_in_fair_order() {
        let mut g = GovernorCore::new(config(1, 8, 8, 0));
        assert_eq!(g.submit("a", 0), Admission::Admitted);
        let Admission::Queued(ta) = g.submit("a", 0) else {
            panic!()
        };
        let Admission::Queued(tb) = g.submit("b", 0) else {
            panic!()
        };
        g.release(1);
        // "a" queued first, so its ticket wins the freed slot.
        assert!(g.poll(ta, 1));
        assert!(!g.poll(tb, 1));
        g.release(2);
        assert!(g.poll(tb, 2));
    }

    #[test]
    fn cancelled_tickets_release_their_slot_if_already_admitted() {
        let mut g = GovernorCore::new(config(1, 8, 8, 0));
        assert_eq!(g.submit("a", 0), Admission::Admitted);
        let Admission::Queued(ticket) = g.submit("b", 0) else {
            panic!()
        };
        g.release(1); // pump admits the ticket into `ready`
        g.cancel("b", ticket, 2); // waiter gave up before observing it
                                  // The slot is free again for a fresh submission.
        assert_eq!(g.submit("c", 3), Admission::Admitted);
    }

    #[test]
    fn shed_hint_reflects_token_drought() {
        let mut g = GovernorCore::new(config(8, 0, 1, 500)); // 0.5 tokens/s
        assert_eq!(g.submit("a", 0), Admission::Admitted);
        // Queue bound 0: instant shed; empty bucket at 0.5/s means the
        // next token is ~2s away.
        let Admission::Shed { retry_after_ms } = g.submit("a", 0) else {
            panic!("expected shed");
        };
        assert!(
            (1_900..=2_100).contains(&retry_after_ms),
            "hint {retry_after_ms} should be ~2000ms"
        );
    }

    #[test]
    fn blocking_governor_admits_releases_and_expires() {
        let gov = TenantGovernor::new(config(1, 8, 8, 0));
        let AdmitOutcome::Admitted(permit) = gov.admit("a", None) else {
            panic!("first admit should pass");
        };
        // Full slot + short deadline: expires while waiting.
        let deadline = Some(Instant::now() + Duration::from_millis(60));
        assert!(matches!(gov.admit("b", deadline), AdmitOutcome::Expired));
        // Dropping the permit lets the next admit through.
        let waiter = {
            let gov = Arc::clone(&gov);
            std::thread::spawn(move || match gov.admit("c", None) {
                AdmitOutcome::Admitted(p) => {
                    drop(p);
                    true
                }
                _ => false,
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        drop(permit);
        assert!(waiter.join().unwrap_or(false));
        let (inflight, queued) = gov.depths();
        assert_eq!((inflight, queued), (0, 0));
    }
}
