//! The daemon: listeners, worker pool, job lifecycle, graceful shutdown.
//!
//! Fault-tolerance model (every path here is exercised by the chaos
//! suite in `tests/`):
//!
//! * **Supervised workers** — each job runs under `catch_unwind`, so a
//!   panicking stage becomes a structured `{"event":"error","kind":
//!   "panic"}` terminal event and the worker keeps serving; if a worker
//!   thread dies anyway, the supervisor respawns it (see
//!   [`crate::supervisor`]), so the pool never shrinks.
//! * **Deadlines & cancellation** — every job carries a
//!   [`CancelToken`]; the flow checks it between stages. Deadline
//!   overruns answer with a `timeout` event naming the stages that did
//!   complete; a client hang-up cancels its job at the next stage
//!   boundary instead of burning the worker.
//! * **Connection guards** — an idle read timeout on every stream, a
//!   cap on concurrent connections, and a byte limit on request lines;
//!   rejections carry a `retry_after_ms` hint that `flowc` honors with
//!   jittered exponential backoff.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use std::{fmt, io};

use fpga_flow::fault::{CancelToken, FaultPlan, KILL_WORKER_PANIC};
use fpga_flow::{check, DiskStore, FlowCtx, StageCache, TraceLog};
use fpga_lint::{DiagSink, Diagnostic};
use serde_json::Value;

use crate::artifact::RemoteTierClient;
use crate::metrics::{Metrics, MetricsSnapshot, ServiceCounters, StageCacheCounters};
use crate::proto::{
    self, CompileRequest, Event, ReadLineError, Request, SourceFormat, PROTO_VERSION,
};
use crate::queue::JobQueue;
use crate::supervisor;

/// Where and how the daemon runs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP bind address, e.g. `"127.0.0.1:7171"` (`:0` picks a free
    /// port). `None` disables TCP.
    pub tcp_addr: Option<String>,
    /// Unix-domain socket path. `None` disables it. Unix only.
    pub unix_path: Option<PathBuf>,
    /// Worker threads compiling jobs.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Default *and* cap for per-job deadlines, in milliseconds: a job
    /// that doesn't ask for a deadline gets this one, and a job that
    /// asks for more is clamped to it. `None` disables deadlines for
    /// jobs that don't request one.
    pub max_deadline_ms: Option<u64>,
    /// Read timeout while waiting for a client's next request; a
    /// connection idle longer is told so and closed. `None` waits
    /// forever (the pre-hardening behavior).
    pub idle_timeout_ms: Option<u64>,
    /// Maximum bytes in one request line; longer lines are rejected
    /// with a structured error instead of buffered without bound.
    pub max_line_bytes: usize,
    /// Maximum concurrently-served connections; excess connections get
    /// an `overloaded` error (with `retry_after_ms`) and are closed.
    pub max_connections: usize,
    /// Backoff hint attached to `overloaded` and queue-full rejections.
    pub retry_after_ms: u64,
    /// Durable stage-artifact store root. When set, completed stages
    /// survive daemon restarts (and crashes): a fresh daemon pointed at
    /// the same directory serves them as disk hits instead of
    /// recomputing. `None` keeps the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget for the durable store, in mebibytes; beyond it the
    /// least-recently-used entries are evicted. `None` means unbounded.
    /// Ignored without `cache_dir`.
    pub cache_budget_mb: Option<u64>,
    /// Entry cap for the *in-memory* cache; beyond it the
    /// least-recently-used entries are evicted from memory (they remain
    /// reachable from the durable store when one is configured). `None`
    /// means unbounded.
    pub cache_entries: Option<usize>,
    /// `flow-gateway` address for the farm's shared artifact tier.
    /// When set (together with `cache_dir`), stage misses consult
    /// affinity peers through the gateway before recomputing, and fresh
    /// artifacts are published back. Strictly best-effort: any tier
    /// failure degrades to a local recompute within the job's remaining
    /// deadline, never a job error. No effect without `cache_dir` (the
    /// tier ships raw durable-store entries).
    pub artifact_gateway: Option<String>,
    /// Connect/read/write timeout for artifact tier exchanges.
    pub artifact_timeout_ms: u64,
    /// Deterministic fault injection for tests: makes named stages
    /// panic/fail/stall on their K-th execution. Never set in
    /// production configs.
    pub fault: Option<Arc<FaultPlan>>,
    /// Default place-and-route worker threads per job. A request's own
    /// `threads` field wins over this; `None` defers to the engines'
    /// default (the `FLOW_THREADS` environment variable, else 1).
    /// Never part of stage-cache keys, so a farm of daemons with
    /// different thread counts still shares artifacts.
    pub threads: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tcp_addr: Some("127.0.0.1:0".to_string()),
            unix_path: None,
            workers: 2,
            queue_capacity: 32,
            max_deadline_ms: Some(300_000),
            idle_timeout_ms: Some(300_000),
            max_line_bytes: 8 * 1024 * 1024,
            max_connections: 256,
            retry_after_ms: 200,
            cache_dir: None,
            cache_budget_mb: None,
            cache_entries: None,
            artifact_gateway: None,
            artifact_timeout_ms: 1_000,
            fault: None,
            threads: None,
        }
    }
}

/// What a queued job does with its request: run the full compile flow,
/// only the deep design-rule check, or only the deep equivalence check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobKind {
    Compile,
    Lint,
    Verify,
}

/// One queued job: the request plus the channel its events flow
/// back through (the submitting connection forwards them to the client)
/// and the cancellation handle both sides share.
struct Job {
    id: u64,
    kind: JobKind,
    req: CompileRequest,
    events: mpsc::Sender<Event>,
    cancel: CancelToken,
    deadline_ms: Option<u64>,
}

struct Shared {
    cache: StageCache,
    /// Remote artifact tier client, kept for its counters; the cache
    /// holds its own `Arc` and drives the actual fetch/publish calls.
    remote: Option<Arc<RemoteTierClient>>,
    queue: JobQueue<Job>,
    config: ServerConfig,
    /// Per-stage latency histograms (and the unknown-stage-id tripwire).
    metrics: Metrics,
    shutting_down: AtomicBool,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_panicked: AtomicU64,
    jobs_timed_out: AtomicU64,
    jobs_cancelled: AtomicU64,
    /// `Arc`ed separately so the supervisor can count respawns without
    /// holding the whole shared state.
    workers_respawned: Arc<AtomicU64>,
    open_connections: AtomicU64,
    connections_rejected: AtomicU64,
    next_job_id: AtomicU64,
}

impl Shared {
    fn stats_json(&self) -> Value {
        let mut jobs = serde_json::Map::new();
        for (name, counter) in [
            ("submitted", &self.jobs_submitted),
            ("completed", &self.jobs_completed),
            ("failed", &self.jobs_failed),
            ("rejected", &self.jobs_rejected),
            ("panicked", &self.jobs_panicked),
            ("timed_out", &self.jobs_timed_out),
            ("cancelled", &self.jobs_cancelled),
        ] {
            jobs.insert(
                name.to_string(),
                serde_json::json!(counter.load(Ordering::Relaxed)),
            );
        }
        jobs.insert(
            "queued".to_string(),
            serde_json::json!(self.queue.len() as u64),
        );
        let mut root = serde_json::Map::new();
        root.insert("event".to_string(), serde_json::json!("stats"));
        root.insert(
            "version".to_string(),
            serde_json::json!(fpga_flow::FLOW_VERSION),
        );
        root.insert("jobs".to_string(), Value::Object(jobs));
        root.insert(
            "workers".to_string(),
            serde_json::json!({
                "configured": self.config.workers.max(1) as u64,
                "respawned": self.workers_respawned.load(Ordering::Relaxed),
            }),
        );
        root.insert(
            "connections".to_string(),
            serde_json::json!({
                "open": self.open_connections.load(Ordering::Relaxed),
                "rejected": self.connections_rejected.load(Ordering::Relaxed),
                "limit": self.config.max_connections as u64,
            }),
        );
        root.insert(
            "limits".to_string(),
            serde_json::json!({
                "max_deadline_ms": self.config.max_deadline_ms,
                "idle_timeout_ms": self.config.idle_timeout_ms,
                "max_line_bytes": self.config.max_line_bytes as u64,
                "retry_after_ms": self.config.retry_after_ms,
            }),
        );
        root.insert("cache".to_string(), self.cache.stats_json());
        Value::Object(root)
    }

    /// The `status` verb body: a lightweight health probe — queue and
    /// worker state without the full stats/metrics payloads. Shaped for
    /// `flow-gateway`, which folds it into its per-backend table.
    fn status_json(&self) -> Value {
        serde_json::json!({
            "event": "status",
            "role": "flowd",
            "version": fpga_flow::FLOW_VERSION,
            "proto_version": PROTO_VERSION,
            "shutting_down": self.shutting_down.load(Ordering::SeqCst),
            "queue": serde_json::json!({
                "depth": self.queue.len() as u64,
                "capacity": self.config.queue_capacity as u64,
                "peak": self.queue.peak() as u64,
            }),
            "workers": serde_json::json!({
                "configured": self.config.workers.max(1) as u64,
                "respawned": self.workers_respawned.load(Ordering::Relaxed),
            }),
            "connections": serde_json::json!({
                "open": self.open_connections.load(Ordering::Relaxed),
                "limit": self.config.max_connections as u64,
            }),
        })
    }

    /// Gather every live counter into one [`MetricsSnapshot`] — the
    /// single source both the JSON and Prometheus-text renderings of the
    /// `metrics` verb draw from.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        let service = ServiceCounters {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_panicked: self.jobs_panicked.load(Ordering::Relaxed),
            jobs_timed_out: self.jobs_timed_out.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
            queue_peak: self.queue.peak() as u64,
            workers_configured: self.config.workers.max(1) as u64,
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            connections_open: self.open_connections.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
        };
        let stages = self
            .metrics
            .stage_snapshots()
            .into_iter()
            .zip(self.cache.all_stats())
            .map(|((name, hist), (_, c))| {
                let cache = StageCacheCounters {
                    memory_hits: c.memory_hits(),
                    disk_hits: c.disk_hits,
                    remote_hits: c.remote_hits,
                    misses: c.misses,
                    wall_ms: c.wall_nanos / 1_000_000,
                };
                (name, hist, cache)
            })
            .collect();
        let store = self.cache.store().map(|s| {
            let c = s.counters();
            (
                c.disk_hits,
                c.disk_misses,
                c.quarantined,
                c.evicted,
                c.writes,
            )
        });
        MetricsSnapshot {
            service,
            stages,
            cache_entries: self.cache.len() as u64,
            cache_memory_evicted: self.cache.memory_evicted(),
            store,
            remote: self.remote.as_ref().map(|r| r.counters()),
            unknown_stage_events: self.metrics.unknown_stage_events(),
            lint_rules: self.metrics.lint_rule_snapshots(),
            unknown_lint_rules: self.metrics.unknown_lint_rules(),
            verify_rules: self.metrics.verify_rule_snapshots(),
            unknown_verify_rules: self.metrics.unknown_verify_rules(),
        }
    }

    /// The `metrics` verb's JSON body, framed and versioned.
    fn metrics_json(&self) -> Value {
        let mut body = match self.metrics_snapshot().to_json() {
            Value::Object(map) => map,
            other => {
                let mut map = serde_json::Map::new();
                map.insert("body".to_string(), other);
                map
            }
        };
        body.insert("event".to_string(), serde_json::json!("metrics"));
        body.insert(
            "version".to_string(),
            serde_json::json!(fpga_flow::FLOW_VERSION),
        );
        body.insert(
            "proto_version".to_string(),
            serde_json::json!(PROTO_VERSION),
        );
        Value::Object(body)
    }

    fn retry_after(&self) -> u64 {
        self.config.retry_after_ms
    }
}

/// Decrements the open-connection gauge when a connection thread ends,
/// however it ends (including by panic).
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.open_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running daemon. Dropping it without calling [`Server::shutdown`] or
/// [`Server::wait`] aborts listeners non-gracefully at process exit;
/// tests and `flowd` always go through the graceful path.
pub struct Server {
    shared: Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    threads: Vec<JoinHandle<()>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("tcp_addr", &self.tcp_addr)
            .field("unix_path", &self.unix_path)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Bind the configured listeners and start the supervised worker
    /// pool.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        if config.tcp_addr.is_none() && config.unix_path.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "flowd needs at least one of --tcp / --unix",
            ));
        }
        let workers = config.workers.max(1);
        let queue_capacity = config.queue_capacity.max(1);
        let mut cache = StageCache::new();
        if let Some(dir) = &config.cache_dir {
            let budget = config.cache_budget_mb.map(|mb| mb * 1024 * 1024);
            let store = DiskStore::open(dir, budget)?;
            cache = cache.with_store(Arc::new(store));
        }
        if let Some(cap) = config.cache_entries {
            cache = cache.with_capacity(cap);
        }
        let mut remote = None;
        if let Some(gw) = &config.artifact_gateway {
            let client = Arc::new(RemoteTierClient::new(
                gw.clone(),
                config.artifact_timeout_ms,
                config.max_line_bytes,
            ));
            cache = cache.with_remote(Arc::clone(&client) as Arc<dyn fpga_flow::RemoteTier>);
            remote = Some(client);
        }
        let shared = Arc::new(Shared {
            cache,
            remote,
            queue: JobQueue::new(queue_capacity),
            config,
            metrics: Metrics::new(),
            shutting_down: AtomicBool::new(false),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_panicked: AtomicU64::new(0),
            jobs_timed_out: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            workers_respawned: Arc::new(AtomicU64::new(0)),
            open_connections: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            next_job_id: AtomicU64::new(1),
        });

        let mut threads = Vec::new();
        {
            let worker_shared = Arc::clone(&shared);
            threads.push(supervisor::supervise_workers(
                "flowd-worker",
                workers,
                Arc::clone(&shared.workers_respawned),
                move || worker_loop(&worker_shared),
            )?);
        }

        let tcp_addr = match &shared.config.tcp_addr {
            Some(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let local = listener.local_addr()?;
                let shared = Arc::clone(&shared);
                threads.push(
                    std::thread::Builder::new()
                        .name("flowd-accept-tcp".to_string())
                        .spawn(move || tcp_accept_loop(listener, &shared))?,
                );
                Some(local)
            }
            None => None,
        };

        #[cfg(unix)]
        let unix_path = match shared.config.unix_path.clone() {
            Some(path) => {
                // A previous daemon's socket file would make bind fail.
                let _ = std::fs::remove_file(&path);
                let listener = UnixListener::bind(&path)?;
                let shared = Arc::clone(&shared);
                let thread_path = path.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name("flowd-accept-unix".to_string())
                        .spawn(move || unix_accept_loop(listener, &shared, &thread_path))?,
                );
                Some(path)
            }
            None => None,
        };
        #[cfg(not(unix))]
        let unix_path = {
            if shared.config.unix_path.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ));
            }
            None
        };

        Ok(Server {
            shared,
            tcp_addr,
            unix_path,
            threads,
        })
    }

    /// The bound TCP address (with the real port when `:0` was asked).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// The shared stage cache (tests assert on its counters).
    pub fn cache(&self) -> &StageCache {
        &self.shared.cache
    }

    /// Current job + cache statistics.
    pub fn stats_json(&self) -> Value {
        self.shared.stats_json()
    }

    /// The `status` verb's body: the daemon's lightweight health probe.
    pub fn status_json(&self) -> Value {
        self.shared.status_json()
    }

    /// The `metrics` verb's JSON body (histograms, cache tiers, queue
    /// high-water mark); what a client sees for `{"cmd":"metrics"}`.
    pub fn metrics_json(&self) -> Value {
        self.shared.metrics_json()
    }

    /// Prometheus-style text exposition of the same snapshot
    /// (`flowd --metrics-dump` prints this at exit).
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_snapshot().to_prometheus_text()
    }

    /// Graceful shutdown: reject new jobs, drain the queue, stop the
    /// listeners, join every daemon thread.
    pub fn shutdown(mut self) {
        trigger_shutdown(&self.shared, self.tcp_addr, self.unix_path.as_deref());
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        drain_connections(&self.shared);
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Block until a client's `shutdown` command stops the daemon (what
    /// `flowd` does after printing its banner). Takes `&mut self` so the
    /// caller can still read final metrics afterwards
    /// (`--metrics-dump`); calling it twice is a no-op.
    pub fn wait(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        drain_connections(&self.shared);
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Connection threads are detached, so joining the listener and worker
/// threads does not prove the last ack left the building — in particular
/// the `shutting_down` reply to the client that requested the shutdown.
/// Give in-flight connections a bounded grace period to finish their
/// final write before the process tears the sockets down.
fn drain_connections(shared: &Shared) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while shared.open_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
}

/// Flip the flag, drain the queue, and poke each listener with a no-op
/// connection so its blocking `accept` observes the flag and exits.
fn trigger_shutdown(
    shared: &Shared,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<&std::path::Path>,
) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return; // already triggered
    }
    shared.queue.drain();
    if let Some(addr) = tcp_addr {
        let _ = TcpStream::connect(addr);
    }
    #[cfg(unix)]
    if let Some(path) = unix_path {
        let _ = UnixStream::connect(path);
    }
    #[cfg(not(unix))]
    let _ = unix_path;
}

/// Wire form of a connection-level complaint (no job attached).
fn conn_error(
    kind: Option<&str>,
    message: impl Into<String>,
    retry_after_ms: Option<u64>,
) -> Value {
    Event::Error {
        job: None,
        kind: kind.map(str::to_string),
        stage: None,
        message: message.into(),
        retry_after_ms,
        diagnostics: Vec::new(),
    }
    .to_value()
}

/// Admission control shared by both accept loops. Returns the connection
/// guard when the connection should be served; `None` when it was
/// answered (shutdown notice / overload rejection) and must be dropped,
/// or when the whole accept loop should stop.
enum Admission {
    Serve(ConnGuard),
    Reject,
    StopAccepting,
}

fn admit(stream: &mut impl Write, shared: &Arc<Shared>) -> Admission {
    if shared.shutting_down.load(Ordering::SeqCst) {
        // A real client racing shutdown deserves a reason, not a
        // wordless hangup. (The shutdown self-poke also lands here; it
        // never reads, so the write is harmless.)
        let _ = proto::write_line(
            stream,
            &conn_error(Some("shutting-down"), "shutting down", None),
        );
        return Admission::StopAccepting;
    }
    let open = shared.open_connections.fetch_add(1, Ordering::SeqCst);
    if open >= shared.config.max_connections as u64 {
        shared.open_connections.fetch_sub(1, Ordering::SeqCst);
        shared.connections_rejected.fetch_add(1, Ordering::SeqCst);
        let _ = proto::write_line(
            stream,
            &conn_error(
                Some("overloaded"),
                format!(
                    "too many connections ({} open)",
                    shared.config.max_connections
                ),
                Some(shared.retry_after()),
            ),
        );
        return Admission::Reject;
    }
    Admission::Serve(ConnGuard(Arc::clone(shared)))
}

fn idle_timeout(shared: &Shared) -> Option<Duration> {
    shared
        .config
        .idle_timeout_ms
        .map(|ms| Duration::from_millis(ms.max(1)))
}

fn tcp_accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let guard = match admit(&mut stream, shared) {
                    Admission::Serve(guard) => guard,
                    Admission::Reject => continue,
                    Admission::StopAccepting => return,
                };
                let _ = stream.set_read_timeout(idle_timeout(shared));
                let shared = Arc::clone(shared);
                let addr = listener.local_addr().ok();
                let _ = std::thread::Builder::new()
                    .name("flowd-conn".to_string())
                    .spawn(move || {
                        let _guard = guard;
                        serve_connection(stream, &shared, addr, None);
                    });
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

#[cfg(unix)]
fn unix_accept_loop(listener: UnixListener, shared: &Arc<Shared>, path: &std::path::Path) {
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let guard = match admit(&mut stream, shared) {
                    Admission::Serve(guard) => guard,
                    Admission::Reject => continue,
                    Admission::StopAccepting => return,
                };
                let _ = stream.set_read_timeout(idle_timeout(shared));
                let shared = Arc::clone(shared);
                let path = path.to_path_buf();
                let _ = std::thread::Builder::new()
                    .name("flowd-conn".to_string())
                    .spawn(move || {
                        let _guard = guard;
                        serve_connection(stream, &shared, None, Some(path));
                    });
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Serve one client connection: a loop of request lines, each answered
/// by one or more event lines. Works over any bidirectional stream.
fn serve_connection<S: Read + Write + TryCloneStream>(
    stream: S,
    shared: &Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
) {
    let Ok(mut writer) = stream.try_clone_stream() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match proto::read_line_limited(&mut reader, shared.config.max_line_bytes) {
            Ok(Some(v)) => v,
            Ok(None) => return, // client hung up
            Err(ReadLineError::TooLong { limit }) => {
                // The oversized line was drained (never buffered beyond
                // the limit), so framing is intact: answer and keep
                // serving this connection.
                if proto::write_line(
                    &mut writer,
                    &conn_error(
                        Some("oversized"),
                        format!("request line exceeds {limit} bytes"),
                        None,
                    ),
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
            Err(ReadLineError::BadJson(message)) => {
                let _ = proto::write_line(
                    &mut writer,
                    &conn_error(None, format!("bad JSON: {message}"), None),
                );
                return;
            }
            Err(ReadLineError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                let _ = proto::write_line(
                    &mut writer,
                    &conn_error(Some("idle-timeout"), "connection idle too long", None),
                );
                return;
            }
            Err(ReadLineError::Io(e)) => {
                let _ = proto::write_line(&mut writer, &conn_error(None, e.to_string(), None));
                return;
            }
        };
        let req = match proto::parse_request_value(&line) {
            Ok(req) => req,
            Err(message) => {
                let _ = proto::write_line(&mut writer, &conn_error(None, message, None));
                continue;
            }
        };
        // Exhaustive: a new verb fails to compile until it is answered.
        match req {
            Request::Ping => {
                let pong = Event::Pong {
                    version: fpga_flow::FLOW_VERSION.to_string(),
                    proto_version: PROTO_VERSION,
                };
                let _ = proto::write_line(&mut writer, &pong.to_value());
            }
            Request::Stats => {
                let _ =
                    proto::write_line(&mut writer, &Event::Stats(shared.stats_json()).to_value());
            }
            Request::Metrics { text } => {
                let body = if text {
                    serde_json::json!({
                        "event": "metrics",
                        "format": "text",
                        "text": shared.metrics_snapshot().to_prometheus_text(),
                    })
                } else {
                    shared.metrics_json()
                };
                let _ = proto::write_line(&mut writer, &Event::Metrics(body).to_value());
            }
            Request::Status => {
                let _ =
                    proto::write_line(&mut writer, &Event::Status(shared.status_json()).to_value());
            }
            Request::Shutdown => {
                // Trigger BEFORE acknowledging: once the client reads the
                // ack, the queue is already draining, so nothing submitted
                // afterwards can slip in and be served.
                trigger_shutdown(shared, tcp_addr, unix_path.as_deref());
                let _ = proto::write_line(&mut writer, &Event::ShuttingDown.to_value());
                return;
            }
            Request::Compile(req) => {
                if !handle_submit(JobKind::Compile, *req, shared, &mut writer) {
                    return; // client gone mid-stream
                }
            }
            Request::Lint(req) => {
                if !handle_submit(JobKind::Lint, *req, shared, &mut writer) {
                    return;
                }
            }
            Request::Verify(req) => {
                if !handle_submit(JobKind::Verify, *req, shared, &mut writer) {
                    return;
                }
            }
            Request::ArtifactGet { stage, key, kind } => {
                let event = artifact_get_event(shared, &stage, &key, &kind);
                let _ = proto::write_line(&mut writer, &event.to_value());
            }
            Request::ArtifactPut {
                stage,
                key,
                kind,
                data_hex,
            } => {
                let event = artifact_put_event(shared, &stage, &key, &kind, &data_hex);
                let _ = proto::write_line(&mut writer, &event.to_value());
            }
        }
    }
}

/// Map a wire stage name to its [`fpga_flow::StageId`]. Unknown names
/// answer as a miss, not an error — a newer peer may know stages this
/// daemon doesn't.
fn stage_by_name(name: &str) -> Option<fpga_flow::StageId> {
    fpga_flow::cache::STAGES
        .iter()
        .copied()
        .find(|s| s.name() == name)
}

/// Answer a peer's `artifact_get` from the durable store ONLY — never
/// from this daemon's own remote tier, so lookups can't bounce around
/// the farm. `raw_entry` re-verifies the digest before shipping, so a
/// locally-rotted entry is quarantined here and answered as a miss.
fn artifact_get_event(shared: &Arc<Shared>, stage: &str, key: &str, kind: &str) -> Event {
    let raw = stage_by_name(stage).and_then(|sid| {
        shared
            .cache
            .store()
            .and_then(|store| store.raw_entry(sid, key, kind))
    });
    match raw {
        Some(raw) => Event::Artifact {
            stage: stage.to_string(),
            key: key.to_string(),
            hit: true,
            data_hex: Some(proto::to_hex(&raw)),
        },
        None => Event::Artifact {
            stage: stage.to_string(),
            key: key.to_string(),
            hit: false,
            data_hex: None,
        },
    }
}

/// Accept a replicated `artifact_put` into the durable store.
/// `admit_raw` re-verifies the digest against the addressed key before
/// installing; a corrupt or mismatched payload is quarantined and
/// refused with the reason in the ack.
fn artifact_put_event(
    shared: &Arc<Shared>,
    stage: &str,
    key: &str,
    kind: &str,
    data_hex: &str,
) -> Event {
    let refuse = |message: String| Event::ArtifactAck {
        stored: false,
        message: Some(message),
    };
    let Some(sid) = stage_by_name(stage) else {
        return refuse(format!("unknown stage '{stage}'"));
    };
    let Some(store) = shared.cache.store() else {
        return refuse("no durable store configured (--cache-dir)".to_string());
    };
    let raw = match proto::from_hex(data_hex) {
        Ok(raw) => raw,
        Err(e) => return refuse(format!("bad data_hex: {e}")),
    };
    match store.admit_raw(sid, key, kind, &raw) {
        Ok(_) => Event::ArtifactAck {
            stored: true,
            message: None,
        },
        Err(reason) => refuse(reason),
    }
}

/// The job's effective deadline: the client's wish clamped to the
/// server's cap, or the cap itself when the client didn't ask.
fn effective_deadline_ms(requested: Option<u64>, cap: Option<u64>) -> Option<u64> {
    match (requested, cap) {
        (Some(r), Some(c)) => Some(r.min(c)),
        (Some(r), None) => Some(r),
        (None, cap) => cap,
    }
}

/// Submit one compile or lint job and forward its event stream to the
/// client. Returns `false` when the client connection broke (which also
/// cancels the job, so it stops at its next stage boundary).
fn handle_submit(
    kind: JobKind,
    mut req: CompileRequest,
    shared: &Arc<Shared>,
    writer: &mut impl Write,
) -> bool {
    let id = shared.next_job_id.fetch_add(1, Ordering::Relaxed);
    let deadline_ms = effective_deadline_ms(req.deadline_ms.take(), shared.config.max_deadline_ms);
    let cancel = match deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::new(),
    };
    let (tx, rx) = mpsc::channel::<Event>();
    match shared.queue.submit(Job {
        id,
        kind,
        req,
        events: tx,
        cancel: cancel.clone(),
        deadline_ms,
    }) {
        Err(reason) => {
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            let rejected = Event::Rejected {
                job: id,
                reason: reason.to_string(),
                retry_after_ms: Some(shared.retry_after()),
            };
            proto::write_line(writer, &rejected.to_value()).is_ok()
        }
        Ok(()) => {
            shared.jobs_submitted.fetch_add(1, Ordering::Relaxed);
            if proto::write_line(writer, &Event::Queued { job: id }.to_value()).is_err() {
                // Client left before the ack: stop the job at its next
                // stage boundary instead of computing for nobody.
                cancel.cancel();
                return false;
            }
            // Forward until the worker's terminal event.
            let mut saw_terminal = false;
            for event in rx {
                let terminal = matches!(
                    event,
                    Event::Done { .. }
                        | Event::LintReport { .. }
                        | Event::VerifyReport { .. }
                        | Event::Error { .. }
                        | Event::Timeout { .. }
                );
                if proto::write_line(writer, &event.to_value()).is_err() {
                    cancel.cancel();
                    return false;
                }
                if terminal {
                    saw_terminal = true;
                    break;
                }
            }
            if !saw_terminal {
                // The worker died mid-job (its event sender dropped
                // without a terminal event). The supervisor is already
                // respawning it; tell the client what happened.
                let lost = Event::Error {
                    job: Some(id),
                    kind: Some("worker-lost".into()),
                    stage: None,
                    message: "worker died while running this job".into(),
                    retry_after_ms: None,
                    diagnostics: Vec::new(),
                };
                return proto::write_line(writer, &lost.to_value()).is_ok();
            }
            true
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.next() {
        run_job(shared, job);
    }
}

/// Best-effort panic payload rendering for the structured `panic` event.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "stage panicked (non-string payload)".to_string()
    }
}

/// What a job's flow produced when it ran to completion.
enum Finished {
    Compiled(Box<fpga_flow::FlowArtifacts>),
    Linted(fpga_flow::LintReport),
    Verified(fpga_flow::VerifyReport),
}

/// Run one job under the panic guard and classify its ending: `done` or
/// `lint_report`, flow `error`, structured `panic`, `timeout` (with the
/// completed-stage list), or silent cancellation after a client hang-up.
fn run_job(shared: &Arc<Shared>, job: Job) {
    let Job {
        id,
        kind,
        req,
        events,
        cancel,
        deadline_ms,
    } = job;
    let mut options = match req.flow_options() {
        Ok(opts) => opts,
        Err(message) => {
            // Unreachable in practice: options were validated at parse
            // time. Kept as a structured error, not a panic.
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            let _ = events.send(Event::Error {
                job: Some(id),
                kind: None,
                stage: Some("options".into()),
                message,
                retry_after_ms: None,
                diagnostics: Vec::new(),
            });
            return;
        }
    };
    // Per-job thread count beats the daemon default; neither enters the
    // stage cache, so artifacts stay shared across differently-threaded
    // nodes.
    options.threads = req.threads.map(|n| n as usize).or(shared.config.threads);
    // Stream per-stage progress as it happens (feeding the latency
    // histograms on the way out), and remember which stages finished so
    // a timeout can report how far the job got. The sender side never
    // blocks; if the client left, sends fail and are ignored.
    let completed = Mutex::new(Vec::<String>::new());
    let tx = Mutex::new(events.clone());
    let observer = |s: &fpga_flow::StageReport| {
        if s.ok {
            completed
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push(s.stage.clone());
        }
        if let Some(stage_id) = &s.id {
            shared.metrics.observe_stage(stage_id, s.elapsed_ms);
        }
        let _ = tx
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .send(Event::Stage {
                job: id,
                id: s.id.clone(),
                stage: s.stage.clone(),
                ok: s.ok,
                elapsed_ms: s.elapsed_ms,
                metrics: s.metrics.clone(),
            });
    };
    let trace = req.trace.then(TraceLog::new);
    // Collects gate findings so a lint-denied compile can attach them to
    // its error event; only wired in when the compile runs with lint on.
    let lint_sink = DiagSink::new();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut builder = FlowCtx::builder()
            .cache(&shared.cache)
            .observer(&observer)
            .cancel(&cancel);
        if let Some(fault) = shared.config.fault.as_deref() {
            builder = builder.fault(fault);
        }
        if let Some(trace) = &trace {
            builder = builder.trace(trace);
        }
        if kind == JobKind::Compile && (options.lint.enabled() || options.verify.enabled()) {
            builder = builder.lint_sink(&lint_sink);
        }
        let ctx = builder.build();
        match (kind, req.format) {
            (JobKind::Compile, SourceFormat::Vhdl) => {
                fpga_flow::run_vhdl_ctx(&req.source, &options, ctx)
                    .map(|art| Finished::Compiled(Box::new(art)))
            }
            (JobKind::Compile, SourceFormat::Blif) => {
                fpga_flow::run_blif_ctx(&req.source, &options, ctx)
                    .map(|art| Finished::Compiled(Box::new(art)))
            }
            (JobKind::Lint, SourceFormat::Vhdl) => {
                check::lint_vhdl(&req.source, &options, ctx).map(Finished::Linted)
            }
            (JobKind::Lint, SourceFormat::Blif) => {
                check::lint_blif(&req.source, &options, ctx).map(Finished::Linted)
            }
            (JobKind::Verify, SourceFormat::Vhdl) => {
                check::verify_vhdl(&req.source, &options, ctx).map(Finished::Verified)
            }
            (JobKind::Verify, SourceFormat::Blif) => {
                check::verify_blif(&req.source, &options, ctx).map(Finished::Verified)
            }
        }
    }));
    // EQ findings feed the flowd_verify_* family; everything else the
    // flowd_lint_* family. A finding is counted where its rule lives,
    // not by which job kind surfaced it.
    let count_rules = |diags: &[Diagnostic]| {
        for d in diags {
            if d.stage == "verify" {
                shared.metrics.observe_verify_rule(&d.code);
            } else {
                shared.metrics.observe_lint_rule(&d.code);
            }
        }
    };
    match result {
        Err(payload) => {
            if payload.downcast_ref::<&str>() == Some(&KILL_WORKER_PANIC) {
                // Fault-injection asked for a dead worker: let the
                // unwind continue so the supervisor's respawn path runs.
                // The job's channel drops without a terminal event; the
                // connection answers with `worker-lost`.
                std::panic::resume_unwind(payload);
            }
            shared.jobs_panicked.fetch_add(1, Ordering::Relaxed);
            let _ = events.send(Event::Error {
                job: Some(id),
                kind: Some("panic".into()),
                stage: None,
                message: panic_message(payload.as_ref()),
                retry_after_ms: None,
                diagnostics: Vec::new(),
            });
        }
        Ok(Ok(Finished::Compiled(art))) => {
            shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            count_rules(&art.lint);
            let _ = events.send(Event::Done {
                job: id,
                design: art.report.design.clone(),
                report: serde_json::to_value(&art.report),
                bitstream_hex: proto::to_hex(&art.bitstream_bytes),
                trace: trace.as_ref().map(TraceLog::to_value),
                lint: art.lint.clone(),
            });
        }
        Ok(Ok(Finished::Linted(report))) => {
            // A lint job "completes" whatever it found; severity is the
            // client's verdict to act on, carried in the diagnostics.
            shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            count_rules(&report.diagnostics);
            let _ = events.send(Event::LintReport {
                job: id,
                design: report.design.clone(),
                reached: report.reached.to_string(),
                diagnostics: report.diagnostics,
            });
        }
        Ok(Ok(Finished::Verified(report))) => {
            // Same contract as lint: the job "completes" whatever the
            // equivalence check found; the diagnostics carry the verdict.
            shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            count_rules(&report.diagnostics);
            let _ = events.send(Event::VerifyReport {
                job: id,
                design: report.design.clone(),
                reached: report.reached.to_string(),
                diagnostics: report.diagnostics,
            });
        }
        Ok(Err(e)) => {
            let completed = completed
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if cancel.cancelled() {
                // The client hung up; nobody is listening, but the event
                // documents the ending for any late reader.
                shared.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                let _ = events.send(Event::Error {
                    job: Some(id),
                    kind: Some("cancelled".into()),
                    stage: None,
                    message: "job cancelled (client disconnected)".into(),
                    retry_after_ms: None,
                    diagnostics: Vec::new(),
                });
            } else if cancel.timed_out() {
                shared.jobs_timed_out.fetch_add(1, Ordering::Relaxed);
                let _ = events.send(Event::Timeout {
                    job: id,
                    deadline_ms,
                    message: format!(
                        "deadline of {}ms exceeded after {} completed stage(s)",
                        deadline_ms.unwrap_or(0),
                        completed.len()
                    ),
                    completed_stages: completed.clone(),
                });
            } else {
                shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
                // A design-rule denial carries its findings; other
                // failures leave the sink's partial findings behind
                // (they described a design that never finished).
                let diagnostics = if e.stage == "lint" || e.stage == "verify" {
                    let diags = lint_sink.drain();
                    count_rules(&diags);
                    diags
                } else {
                    Vec::new()
                };
                let _ = events.send(Event::Error {
                    job: Some(id),
                    kind: None,
                    stage: Some(e.stage.to_string()),
                    message: e.message.clone(),
                    retry_after_ms: None,
                    diagnostics,
                });
            }
        }
    }
}

/// The one stream capability the connection loop needs beyond
/// `Read + Write`: a second handle for the writer half.
trait TryCloneStream: Sized + Send + 'static {
    type Writer: Write + Send + 'static;
    fn try_clone_stream(&self) -> io::Result<Self::Writer>;
}

impl TryCloneStream for TcpStream {
    type Writer = TcpStream;
    fn try_clone_stream(&self) -> io::Result<TcpStream> {
        self.try_clone()
    }
}

#[cfg(unix)]
impl TryCloneStream for UnixStream {
    type Writer = UnixStream;
    fn try_clone_stream(&self) -> io::Result<UnixStream> {
        self.try_clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_clamping() {
        assert_eq!(effective_deadline_ms(None, None), None);
        assert_eq!(effective_deadline_ms(None, Some(100)), Some(100));
        assert_eq!(effective_deadline_ms(Some(50), Some(100)), Some(50));
        assert_eq!(effective_deadline_ms(Some(500), Some(100)), Some(100));
        assert_eq!(effective_deadline_ms(Some(500), None), Some(500));
    }
}
