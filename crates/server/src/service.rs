//! The daemon: listeners, worker pool, job lifecycle, graceful shutdown.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::{fmt, io};

use fpga_flow::{FlowCtx, StageCache};
use serde_json::Value;

use crate::proto::{self, CompileRequest, Request, SourceFormat};
use crate::queue::JobQueue;

/// Where and how the daemon runs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP bind address, e.g. `"127.0.0.1:7171"` (`:0` picks a free
    /// port). `None` disables TCP.
    pub tcp_addr: Option<String>,
    /// Unix-domain socket path. `None` disables it. Unix only.
    pub unix_path: Option<PathBuf>,
    /// Worker threads compiling jobs.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are rejected.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tcp_addr: Some("127.0.0.1:0".to_string()),
            unix_path: None,
            workers: 2,
            queue_capacity: 32,
        }
    }
}

/// One queued compile job: the request plus the channel its events flow
/// back through (the submitting connection forwards them to the client).
struct Job {
    id: u64,
    req: CompileRequest,
    events: mpsc::Sender<Value>,
}

struct Shared {
    cache: StageCache,
    queue: JobQueue<Job>,
    shutting_down: AtomicBool,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_rejected: AtomicU64,
    next_job_id: AtomicU64,
}

impl Shared {
    fn stats_json(&self) -> Value {
        let mut jobs = serde_json::Map::new();
        jobs.insert(
            "submitted".to_string(),
            serde_json::json!(self.jobs_submitted.load(Ordering::Relaxed)),
        );
        jobs.insert(
            "completed".to_string(),
            serde_json::json!(self.jobs_completed.load(Ordering::Relaxed)),
        );
        jobs.insert(
            "failed".to_string(),
            serde_json::json!(self.jobs_failed.load(Ordering::Relaxed)),
        );
        jobs.insert(
            "rejected".to_string(),
            serde_json::json!(self.jobs_rejected.load(Ordering::Relaxed)),
        );
        jobs.insert(
            "queued".to_string(),
            serde_json::json!(self.queue.len() as u64),
        );
        let mut root = serde_json::Map::new();
        root.insert("event".to_string(), serde_json::json!("stats"));
        root.insert(
            "version".to_string(),
            serde_json::json!(fpga_flow::FLOW_VERSION),
        );
        root.insert("jobs".to_string(), Value::Object(jobs));
        root.insert("cache".to_string(), self.cache.stats_json());
        Value::Object(root)
    }
}

/// A running daemon. Dropping it without calling [`Server::shutdown`] or
/// [`Server::wait`] aborts listeners non-gracefully at process exit;
/// tests and `flowd` always go through the graceful path.
pub struct Server {
    shared: Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    threads: Vec<JoinHandle<()>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("tcp_addr", &self.tcp_addr)
            .field("unix_path", &self.unix_path)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Bind the configured listeners and start the worker pool.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        if config.tcp_addr.is_none() && config.unix_path.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "flowd needs at least one of --tcp / --unix",
            ));
        }
        let shared = Arc::new(Shared {
            cache: StageCache::new(),
            queue: JobQueue::new(config.queue_capacity.max(1)),
            shutting_down: AtomicBool::new(false),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            next_job_id: AtomicU64::new(1),
        });

        let mut threads = Vec::new();
        for i in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("flowd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        let tcp_addr = match &config.tcp_addr {
            Some(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let local = listener.local_addr()?;
                let shared = Arc::clone(&shared);
                threads.push(
                    std::thread::Builder::new()
                        .name("flowd-accept-tcp".to_string())
                        .spawn(move || tcp_accept_loop(listener, &shared))?,
                );
                Some(local)
            }
            None => None,
        };

        #[cfg(unix)]
        let unix_path = match &config.unix_path {
            Some(path) => {
                // A previous daemon's socket file would make bind fail.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                let shared = Arc::clone(&shared);
                let path = path.clone();
                let thread_path = path.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name("flowd-accept-unix".to_string())
                        .spawn(move || unix_accept_loop(listener, &shared, &thread_path))?,
                );
                Some(path)
            }
            None => None,
        };
        #[cfg(not(unix))]
        let unix_path = {
            if config.unix_path.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ));
            }
            None
        };

        Ok(Server {
            shared,
            tcp_addr,
            unix_path,
            threads,
        })
    }

    /// The bound TCP address (with the real port when `:0` was asked).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// The shared stage cache (tests assert on its counters).
    pub fn cache(&self) -> &StageCache {
        &self.shared.cache
    }

    /// Current job + cache statistics.
    pub fn stats_json(&self) -> Value {
        self.shared.stats_json()
    }

    /// Graceful shutdown: reject new jobs, drain the queue, stop the
    /// listeners, join every daemon thread.
    pub fn shutdown(mut self) {
        trigger_shutdown(&self.shared, self.tcp_addr, self.unix_path.as_deref());
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Block until a client's `shutdown` command stops the daemon (what
    /// `flowd` does after printing its banner).
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Flip the flag, drain the queue, and poke each listener with a no-op
/// connection so its blocking `accept` observes the flag and exits.
fn trigger_shutdown(
    shared: &Shared,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<&std::path::Path>,
) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return; // already triggered
    }
    shared.queue.drain();
    if let Some(addr) = tcp_addr {
        let _ = TcpStream::connect(addr);
    }
    #[cfg(unix)]
    if let Some(path) = unix_path {
        let _ = UnixStream::connect(path);
    }
    #[cfg(not(unix))]
    let _ = unix_path;
}

fn tcp_accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                let shared = Arc::clone(shared);
                let addr = listener.local_addr().ok();
                let _ = std::thread::Builder::new()
                    .name("flowd-conn".to_string())
                    .spawn(move || serve_connection(stream, &shared, addr, None));
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

#[cfg(unix)]
fn unix_accept_loop(listener: UnixListener, shared: &Arc<Shared>, path: &std::path::Path) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                let shared = Arc::clone(shared);
                let path = path.to_path_buf();
                let _ = std::thread::Builder::new()
                    .name("flowd-conn".to_string())
                    .spawn(move || serve_connection(stream, &shared, None, Some(path)));
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Serve one client connection: a loop of request lines, each answered
/// by one or more event lines. Works over any bidirectional stream.
fn serve_connection<S: Read + Write + TryCloneStream>(
    stream: S,
    shared: &Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
) {
    let Ok(mut writer) = stream.try_clone_stream() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match proto::read_line(&mut reader) {
            Ok(Some(v)) => v,
            Ok(None) => return, // client hung up
            Err(e) => {
                let _ = proto::write_line(
                    &mut writer,
                    &serde_json::json!({"event": "error", "message": e.to_string()}),
                );
                return;
            }
        };
        let req = match parse_value_request(&line) {
            Ok(req) => req,
            Err(message) => {
                let _ = proto::write_line(
                    &mut writer,
                    &serde_json::json!({"event": "error", "message": message}),
                );
                continue;
            }
        };
        match req {
            Request::Ping => {
                let _ = proto::write_line(
                    &mut writer,
                    &serde_json::json!({"event": "pong", "version": fpga_flow::FLOW_VERSION}),
                );
            }
            Request::Stats => {
                let _ = proto::write_line(&mut writer, &shared.stats_json());
            }
            Request::Shutdown => {
                // Trigger BEFORE acknowledging: once the client reads the
                // ack, the queue is already draining, so nothing submitted
                // afterwards can slip in and be served.
                trigger_shutdown(shared, tcp_addr, unix_path.as_deref());
                let _ =
                    proto::write_line(&mut writer, &serde_json::json!({"event": "shutting_down"}));
                return;
            }
            Request::Compile(req) => {
                if !handle_compile(*req, shared, &mut writer) {
                    return; // client gone mid-stream
                }
            }
        }
    }
}

/// Submit one compile job and forward its event stream to the client.
/// Returns `false` when the client connection broke.
fn handle_compile(req: CompileRequest, shared: &Arc<Shared>, writer: &mut impl Write) -> bool {
    let id = shared.next_job_id.fetch_add(1, Ordering::Relaxed);
    let (tx, rx) = mpsc::channel::<Value>();
    match shared.queue.submit(Job {
        id,
        req,
        events: tx,
    }) {
        Err(reason) => {
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            proto::write_line(
                writer,
                &serde_json::json!({
                    "event": "rejected",
                    "job": id,
                    "reason": reason.to_string(),
                }),
            )
            .is_ok()
        }
        Ok(()) => {
            shared.jobs_submitted.fetch_add(1, Ordering::Relaxed);
            if proto::write_line(writer, &serde_json::json!({"event": "queued", "job": id}))
                .is_err()
            {
                // Keep draining the channel so the worker never blocks —
                // mpsc senders don't block, so just drop the receiver.
                return false;
            }
            // Forward until the worker's terminal event.
            for event in rx {
                let terminal = matches!(
                    event.get("event").and_then(Value::as_str),
                    Some("done") | Some("error")
                );
                if proto::write_line(writer, &event).is_err() {
                    return false;
                }
                if terminal {
                    break;
                }
            }
            true
        }
    }
}

/// `Request` parsing from an already-decoded `Value` (the connection
/// reads JSON once; re-serializing for [`proto::parse_request`] would be
/// wasteful).
fn parse_value_request(v: &Value) -> Result<Request, String> {
    // Round-trip through the text parser: requests are tiny, and one
    // parser beats two drifting copies of the field logic.
    proto::parse_request(&serde_json::to_string(v).map_err(|e| e.to_string())?)
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.next() {
        let Job { id, req, events } = job;
        // Stream per-stage progress as it happens. The sender side never
        // blocks; if the client left, sends fail and are ignored.
        let tx = Mutex::new(events.clone());
        let observer = move |s: &fpga_flow::StageReport| {
            let _ = tx.lock().expect("observer lock").send(serde_json::json!({
                "event": "stage",
                "job": id,
                "stage": s.stage.clone(),
                "ok": s.ok,
                "elapsed_ms": s.elapsed_ms,
                "metrics": s.metrics.clone(),
            }));
        };
        let ctx = FlowCtx {
            cache: Some(&shared.cache),
            observer: Some(&observer),
        };
        let result = match req.format {
            SourceFormat::Vhdl => fpga_flow::run_vhdl_ctx(&req.source, &req.options, ctx),
            SourceFormat::Blif => fpga_flow::run_blif_ctx(&req.source, &req.options, ctx),
        };
        match result {
            Ok(art) => {
                shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
                let report = serde_json::to_value(&art.report);
                let _ = events.send(serde_json::json!({
                    "event": "done",
                    "job": id,
                    "design": art.report.design.clone(),
                    "report": report,
                    "bitstream_hex": proto::to_hex(&art.bitstream_bytes),
                }));
            }
            Err(e) => {
                shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
                let _ = events.send(serde_json::json!({
                    "event": "error",
                    "job": id,
                    "stage": e.stage,
                    "message": e.message.clone(),
                }));
            }
        }
    }
}

/// The one stream capability the connection loop needs beyond
/// `Read + Write`: a second handle for the writer half.
trait TryCloneStream: Sized + Send + 'static {
    type Writer: Write + Send + 'static;
    fn try_clone_stream(&self) -> io::Result<Self::Writer>;
}

impl TryCloneStream for TcpStream {
    type Writer = TcpStream;
    fn try_clone_stream(&self) -> io::Result<TcpStream> {
        self.try_clone()
    }
}

#[cfg(unix)]
impl TryCloneStream for UnixStream {
    type Writer = UnixStream;
    fn try_clone_stream(&self) -> io::Result<UnixStream> {
        self.try_clone()
    }
}
