//! Bounded, backpressured job queue — and the weighted fair queue the
//! gateway schedules tenants with.
//!
//! Submissions beyond the capacity are *rejected*, not blocked: the
//! daemon tells the client the service is saturated instead of letting
//! connection threads pile up behind a silent queue. Workers block on
//! [`JobQueue::next`]; after [`JobQueue::drain`] the queue refuses new
//! work, lets workers finish what is already queued, and then releases
//! them with `None`.
//!
//! [`FairQueue`] is the multi-class sibling: items are queued per class
//! (tenant) and dequeued by weighted round robin, so one greedy class
//! cannot starve the rest. It is pure data — no locks, no clock — and
//! the gateway's admission governor drives it under its own mutex.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// At capacity — try again later.
    Full,
    /// The daemon is shutting down and takes no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "queue full"),
            SubmitError::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

struct State<T> {
    items: VecDeque<T>,
    draining: bool,
    /// Deepest the queue has ever been — the saturation high-water mark
    /// the metrics registry reports.
    peak: usize,
}

/// The queue. Shared by reference (the server wraps it in an `Arc`).
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        JobQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                draining: false,
                peak: 0,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Lock the state, recovering from poisoning: every mutation keeps
    /// the deque valid between statements, so a panicking holder must
    /// not take the whole daemon's queue down with it.
    fn lock_state(&self) -> MutexGuard<'_, State<T>> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Enqueue, or reject with the reason.
    pub fn submit(&self, item: T) -> Result<(), SubmitError> {
        let mut s = self.lock_state();
        if s.draining {
            return Err(SubmitError::ShuttingDown);
        }
        if s.items.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        s.items.push_back(item);
        s.peak = s.peak.max(s.items.len());
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Block until an item is available. `None` means the queue is
    /// draining and empty — the worker should exit.
    pub fn next(&self) -> Option<T> {
        let mut s = self.lock_state();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.draining {
                return None;
            }
            s = self
                .available
                .wait(s)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Stop accepting work; queued items still run, then workers drain
    /// out through `next() == None`.
    pub fn drain(&self) {
        self.lock_state().draining = true;
        self.available.notify_all();
    }

    pub fn len(&self) -> usize {
        self.lock_state().items.len()
    }

    /// Deepest the queue has ever been.
    pub fn peak(&self) -> usize {
        self.lock_state().peak
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One class's backlog inside a [`FairQueue`].
struct ClassQueue<T> {
    items: VecDeque<T>,
    weight: u32,
    /// Dequeues this class may still take in the current round-robin
    /// round; refilled to `weight` when its turn comes around again.
    credits: u32,
}

/// A bounded multi-class queue dequeued by weighted round robin.
///
/// Classes are created on first push. Each round of the scheduler visits
/// the active classes in order and lets class `c` dequeue up to
/// `weight(c)` items before yielding the head — classic deficit round
/// robin with unit-cost items, so over any long window class shares
/// converge to their weight ratios regardless of arrival order.
///
/// The bound is global: a push beyond `bound` total queued items is
/// rejected, which is what turns into a `retry_after_ms` shed at the
/// gateway.
pub struct FairQueue<T> {
    classes: HashMap<String, ClassQueue<T>>,
    /// Round-robin order over classes that currently have items.
    rotation: VecDeque<String>,
    len: usize,
    bound: usize,
    default_weight: u32,
}

impl<T> FairQueue<T> {
    pub fn new(bound: usize, default_weight: u32) -> Self {
        FairQueue {
            classes: HashMap::new(),
            rotation: VecDeque::new(),
            len: 0,
            bound,
            default_weight: default_weight.max(1),
        }
    }

    /// Set a class's scheduling weight (takes effect from its next
    /// round). Creating the class up front is fine: it occupies no
    /// rotation slot until it has items.
    pub fn set_weight(&mut self, class: &str, weight: u32) {
        let weight = weight.max(1);
        let default = self.default_weight;
        let entry = self
            .classes
            .entry(class.to_string())
            .or_insert_with(|| ClassQueue {
                items: VecDeque::new(),
                weight: default,
                credits: 0,
            });
        entry.weight = weight;
    }

    /// Queue an item for `class`; `Err` when the global bound is hit
    /// (the item is handed back so the caller can shed it).
    pub fn push(&mut self, class: &str, item: T) -> Result<(), T> {
        if self.len >= self.bound {
            return Err(item);
        }
        let default = self.default_weight;
        let entry = self
            .classes
            .entry(class.to_string())
            .or_insert_with(|| ClassQueue {
                items: VecDeque::new(),
                weight: default,
                credits: 0,
            });
        if entry.items.is_empty() && !self.rotation.iter().any(|c| c == class) {
            // (Re)joining the rotation: start the round with full
            // credits so a fresh class is served promptly. The linear
            // scan guards against a duplicate slot when remove_where
            // emptied the class but its rotation entry is still queued
            // (class counts are small — tenants, not jobs).
            entry.credits = entry.weight;
            self.rotation.push_back(class.to_string());
        }
        entry.items.push_back(item);
        self.len += 1;
        Ok(())
    }

    /// Dequeue the next item by weighted round robin. `None` when empty.
    pub fn pop(&mut self) -> Option<(String, T)> {
        self.pop_where(|_| true)
    }

    /// Dequeue the next item whose class satisfies `eligible` — the
    /// governor's hook for token-bucket gating. Ineligible classes keep
    /// their place in the rotation; `None` when no eligible class has
    /// items.
    pub fn pop_where(&mut self, mut eligible: impl FnMut(&str) -> bool) -> Option<(String, T)> {
        // At most one full lap: if no eligible class was found after
        // visiting every active class once, give up. Invariant: every
        // class in the rotation has items and credits >= 1 (credits are
        // refilled when a class rejoins or yields the head).
        for _ in 0..self.rotation.len() {
            let class = self.rotation.pop_front()?;
            let Some(cq) = self.classes.get_mut(&class) else {
                continue; // stale rotation entry
            };
            if cq.items.is_empty() {
                continue; // drained by remove_where; leaves the rotation
            }
            if !eligible(&class) {
                self.rotation.push_back(class);
                continue;
            }
            cq.credits = cq.credits.max(1) - 1;
            let item = cq.items.pop_front()?;
            self.len -= 1;
            if !cq.items.is_empty() {
                // Stay at the head while credits last; yield and refill
                // otherwise.
                if cq.credits > 0 {
                    self.rotation.push_front(class.clone());
                } else {
                    cq.credits = cq.weight;
                    self.rotation.push_back(class.clone());
                }
            }
            return Some((class, item));
        }
        None
    }

    /// Remove every queued item of `class` that matches `pred`,
    /// returning how many were removed (deadline-expired tickets).
    pub fn remove_where(&mut self, class: &str, pred: impl Fn(&T) -> bool) -> usize {
        let Some(cq) = self.classes.get_mut(class) else {
            return 0;
        };
        let before = cq.items.len();
        cq.items.retain(|item| !pred(item));
        let removed = before - cq.items.len();
        self.len -= removed;
        removed
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items for one class.
    pub fn class_len(&self, class: &str) -> usize {
        self.classes.get(class).map_or(0, |c| c.items.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_when_draining() {
        let q = JobQueue::new(2);
        assert_eq!(q.submit(1), Ok(()));
        assert_eq!(q.submit(2), Ok(()));
        assert_eq!(q.submit(3), Err(SubmitError::Full));
        assert_eq!(q.next(), Some(1));
        assert_eq!(q.submit(3), Ok(()));
        q.drain();
        assert_eq!(q.submit(4), Err(SubmitError::ShuttingDown));
        // Queued work still drains in order, then workers are released.
        assert_eq!(q.next(), Some(2));
        assert_eq!(q.next(), Some(3));
        assert_eq!(q.next(), None);
        assert_eq!(q.peak(), 2, "high-water mark survives the drain");
    }

    #[test]
    fn blocking_consumers_wake_on_submit_and_drain() {
        let q = Arc::new(JobQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.next() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..10 {
            while q.submit(i) == Err(SubmitError::Full) {
                std::thread::yield_now();
            }
        }
        // Let the consumers empty the queue before draining.
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.drain();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn fair_queue_interleaves_classes_round_robin() {
        let mut q = FairQueue::new(16, 1);
        for i in 0..3 {
            q.push("a", format!("a{i}")).unwrap();
            q.push("b", format!("b{i}")).unwrap();
        }
        let order: Vec<String> = std::iter::from_fn(|| q.pop().map(|(c, _)| c)).collect();
        assert_eq!(order, vec!["a", "b", "a", "b", "a", "b"]);
        assert!(q.is_empty());
    }

    #[test]
    fn fair_queue_weights_shape_the_schedule() {
        let mut q = FairQueue::new(32, 1);
        q.set_weight("heavy", 2);
        for i in 0..6 {
            q.push("heavy", i).unwrap();
        }
        for i in 0..3 {
            q.push("light", i).unwrap();
        }
        let order: Vec<String> = std::iter::from_fn(|| q.pop().map(|(c, _)| c)).collect();
        // Weight 2 vs 1: heavy takes two slots per round.
        assert_eq!(
            order,
            vec!["heavy", "heavy", "light", "heavy", "heavy", "light", "heavy", "heavy", "light"]
        );
    }

    #[test]
    fn fair_queue_one_greedy_class_cannot_starve_the_rest() {
        let mut q = FairQueue::new(64, 1);
        for i in 0..50 {
            q.push("greedy", i).unwrap();
        }
        q.push("meek", 0).unwrap();
        // The meek class's single item is served on the very next round,
        // not after the greedy backlog.
        let classes: Vec<String> = (0..3).filter_map(|_| q.pop().map(|(c, _)| c)).collect();
        assert!(classes.contains(&"meek".to_string()), "served {classes:?}");
    }

    #[test]
    fn fair_queue_bound_rejects_and_hands_the_item_back() {
        let mut q = FairQueue::new(2, 1);
        q.push("a", 1).unwrap();
        q.push("b", 2).unwrap();
        assert_eq!(q.push("a", 3), Err(3));
        assert_eq!(q.len(), 2);
        q.pop().unwrap();
        q.push("a", 3).unwrap();
    }

    #[test]
    fn fair_queue_pop_where_gates_classes_without_losing_their_turn() {
        let mut q = FairQueue::new(8, 1);
        q.push("blocked", 1).unwrap();
        q.push("open", 2).unwrap();
        // Only "open" is eligible; "blocked" keeps its place.
        let (class, item) = q.pop_where(|c| c == "open").unwrap();
        assert_eq!((class.as_str(), item), ("open", 2));
        assert!(q.pop_where(|c| c == "open").is_none());
        assert_eq!(q.class_len("blocked"), 1);
        let (class, item) = q.pop().unwrap();
        assert_eq!((class.as_str(), item), ("blocked", 1));
    }

    #[test]
    fn fair_queue_remove_where_drops_expired_tickets() {
        let mut q = FairQueue::new(8, 1);
        for i in 0..4 {
            q.push("t", i).unwrap();
        }
        assert_eq!(q.remove_where("t", |i| i % 2 == 0), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 3);
        // Emptied via remove_where, then refilled: still exactly one
        // rotation slot (no double turns).
        for i in 0..2 {
            q.push("t", 10 + i).unwrap();
            q.push("u", 20 + i).unwrap();
        }
        assert_eq!(q.remove_where("t", |_| true), 2);
        q.push("t", 30).unwrap();
        let order: Vec<String> = std::iter::from_fn(|| q.pop().map(|(c, _)| c)).collect();
        // "t" kept its single original rotation slot (no double turns
        // from the stale entry), "u" drains round-robin after it.
        assert_eq!(order, vec!["t", "u", "u"]);
    }
}
