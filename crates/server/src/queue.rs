//! Bounded, backpressured job queue.
//!
//! Submissions beyond the capacity are *rejected*, not blocked: the
//! daemon tells the client the service is saturated instead of letting
//! connection threads pile up behind a silent queue. Workers block on
//! [`JobQueue::next`]; after [`JobQueue::drain`] the queue refuses new
//! work, lets workers finish what is already queued, and then releases
//! them with `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// At capacity — try again later.
    Full,
    /// The daemon is shutting down and takes no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "queue full"),
            SubmitError::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

struct State<T> {
    items: VecDeque<T>,
    draining: bool,
    /// Deepest the queue has ever been — the saturation high-water mark
    /// the metrics registry reports.
    peak: usize,
}

/// The queue. Shared by reference (the server wraps it in an `Arc`).
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        JobQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                draining: false,
                peak: 0,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Lock the state, recovering from poisoning: every mutation keeps
    /// the deque valid between statements, so a panicking holder must
    /// not take the whole daemon's queue down with it.
    fn lock_state(&self) -> MutexGuard<'_, State<T>> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Enqueue, or reject with the reason.
    pub fn submit(&self, item: T) -> Result<(), SubmitError> {
        let mut s = self.lock_state();
        if s.draining {
            return Err(SubmitError::ShuttingDown);
        }
        if s.items.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        s.items.push_back(item);
        s.peak = s.peak.max(s.items.len());
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Block until an item is available. `None` means the queue is
    /// draining and empty — the worker should exit.
    pub fn next(&self) -> Option<T> {
        let mut s = self.lock_state();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.draining {
                return None;
            }
            s = self
                .available
                .wait(s)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Stop accepting work; queued items still run, then workers drain
    /// out through `next() == None`.
    pub fn drain(&self) {
        self.lock_state().draining = true;
        self.available.notify_all();
    }

    pub fn len(&self) -> usize {
        self.lock_state().items.len()
    }

    /// Deepest the queue has ever been.
    pub fn peak(&self) -> usize {
        self.lock_state().peak
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_when_draining() {
        let q = JobQueue::new(2);
        assert_eq!(q.submit(1), Ok(()));
        assert_eq!(q.submit(2), Ok(()));
        assert_eq!(q.submit(3), Err(SubmitError::Full));
        assert_eq!(q.next(), Some(1));
        assert_eq!(q.submit(3), Ok(()));
        q.drain();
        assert_eq!(q.submit(4), Err(SubmitError::ShuttingDown));
        // Queued work still drains in order, then workers are released.
        assert_eq!(q.next(), Some(2));
        assert_eq!(q.next(), Some(3));
        assert_eq!(q.next(), None);
        assert_eq!(q.peak(), 2, "high-water mark survives the drain");
    }

    #[test]
    fn blocking_consumers_wake_on_submit_and_drain() {
        let q = Arc::new(JobQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.next() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..10 {
            while q.submit(i) == Err(SubmitError::Full) {
                std::thread::yield_now();
            }
        }
        // Let the consumers empty the queue before draining.
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.drain();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }
}
