//! `flowc` — command-line client for `flowd`.
//!
//! ```text
//! flowc [--tcp HOST:PORT | --unix PATH] compile design.vhd [--blif]
//!       [--seed N] [--effort F] [--width W] [--cycles N]
//!       [--deadline DUR] [--retries N] [--trace]
//!       [-o design.bit] [--report report.json]
//! flowc [...] verify design.vhd [--blif] [--json] [--quiet]
//! flowc [...] metrics [--text] | stats | ping | shutdown
//! ```
//!
//! When the daemon is saturated (queue full or connection cap hit) it
//! answers with a `retry_after_ms` hint; `flowc` retries on a fresh
//! connection with jittered exponential backoff, never sooner than the
//! hint (`--retries 1` disables this).
//!
//! `--trace` asks the daemon to record a per-stage span tree
//! ([`fpga_flow::TraceLog`]) for the job and renders it as a waterfall
//! on stderr, with cache hits attributed to their tier. `metrics`
//! fetches the daemon-wide registry — per-stage latency histograms and
//! cache memory/disk hit counters — as JSON, or as a Prometheus-style
//! text exposition with `--text`.
//!
//! Exit codes distinguish *where* a failure happened (see `--help`):
//! scripts branch on them — retry a deploy on 3, file a bug on 4, raise
//! the deadline on 5.

use std::io::{self, Write};

use fpga_flow::cli;
use fpga_flow::trace::spans_from_value;
use fpga_server::{
    compile_with_retry, CompileError, CompileRequest, FlowClient, RetryPolicy, SourceFormat,
};
use serde_json::Value;

/// Exit codes, the contract scripts rely on.
const EXIT_USAGE: i32 = 2;
/// Could not reach or talk to the daemon (connect/read/protocol).
const EXIT_TRANSPORT: i32 = 3;
/// The daemon answered and reported the compile failed or was refused.
const EXIT_COMPILE: i32 = 4;
/// The job's deadline elapsed before the flow finished.
const EXIT_DEADLINE: i32 = 5;
/// Design-rule or equivalence findings at deny severity (same code
/// `fpga-lint` uses; the verify gate's EQ denials land here too).
const EXIT_LINT: i32 = 6;

fn help() -> String {
    format!(
        "\
flowc — command-line client for flowd

usage:
  flowc [--tcp HOST:PORT | --unix PATH] compile <design.vhd|design.blif>
        [--blif] [--seed N] [--effort F] [--width W] [--cycles N]
        [--threads N] [--lint off|warn|deny] [--verify off|warn|deny]
        [--deadline DUR] [--retries N] [--trace] [-o design.bit]
        [--report report.json]
  flowc [--tcp HOST:PORT | --unix PATH] lint <design.vhd|design.blif>
        [--blif] [--json] [--quiet] [--deadline DUR] [--threads N]
  flowc [--tcp HOST:PORT | --unix PATH] verify <design.vhd|design.blif>
        [--blif] [--json] [--quiet] [--deadline DUR] [--threads N]
  flowc [--tcp HOST:PORT | --unix PATH] metrics [--text]
  flowc [--tcp HOST:PORT | --unix PATH] status | stats | ping | shutdown
  flowc --help | --version

durations (DUR) take 250 / 250ms / 30s / 5m / 1h — the same spellings
flowd accepts for its --max-deadline / --idle-timeout / --retry-after.

  --trace   record a per-stage span tree for this job and print it as a
            waterfall (stderr), cache hits attributed to their tier
  --lint    design-rule gates during compile: warn reports findings,
            deny fails the job on deny-severity findings (default: off)
  lint      run the deep design-rule check on the daemon: every rule
            below, through as much of the flow as the design survives
  --verify  cross-stage equivalence gates during compile: every stage
            artifact (mapped netlist, packed, placed, routed, decoded
            bitstream) is checked functionally equivalent to the
            synthesized netlist; warn reports EQ findings, deny fails
            the job with a replayable counterexample (default: off)
  verify    run the deep equivalence check on the daemon: the EQ rules
            below at every flow point the design survives, without
            gating — findings ride back in the report
  metrics   fetch flowd's per-stage latency histograms, cache
            memory/disk hit counters, and per-rule lint counters as
            JSON (--text: Prometheus-style)
  status    fetch the server's health summary; against a flow-gateway
            this is the per-backend health/breaker/failover table and
            per-tenant admission counters
  --tenant  tag compile/lint jobs with a tenant id for the gateway's
            per-tenant fair-share quotas (proto v4; flowd ignores it)
  --threads ask the daemon to place and route this job with N worker
            threads; results are bit-identical at any thread count, so
            cached artifacts and QoR never depend on it

{}
exit codes:
  0  success
  1  local error (unreadable input, unwritable output, ...)
  2  usage error
  3  transport failure: could not connect to flowd, or the connection
     broke mid-stream (retryable — the daemon may just be restarting)
  4  compile failed or was refused: the daemon answered and reported a
     stage error, panic, lost worker, or rejection
  5  deadline exceeded: the job's time budget elapsed mid-flow
  6  design-rule or equivalence check found deny-severity problems
     (lint/verify subcommands, or compile with --lint/--verify deny)",
        fpga_lint::catalogue_text()
    )
}

fn fail(code: i32, msg: impl std::fmt::Display) -> ! {
    eprintln!("flowc: {msg}");
    std::process::exit(code);
}

/// Pretty-print a wire value; a value that somehow refuses to pretty-print
/// (no such `serde_json::Value` exists today) falls back to its compact
/// form rather than aborting the client.
fn render_pretty(v: &Value) -> String {
    serde_json::to_string_pretty(v).unwrap_or_else(|_| v.to_string())
}

/// Parse `--threads N` (shared by compile and lint submissions).
fn parse_threads(args: &cli::Args) -> Option<u64> {
    args.options.get("threads").map(|raw| match raw.parse() {
        Ok(n) if n >= 1 => n,
        _ => cli::die("flowc", format!("bad --threads '{raw}'")),
    })
}

fn try_connect(args: &cli::Args) -> io::Result<FlowClient> {
    if let Some(path) = args.options.get("unix") {
        return FlowClient::connect_unix(path);
    }
    let addr = args
        .options
        .get("tcp")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7171".to_string());
    FlowClient::connect_tcp(addr.as_str())
}

fn connect(args: &cli::Args) -> FlowClient {
    match try_connect(args) {
        Ok(c) => c,
        Err(e) => fail(EXIT_TRANSPORT, format!("cannot connect to flowd: {e}")),
    }
}

fn main() {
    let args = cli::parse_args(&[
        "tcp", "unix", "seed", "effort", "width", "cycles", "lint", "verify", "deadline",
        "retries", "o", "report", "tenant", "threads",
    ]);
    cli::handle_version("flowc", &args);
    if args.flags.iter().any(|f| f == "help") {
        println!("{}", help());
        return;
    }

    let Some(cmd) = args.positionals.first().map(String::as_str) else {
        eprintln!(
            "usage: flowc [--tcp HOST:PORT | --unix PATH] <compile|lint|verify|stats|ping|shutdown> ..."
        );
        eprintln!("       (see flowc --help for options, rule codes, and exit codes)");
        std::process::exit(EXIT_USAGE);
    };
    match cmd {
        "ping" => match connect(&args).ping() {
            Ok(v) => println!("{v}"),
            Err(e) => fail(EXIT_TRANSPORT, e),
        },
        "status" => match connect(&args).status() {
            Ok(v) => println!("{}", render_pretty(&v)),
            Err(e) => fail(EXIT_TRANSPORT, e),
        },
        "stats" => match connect(&args).stats() {
            Ok(v) => println!("{}", render_pretty(&v)),
            Err(e) => fail(EXIT_TRANSPORT, e),
        },
        "metrics" => {
            let text = args.flags.iter().any(|f| f == "text");
            match connect(&args).metrics(text) {
                // In text mode the exposition rides in a "text" field;
                // print it raw so the output pipes straight to a scraper.
                Ok(v) if text => match v.get("text").and_then(Value::as_str) {
                    Some(body) => print!("{body}"),
                    None => fail(EXIT_TRANSPORT, "metrics reply missing text body"),
                },
                Ok(v) => println!("{}", render_pretty(&v)),
                Err(e) => fail(EXIT_TRANSPORT, e),
            }
        }
        "shutdown" => match connect(&args).shutdown_server() {
            Ok(_) => println!("flowd acknowledged shutdown"),
            Err(e) => fail(EXIT_TRANSPORT, e),
        },
        "compile" => compile(&args),
        "lint" => lint(&args),
        "verify" => verify(&args),
        other => cli::die("flowc", format!("unknown command '{other}'")),
    }
}

fn compile(args: &cli::Args) {
    let Some(path) = args.positionals.get(1) else {
        eprintln!("usage: flowc compile <design.vhd|design.blif> [--blif] [--seed N] ...");
        std::process::exit(EXIT_USAGE);
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => cli::die("flowc", format!("cannot read '{path}': {e}")),
    };
    let format = if args.flags.iter().any(|f| f == "blif") || path.ends_with(".blif") {
        SourceFormat::Blif
    } else {
        SourceFormat::Vhdl
    };

    let mut options = serde_json::Map::new();
    let mut numeric = |flag: &str, wire: &str| {
        if let Some(raw) = args.options.get(flag) {
            match raw.parse::<f64>() {
                Ok(n) if n.fract() == 0.0 && flag != "effort" => {
                    options.insert(wire.to_string(), serde_json::json!(n as u64));
                }
                Ok(n) => {
                    options.insert(wire.to_string(), serde_json::json!(n));
                }
                Err(_) => cli::die("flowc", format!("bad --{flag} '{raw}'")),
            }
        }
    };
    numeric("seed", "place_seed");
    numeric("effort", "place_effort");
    numeric("width", "channel_width");
    numeric("cycles", "verify_cycles");
    if let Some(mode) = args.options.get("lint") {
        options.insert("lint".to_string(), serde_json::json!(mode));
    }
    if let Some(mode) = args.options.get("verify") {
        options.insert("verify".to_string(), serde_json::json!(mode));
    }
    let options = if options.is_empty() {
        Value::Null
    } else {
        Value::Object(options)
    };

    let deadline_ms = args.options.get("deadline").map(|raw| {
        cli::parse_duration_ms(raw)
            .unwrap_or_else(|e| cli::die("flowc", format!("bad --deadline: {e}")))
    });
    let mut policy = RetryPolicy::default();
    if let Some(raw) = args.options.get("retries") {
        match raw.parse() {
            Ok(n) if n > 0 => policy.max_attempts = n,
            _ => cli::die("flowc", format!("bad --retries '{raw}'")),
        }
    }

    let mut req = match CompileRequest::new(format, source).with_options(options) {
        Ok(r) => r,
        Err(e) => cli::die("flowc", e),
    };
    req.deadline_ms = deadline_ms;
    req.trace = args.flags.iter().any(|f| f == "trace");
    req.tenant = args.options.get("tenant").cloned();
    req.threads = parse_threads(args);

    let outcome = match compile_with_retry(
        || try_connect(args),
        &req,
        &policy,
        |attempt, err, backoff_ms| {
            eprintln!("flowc: attempt {attempt} failed ({err}); retrying in {backoff_ms} ms");
        },
    ) {
        Ok(o) => o,
        // The typed error decides the exit code; the message is the same
        // either way.
        Err(e @ CompileError::Io(_)) => fail(EXIT_TRANSPORT, e),
        Err(e @ CompileError::TimedOut { .. }) => fail(EXIT_DEADLINE, e),
        Err(CompileError::Failed {
            stage,
            message,
            kind,
            diagnostics,
        }) => {
            // A design-rule denial prints its structured findings and
            // exits with the lint code so scripts can tell "your design
            // breaks the rules" from "the flow broke".
            for d in &diagnostics {
                eprintln!("{d}");
            }
            let code = if stage == "lint" || stage == "verify" {
                EXIT_LINT
            } else {
                EXIT_COMPILE
            };
            let _ = kind;
            fail(code, format!("[{stage}] {message}"))
        }
        Err(e @ CompileError::Rejected { .. }) => fail(EXIT_COMPILE, e),
    };
    // A newer daemon may stream event kinds this client does not know;
    // they are skipped, but say so (CI treats these warnings as failures).
    for name in &outcome.unknown_events {
        eprintln!("flowc: warning: unknown event '{name}' (daemon newer than this client?)");
    }
    if outcome.unknown_events_dropped > 0 {
        eprintln!(
            "flowc: warning: {} more unknown event kinds not recorded",
            outcome.unknown_events_dropped
        );
    }
    // Warn/info findings from `--lint warn|deny` runs.
    for d in &outcome.lint {
        eprintln!("{d}");
    }
    for ev in &outcome.stage_events {
        let stage = ev.get("stage").and_then(Value::as_str).unwrap_or("?");
        let ms = ev.get("elapsed_ms").and_then(Value::as_f64).unwrap_or(0.0);
        let cached = ev
            .get("metrics")
            .and_then(|m| m.get("cache"))
            .and_then(Value::as_str)
            .map(|c| format!(" [cache {c}]"))
            .unwrap_or_default();
        eprintln!("job {} | {stage:<28} {ms:>9.2} ms{cached}", outcome.job);
    }
    if req.trace {
        match outcome.trace.as_ref().map(spans_from_value) {
            Some(Ok(spans)) => eprint!(
                "{}",
                fpga_flow::render_waterfall(&format!("job {}", outcome.job), &spans)
            ),
            Some(Err(e)) => eprintln!("flowc: warning: unreadable trace in reply: {e}"),
            None => eprintln!("flowc: warning: daemon sent no trace (older flowd?)"),
        }
    }
    if let Some(report_path) = args.options.get("report") {
        let text = render_pretty(&outcome.report);
        if let Err(e) = std::fs::write(report_path, text) {
            cli::die("flowc", format!("cannot write '{report_path}': {e}"));
        }
        eprintln!("wrote {report_path}");
    }
    match args.options.get("o") {
        Some(out) => {
            if let Err(e) = std::fs::write(out, &outcome.bitstream) {
                cli::die("flowc", format!("cannot write '{out}': {e}"));
            }
            eprintln!("wrote {out} ({} bytes)", outcome.bitstream.len());
        }
        None => {
            // No output path: the bitstream goes to stdout (progress and
            // summaries all go to stderr, so redirection stays clean).
            let mut stdout = std::io::stdout();
            let _ = stdout.write_all(&outcome.bitstream);
            let _ = stdout.flush();
        }
    }
    eprintln!(
        "job {} done ({} bytes of bitstream)",
        outcome.job,
        outcome.bitstream.len()
    );
}

/// `flowc lint <design>` — run the deep design-rule check on the daemon
/// and print the findings. Deny-severity findings exit with
/// [`EXIT_LINT`]; flow errors (a design the checker cannot even parse)
/// exit like a failed compile.
fn lint(args: &cli::Args) {
    let Some(path) = args.positionals.get(1) else {
        eprintln!("usage: flowc lint <design.vhd|design.blif> [--blif] [--json] [--quiet]");
        eprintln!("       (see flowc --help for the rule catalogue)");
        std::process::exit(EXIT_USAGE);
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => cli::die("flowc", format!("cannot read '{path}': {e}")),
    };
    let format = if args.flags.iter().any(|f| f == "blif") || path.ends_with(".blif") {
        SourceFormat::Blif
    } else {
        SourceFormat::Vhdl
    };
    let mut req = CompileRequest::new(format, source);
    req.deadline_ms = args.options.get("deadline").map(|raw| {
        cli::parse_duration_ms(raw)
            .unwrap_or_else(|e| cli::die("flowc", format!("bad --deadline: {e}")))
    });
    req.tenant = args.options.get("tenant").cloned();
    req.threads = parse_threads(args);

    let outcome = match connect(args).lint_request(&req) {
        Ok(o) => o,
        Err(e @ CompileError::Io(_)) => fail(EXIT_TRANSPORT, e),
        Err(e @ CompileError::TimedOut { .. }) => fail(EXIT_DEADLINE, e),
        Err(e @ (CompileError::Failed { .. } | CompileError::Rejected { .. })) => {
            fail(EXIT_COMPILE, e)
        }
    };
    for name in &outcome.unknown_events {
        eprintln!("flowc: warning: unknown event '{name}' (daemon newer than this client?)");
    }
    if outcome.unknown_events_dropped > 0 {
        eprintln!(
            "flowc: warning: {} more unknown event kinds not recorded",
            outcome.unknown_events_dropped
        );
    }
    let quiet = args.flags.iter().any(|f| f == "quiet");
    if args.flags.iter().any(|f| f == "json") {
        let body = fpga_lint::diagnostics_to_value(&outcome.diagnostics);
        println!("{}", render_pretty(&body));
    } else if !quiet {
        for d in &outcome.diagnostics {
            println!("{d}");
        }
    }
    eprintln!(
        "job {}: {}: checked through '{}': {}",
        outcome.job,
        outcome.design,
        outcome.reached,
        fpga_lint::summarize(&outcome.diagnostics)
    );
    if fpga_lint::worst(&outcome.diagnostics) == Some(fpga_lint::Severity::Deny) {
        std::process::exit(EXIT_LINT);
    }
}

/// `flowc verify <design>` — run the deep cross-stage equivalence check
/// on the daemon and print the EQ findings. Deny-severity findings (a
/// stage artifact that is provably NOT the synthesized netlist, with a
/// replayable counterexample in the notes) exit with [`EXIT_LINT`]; flow
/// errors exit like a failed compile.
fn verify(args: &cli::Args) {
    let Some(path) = args.positionals.get(1) else {
        eprintln!("usage: flowc verify <design.vhd|design.blif> [--blif] [--json] [--quiet]");
        eprintln!("       (see flowc --help for the EQ rule codes)");
        std::process::exit(EXIT_USAGE);
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => cli::die("flowc", format!("cannot read '{path}': {e}")),
    };
    let format = if args.flags.iter().any(|f| f == "blif") || path.ends_with(".blif") {
        SourceFormat::Blif
    } else {
        SourceFormat::Vhdl
    };
    let mut req = CompileRequest::new(format, source);
    req.deadline_ms = args.options.get("deadline").map(|raw| {
        cli::parse_duration_ms(raw)
            .unwrap_or_else(|e| cli::die("flowc", format!("bad --deadline: {e}")))
    });
    req.tenant = args.options.get("tenant").cloned();
    req.threads = parse_threads(args);

    let outcome = match connect(args).verify_request(&req) {
        Ok(o) => o,
        Err(e @ CompileError::Io(_)) => fail(EXIT_TRANSPORT, e),
        Err(e @ CompileError::TimedOut { .. }) => fail(EXIT_DEADLINE, e),
        Err(e @ (CompileError::Failed { .. } | CompileError::Rejected { .. })) => {
            fail(EXIT_COMPILE, e)
        }
    };
    for name in &outcome.unknown_events {
        eprintln!("flowc: warning: unknown event '{name}' (daemon newer than this client?)");
    }
    if outcome.unknown_events_dropped > 0 {
        eprintln!(
            "flowc: warning: {} more unknown event kinds not recorded",
            outcome.unknown_events_dropped
        );
    }
    let quiet = args.flags.iter().any(|f| f == "quiet");
    if args.flags.iter().any(|f| f == "json") {
        let body = fpga_lint::diagnostics_to_value(&outcome.diagnostics);
        println!("{}", render_pretty(&body));
    } else if !quiet {
        for d in &outcome.diagnostics {
            println!("{d}");
        }
    }
    eprintln!(
        "job {}: {}: verified through '{}': {}",
        outcome.job,
        outcome.design,
        outcome.reached,
        fpga_lint::summarize(&outcome.diagnostics)
    );
    if fpga_lint::worst(&outcome.diagnostics) == Some(fpga_lint::Severity::Deny) {
        std::process::exit(EXIT_LINT);
    }
}
