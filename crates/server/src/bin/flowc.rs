//! `flowc` — command-line client for `flowd`.
//!
//! ```text
//! flowc [--tcp HOST:PORT | --unix PATH] compile design.vhd [--blif]
//!       [--seed N] [--effort F] [--width W] [--cycles N]
//!       [-o design.bit] [--report report.json]
//! flowc [...] stats | ping | shutdown
//! ```

use std::io::Write;

use fpga_flow::cli;
use fpga_server::FlowClient;
use serde_json::Value;

fn connect(args: &cli::Args) -> FlowClient {
    if let Some(path) = args.options.get("unix") {
        match FlowClient::connect_unix(path) {
            Ok(c) => return c,
            Err(e) => cli::die("flowc", format!("cannot connect to unix:{path}: {e}")),
        }
    }
    let addr = args
        .options
        .get("tcp")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7171".to_string());
    match FlowClient::connect_tcp(addr.as_str()) {
        Ok(c) => c,
        Err(e) => cli::die("flowc", format!("cannot connect to tcp://{addr}: {e}")),
    }
}

fn main() {
    let args = cli::parse_args(&[
        "tcp", "unix", "seed", "effort", "width", "cycles", "o", "report",
    ]);
    cli::handle_version("flowc", &args);

    let Some(cmd) = args.positionals.first().map(String::as_str) else {
        eprintln!("usage: flowc [--tcp HOST:PORT | --unix PATH] <compile|stats|ping|shutdown> ...");
        std::process::exit(2);
    };
    let mut client = connect(&args);
    match cmd {
        "ping" => match client.ping() {
            Ok(v) => println!("{v}"),
            Err(e) => cli::die("flowc", e),
        },
        "stats" => match client.stats() {
            Ok(v) => println!(
                "{}",
                serde_json::to_string_pretty(&v).expect("stats render")
            ),
            Err(e) => cli::die("flowc", e),
        },
        "shutdown" => match client.shutdown_server() {
            Ok(_) => println!("flowd acknowledged shutdown"),
            Err(e) => cli::die("flowc", e),
        },
        "compile" => compile(&args, &mut client),
        other => cli::die("flowc", format!("unknown command '{other}'")),
    }
}

fn compile(args: &cli::Args, client: &mut FlowClient) {
    let Some(path) = args.positionals.get(1) else {
        eprintln!("usage: flowc compile <design.vhd|design.blif> [--blif] [--seed N] ...");
        std::process::exit(2);
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => cli::die("flowc", format!("cannot read '{path}': {e}")),
    };
    let format = if args.flags.iter().any(|f| f == "blif") || path.ends_with(".blif") {
        "blif"
    } else {
        "vhdl"
    };

    let mut options = serde_json::Map::new();
    let mut numeric = |flag: &str, wire: &str| {
        if let Some(raw) = args.options.get(flag) {
            match raw.parse::<f64>() {
                Ok(n) if n.fract() == 0.0 && flag != "effort" => {
                    options.insert(wire.to_string(), serde_json::json!(n as u64));
                }
                Ok(n) => {
                    options.insert(wire.to_string(), serde_json::json!(n));
                }
                Err(_) => cli::die("flowc", format!("bad --{flag} '{raw}'")),
            }
        }
    };
    numeric("seed", "place_seed");
    numeric("effort", "place_effort");
    numeric("width", "channel_width");
    numeric("cycles", "verify_cycles");
    let options = if options.is_empty() {
        Value::Null
    } else {
        Value::Object(options)
    };

    let outcome = match client.compile(format, &source, options) {
        Ok(o) => o,
        Err(e) => cli::die("flowc", e),
    };
    for ev in &outcome.stage_events {
        let stage = ev.get("stage").and_then(Value::as_str).unwrap_or("?");
        let ms = ev.get("elapsed_ms").and_then(Value::as_f64).unwrap_or(0.0);
        let cached = ev
            .get("metrics")
            .and_then(|m| m.get("cache"))
            .and_then(Value::as_str)
            .map(|c| format!(" [cache {c}]"))
            .unwrap_or_default();
        eprintln!("job {} | {stage:<28} {ms:>9.2} ms{cached}", outcome.job);
    }
    if let Some(report_path) = args.options.get("report") {
        let text = serde_json::to_string_pretty(&outcome.report).expect("report renders");
        if let Err(e) = std::fs::write(report_path, text) {
            cli::die("flowc", format!("cannot write '{report_path}': {e}"));
        }
        eprintln!("wrote {report_path}");
    }
    match args.options.get("o") {
        Some(out) => {
            if let Err(e) = std::fs::write(out, &outcome.bitstream) {
                cli::die("flowc", format!("cannot write '{out}': {e}"));
            }
            eprintln!("wrote {out} ({} bytes)", outcome.bitstream.len());
        }
        None => {
            // No output path: the bitstream goes to stdout (progress and
            // summaries all go to stderr, so redirection stays clean).
            let mut stdout = std::io::stdout();
            let _ = stdout.write_all(&outcome.bitstream);
            let _ = stdout.flush();
        }
    }
    eprintln!(
        "job {} done ({} bytes of bitstream)",
        outcome.job,
        outcome.bitstream.len()
    );
}
