//! `flowd` — the compile-service daemon (the paper's web-server front
//! end, Fig. 12). Serves newline-delimited JSON over TCP and/or a Unix
//! socket; see `fpga-server`'s crate docs for the protocol.

use fpga_flow::cli;
use fpga_server::{Server, ServerConfig};

fn main() {
    let args = cli::parse_args(&["tcp", "unix", "workers", "queue"]);
    cli::handle_version("flowd", &args);

    let mut config = ServerConfig::default();
    if let Some(addr) = args.options.get("tcp") {
        config.tcp_addr = Some(addr.clone());
    }
    if let Some(path) = args.options.get("unix") {
        config.unix_path = Some(path.into());
        // An explicit --unix with no --tcp means unix-only.
        if !args.options.contains_key("tcp") {
            config.tcp_addr = None;
        }
    }
    if let Some(w) = args.options.get("workers") {
        match w.parse() {
            Ok(n) if n > 0 => config.workers = n,
            _ => cli::die("flowd", format!("bad --workers '{w}'")),
        }
    }
    if let Some(q) = args.options.get("queue") {
        match q.parse() {
            Ok(n) if n > 0 => config.queue_capacity = n,
            _ => cli::die("flowd", format!("bad --queue '{q}'")),
        }
    }

    let server = match Server::start(config.clone()) {
        Ok(s) => s,
        Err(e) => cli::die("flowd", e),
    };
    eprintln!("flowd {} starting", fpga_flow::FLOW_VERSION);
    if let Some(addr) = server.tcp_addr() {
        eprintln!("flowd listening on tcp://{addr}");
    }
    if let Some(path) = server.unix_path() {
        eprintln!("flowd listening on unix:{}", path.display());
    }
    eprintln!(
        "flowd {} workers, queue depth {} (stop with: flowc shutdown)",
        config.workers, config.queue_capacity
    );
    server.wait();
    eprintln!("flowd drained and stopped");
}
