//! `flowd` — the compile-service daemon (the paper's web-server front
//! end, Fig. 12). Serves newline-delimited JSON over TCP and/or a Unix
//! socket; see `fpga-server`'s crate docs for the protocol.
//!
//! Robustness knobs (all optional; see README "Operating flowd"):
//! `--max-deadline DUR` caps/defaults per-job deadlines, `--idle-timeout
//! DUR` drops silent connections, `--max-line SIZE` bounds request
//! lines, `--max-conns N` caps concurrent connections, and
//! `--retry-after DUR` tunes the backoff hint sent with rejections.
//! Durations and sizes use the same spellings `flowc` accepts (`30s`,
//! `5m`, `64k`, `8m`; see `fpga_flow::cli`).
//!
//! Durable cache knobs: `--cache-dir DIR` persists completed stage
//! artifacts on disk so they survive restarts (and crashes),
//! `--cache-budget-mb N` bounds that store with LRU eviction, and
//! `--cache-entries N` caps the in-memory cache (evictees stay
//! reachable on disk).
//!
//! Observability: the `metrics` protocol verb (see `flowc metrics`)
//! reports per-stage latency histograms and cache tiers while running;
//! `--metrics-dump` prints the final Prometheus-style exposition to
//! stdout after a graceful shutdown.
//!
//! Test-only: `--fault STAGE:K:ACTION[:ARG][,...]` injects a
//! deterministic fault on a stage's K-th execution — `panic`, `kill`
//! (dead worker), `fail:MSG`, or `sleep:MS`. Used by the crash-recovery
//! harness (`scripts/crash.sh`) to stall a pipeline long enough to
//! `kill -9` it; never set in production.

use std::sync::Arc;

use fpga_flow::cli;
use fpga_flow::fault::{FaultAction, FaultPlan};
use fpga_server::{Server, ServerConfig};

const HELP: &str = "\
flowd — the flow compile-service daemon

usage:
  flowd [--tcp HOST:PORT] [--unix PATH] [--workers N] [--queue N]
        [--threads N]
        [--max-deadline DUR] [--idle-timeout DUR] [--max-line SIZE]
        [--max-conns N] [--retry-after DUR]
        [--cache-dir DIR] [--cache-budget-mb N] [--cache-entries N]
        [--artifact-gateway HOST:PORT] [--artifact-timeout DUR]
        [--metrics-dump] [--fault SPEC]
  flowd --help | --version

durations (DUR) take 250 / 250ms / 30s / 5m / 1h; sizes (SIZE) take
512 / 64k / 8m / 2g — the same spellings flowc accepts. A DUR of 0
disables that guard.

  --threads N      default place-and-route threads per job (requests may
                   override per job; results are bit-identical at any
                   thread count, so cached artifacts stay shared)
  --artifact-gateway HOST:PORT
                   fetch missing stage artifacts from farm peers through
                   this gateway before recomputing (needs --cache-dir);
                   best-effort — any remote failure degrades to local
                   recompute within the job's deadline
  --artifact-timeout DUR
                   per-fetch timeout for the artifact tier (default 1s)
  --metrics-dump   after a graceful shutdown, print the final metrics
                   snapshot (Prometheus text exposition) to stdout
  --fault SPEC     test-only deterministic fault injection,
                   STAGE:K:ACTION[:ARG][,...] with panic | kill |
                   fail:MSG | sleep:MS

observe a running daemon with: flowc metrics [--text] | flowc stats";

fn parse_u64(args: &cli::Args, flag: &str) -> Option<u64> {
    args.options.get(flag).map(|raw| match raw.parse() {
        Ok(n) => n,
        Err(_) => cli::die("flowd", format!("bad --{flag} '{raw}'")),
    })
}

/// Parse a `--flag DUR` duration option (shared spellings with flowc).
fn parse_duration(args: &cli::Args, flag: &str) -> Option<u64> {
    args.options.get(flag).map(|raw| {
        cli::parse_duration_ms(raw)
            .unwrap_or_else(|e| cli::die("flowd", format!("bad --{flag}: {e}")))
    })
}

/// Parse a `--flag SIZE` size option (shared spellings with flowc).
fn parse_size(args: &cli::Args, flag: &str) -> Option<u64> {
    args.options.get(flag).map(|raw| {
        cli::parse_size_bytes(raw)
            .unwrap_or_else(|e| cli::die("flowd", format!("bad --{flag}: {e}")))
    })
}

/// Parse a comma-separated fault spec, e.g.
/// `route:1:sleep:5000,pack:2:panic`.
fn parse_fault_plan(spec: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::new();
    for rule in spec.split(',').filter(|s| !s.is_empty()) {
        let mut parts = rule.splitn(3, ':');
        let stage = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("missing stage in '{rule}'"))?;
        let k: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad execution count in '{rule}'"))?;
        let action = match parts.next() {
            Some("panic") => FaultAction::Panic,
            Some("kill") => FaultAction::KillWorker,
            Some(rest) => match rest.split_once(':') {
                Some(("fail", msg)) => FaultAction::Fail(msg.to_string()),
                Some(("sleep", ms)) => FaultAction::SleepMs(
                    ms.parse()
                        .map_err(|_| format!("bad sleep duration in '{rule}'"))?,
                ),
                _ => return Err(format!("unknown action in '{rule}'")),
            },
            None => return Err(format!("missing action in '{rule}'")),
        };
        plan = plan.on(stage, k, action);
    }
    Ok(plan)
}

fn main() {
    let args = cli::parse_args(&[
        "tcp",
        "unix",
        "workers",
        "queue",
        "threads",
        "max-deadline",
        "idle-timeout",
        "max-line",
        "max-conns",
        "retry-after",
        "cache-dir",
        "cache-budget-mb",
        "cache-entries",
        "artifact-gateway",
        "artifact-timeout",
        "fault",
    ]);
    cli::handle_version("flowd", &args);
    if args.flags.iter().any(|f| f == "help" || f == "h") {
        println!("{HELP}");
        return;
    }

    let mut config = ServerConfig::default();
    if let Some(addr) = args.options.get("tcp") {
        config.tcp_addr = Some(addr.clone());
    }
    if let Some(path) = args.options.get("unix") {
        config.unix_path = Some(path.into());
        // An explicit --unix with no --tcp means unix-only.
        if !args.options.contains_key("tcp") {
            config.tcp_addr = None;
        }
    }
    if let Some(w) = args.options.get("workers") {
        match w.parse() {
            Ok(n) if n > 0 => config.workers = n,
            _ => cli::die("flowd", format!("bad --workers '{w}'")),
        }
    }
    if let Some(q) = args.options.get("queue") {
        match q.parse() {
            Ok(n) if n > 0 => config.queue_capacity = n,
            _ => cli::die("flowd", format!("bad --queue '{q}'")),
        }
    }
    if let Some(t) = args.options.get("threads") {
        match t.parse() {
            Ok(n) if n > 0 => config.threads = Some(n),
            _ => cli::die("flowd", format!("bad --threads '{t}'")),
        }
    }
    // 0 disables the corresponding guard.
    if let Some(ms) = parse_duration(&args, "max-deadline") {
        config.max_deadline_ms = (ms > 0).then_some(ms);
    }
    if let Some(ms) = parse_duration(&args, "idle-timeout") {
        config.idle_timeout_ms = (ms > 0).then_some(ms);
    }
    if let Some(bytes) = parse_size(&args, "max-line") {
        if bytes == 0 {
            cli::die("flowd", "bad --max-line '0'");
        }
        config.max_line_bytes = bytes as usize;
    }
    if let Some(n) = parse_u64(&args, "max-conns") {
        if n == 0 {
            cli::die("flowd", "bad --max-conns '0'");
        }
        config.max_connections = n as usize;
    }
    if let Some(ms) = parse_duration(&args, "retry-after") {
        config.retry_after_ms = ms;
    }
    if let Some(dir) = args.options.get("cache-dir") {
        config.cache_dir = Some(dir.into());
    }
    if let Some(mb) = parse_u64(&args, "cache-budget-mb") {
        if config.cache_dir.is_none() {
            cli::die("flowd", "--cache-budget-mb needs --cache-dir");
        }
        config.cache_budget_mb = Some(mb);
    }
    if let Some(n) = parse_u64(&args, "cache-entries") {
        if n == 0 {
            cli::die("flowd", "bad --cache-entries '0'");
        }
        config.cache_entries = Some(n as usize);
    }
    if let Some(gw) = args.options.get("artifact-gateway") {
        if config.cache_dir.is_none() {
            cli::die("flowd", "--artifact-gateway needs --cache-dir");
        }
        config.artifact_gateway = Some(gw.clone());
    }
    if let Some(ms) = parse_duration(&args, "artifact-timeout") {
        if ms == 0 {
            cli::die("flowd", "bad --artifact-timeout '0'");
        }
        if config.artifact_gateway.is_none() {
            cli::die("flowd", "--artifact-timeout needs --artifact-gateway");
        }
        config.artifact_timeout_ms = ms;
    }
    if let Some(spec) = args.options.get("fault") {
        match parse_fault_plan(spec) {
            Ok(plan) => config.fault = Some(Arc::new(plan)),
            Err(e) => cli::die("flowd", format!("bad --fault: {e}")),
        }
    }

    let mut server = match Server::start(config.clone()) {
        Ok(s) => s,
        Err(e) => cli::die("flowd", e),
    };
    eprintln!("flowd {} starting", fpga_flow::FLOW_VERSION);
    if let Some(addr) = server.tcp_addr() {
        eprintln!("flowd listening on tcp://{addr}");
    }
    if let Some(path) = server.unix_path() {
        eprintln!("flowd listening on unix:{}", path.display());
    }
    eprintln!(
        "flowd {} workers, queue depth {} (stop with: flowc shutdown)",
        config.workers, config.queue_capacity
    );
    eprintln!(
        "flowd place-and-route threads: {}",
        config
            .threads
            .map_or("engine default".to_string(), |n| n.to_string())
    );
    eprintln!(
        "flowd guards: deadline cap {}, idle timeout {}, max line {} B, max conns {}",
        config
            .max_deadline_ms
            .map_or("off".to_string(), |ms| format!("{ms} ms")),
        config
            .idle_timeout_ms
            .map_or("off".to_string(), |ms| format!("{ms} ms")),
        config.max_line_bytes,
        config.max_connections
    );
    match &config.cache_dir {
        Some(dir) => eprintln!(
            "flowd durable cache: {} (budget {}, memory cap {})",
            dir.display(),
            config
                .cache_budget_mb
                .map_or("unbounded".to_string(), |mb| format!("{mb} MiB")),
            config
                .cache_entries
                .map_or("unbounded".to_string(), |n| format!("{n} entries")),
        ),
        None => eprintln!("flowd durable cache: off (memory only)"),
    }
    match &config.artifact_gateway {
        Some(gw) => eprintln!(
            "flowd artifact tier: fetch via {} (timeout {} ms, best-effort)",
            gw, config.artifact_timeout_ms
        ),
        None => eprintln!("flowd artifact tier: off (local cache only)"),
    }
    if config.fault.is_some() {
        eprintln!("flowd FAULT INJECTION ACTIVE (test mode)");
    }
    server.wait();
    eprintln!("flowd drained and stopped");
    if args.flags.iter().any(|f| f == "metrics-dump") {
        // Final observability snapshot for scrapers and CI smoke tests.
        print!("{}", server.metrics_text());
    }
}
