//! `flowd` — the compile-service daemon (the paper's web-server front
//! end, Fig. 12). Serves newline-delimited JSON over TCP and/or a Unix
//! socket; see `fpga-server`'s crate docs for the protocol.
//!
//! Robustness knobs (all optional; see README "Operating flowd"):
//! `--max-deadline MS` caps/defaults per-job deadlines, `--idle-timeout
//! MS` drops silent connections, `--max-line BYTES` bounds request
//! lines, `--max-conns N` caps concurrent connections, and
//! `--retry-after MS` tunes the backoff hint sent with rejections.

use fpga_flow::cli;
use fpga_server::{Server, ServerConfig};

fn parse_u64(args: &cli::Args, flag: &str) -> Option<u64> {
    args.options.get(flag).map(|raw| match raw.parse() {
        Ok(n) => n,
        Err(_) => cli::die("flowd", format!("bad --{flag} '{raw}'")),
    })
}

fn main() {
    let args = cli::parse_args(&[
        "tcp",
        "unix",
        "workers",
        "queue",
        "max-deadline",
        "idle-timeout",
        "max-line",
        "max-conns",
        "retry-after",
    ]);
    cli::handle_version("flowd", &args);

    let mut config = ServerConfig::default();
    if let Some(addr) = args.options.get("tcp") {
        config.tcp_addr = Some(addr.clone());
    }
    if let Some(path) = args.options.get("unix") {
        config.unix_path = Some(path.into());
        // An explicit --unix with no --tcp means unix-only.
        if !args.options.contains_key("tcp") {
            config.tcp_addr = None;
        }
    }
    if let Some(w) = args.options.get("workers") {
        match w.parse() {
            Ok(n) if n > 0 => config.workers = n,
            _ => cli::die("flowd", format!("bad --workers '{w}'")),
        }
    }
    if let Some(q) = args.options.get("queue") {
        match q.parse() {
            Ok(n) if n > 0 => config.queue_capacity = n,
            _ => cli::die("flowd", format!("bad --queue '{q}'")),
        }
    }
    // 0 disables the corresponding guard.
    if let Some(ms) = parse_u64(&args, "max-deadline") {
        config.max_deadline_ms = (ms > 0).then_some(ms);
    }
    if let Some(ms) = parse_u64(&args, "idle-timeout") {
        config.idle_timeout_ms = (ms > 0).then_some(ms);
    }
    if let Some(bytes) = parse_u64(&args, "max-line") {
        if bytes == 0 {
            cli::die("flowd", "bad --max-line '0'");
        }
        config.max_line_bytes = bytes as usize;
    }
    if let Some(n) = parse_u64(&args, "max-conns") {
        if n == 0 {
            cli::die("flowd", "bad --max-conns '0'");
        }
        config.max_connections = n as usize;
    }
    if let Some(ms) = parse_u64(&args, "retry-after") {
        config.retry_after_ms = ms;
    }

    let server = match Server::start(config.clone()) {
        Ok(s) => s,
        Err(e) => cli::die("flowd", e),
    };
    eprintln!("flowd {} starting", fpga_flow::FLOW_VERSION);
    if let Some(addr) = server.tcp_addr() {
        eprintln!("flowd listening on tcp://{addr}");
    }
    if let Some(path) = server.unix_path() {
        eprintln!("flowd listening on unix:{}", path.display());
    }
    eprintln!(
        "flowd {} workers, queue depth {} (stop with: flowc shutdown)",
        config.workers, config.queue_capacity
    );
    eprintln!(
        "flowd guards: deadline cap {}, idle timeout {}, max line {} B, max conns {}",
        config
            .max_deadline_ms
            .map_or("off".to_string(), |ms| format!("{ms} ms")),
        config
            .idle_timeout_ms
            .map_or("off".to_string(), |ms| format!("{ms} ms")),
        config.max_line_bytes,
        config.max_connections
    );
    server.wait();
    eprintln!("flowd drained and stopped");
}
