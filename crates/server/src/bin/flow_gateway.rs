//! `flow-gateway` — the compile-farm front door. Shards jobs across a
//! fleet of `flowd` backends by stage-cache affinity, health-checks and
//! circuit-breaks each backend, fails jobs over when a node dies
//! mid-pipeline, and fair-shares admission across tenants with
//! token-bucket quotas. Speaks the same protocol as `flowd`, so `flowc`
//! points at it unchanged. See README "Scaling out flowd".

use fpga_flow::cli;
use fpga_server::{Gateway, GatewayConfig};

const HELP: &str = "\
flow-gateway — fault-tolerant front door for a flowd compile farm

usage:
  flow-gateway --backend HOST:PORT[,HOST:PORT...] [--tcp HOST:PORT]
               [--health-interval DUR] [--probe-timeout DUR]
               [--breaker-failures N] [--breaker-reopen DUR]
               [--jitter-seed N]
               [--max-inflight N] [--admission-queue N]
               [--tenant-burst N] [--tenant-rate N]
               [--tenant-weight TENANT=W[,TENANT=W...]]
               [--retry-after DUR] [--idle-timeout DUR]
               [--max-line SIZE] [--max-conns N]
               [--no-steal] [--corrupt-artifacts]
  flow-gateway --help | --version

routing:
  --backend LIST        flowd addresses (comma separated, required);
                        jobs shard by stage-cache affinity (rendezvous
                        hashing), so resubmissions of a design reuse the
                        backend that already holds its cached stages
  --health-interval DUR ping each backend this often (default 500ms)
  --probe-timeout DUR   connect/probe timeout (default 1s)
  --breaker-failures N  consecutive failures that trip a backend's
                        circuit breaker (default 3)
  --breaker-reopen DUR  base quiet period before a tripped breaker
                        half-opens; actual adds up to 50% jitter
                        (default 5s)
  --jitter-seed N       pin breaker jitter for deterministic chaos runs
  --no-steal            disable work stealing (by default an idle backend
                        may take a queued job from a busy affinity pick
                        so the farm's artifact tier can warm it remotely)
  --corrupt-artifacts   test-only: flip one hex digit in every artifact
                        payload served, to exercise the digest-verified
                        quarantine path; never set in production

admission (per-tenant fair share; tenant = request's `tenant` field,
defaulting to \"anon\"):
  --max-inflight N      jobs running across the farm (default 64)
  --admission-queue N   waiters beyond that before shedding (default 128)
  --tenant-burst N      token-bucket burst per tenant (default 8)
  --tenant-rate N       tokens/sec refill per tenant; 0 = no refill
                        (default 4)
  --tenant-weight T=W   fair-queue weight for tenant T (repeatable via
                        commas; default weight 1)
  --retry-after DUR     floor for the retry_after_ms shed hint
                        (default 200ms)

guards (same spellings as flowd):
  --idle-timeout DUR, --max-line SIZE, --max-conns N

observe with: flowc status | flowc metrics [--text]
durations (DUR) take 250 / 250ms / 30s / 5m; sizes take 512 / 64k / 8m";

fn parse_u64(args: &cli::Args, flag: &str) -> Option<u64> {
    args.options.get(flag).map(|raw| match raw.parse() {
        Ok(n) => n,
        Err(_) => cli::die("flow-gateway", format!("bad --{flag} '{raw}'")),
    })
}

fn parse_duration(args: &cli::Args, flag: &str) -> Option<u64> {
    args.options.get(flag).map(|raw| {
        cli::parse_duration_ms(raw)
            .unwrap_or_else(|e| cli::die("flow-gateway", format!("bad --{flag}: {e}")))
    })
}

fn main() {
    let args = cli::parse_args(&[
        "tcp",
        "backend",
        "health-interval",
        "probe-timeout",
        "breaker-failures",
        "breaker-reopen",
        "jitter-seed",
        "max-inflight",
        "admission-queue",
        "tenant-burst",
        "tenant-rate",
        "tenant-weight",
        "retry-after",
        "idle-timeout",
        "max-line",
        "max-conns",
    ]);
    cli::handle_version("flow-gateway", &args);
    if args.flags.iter().any(|f| f == "help" || f == "h") {
        println!("{HELP}");
        return;
    }

    let mut config = GatewayConfig::default();
    if let Some(addr) = args.options.get("tcp") {
        config.tcp_addr = addr.clone();
    }
    match args.options.get("backend") {
        Some(list) => {
            config.backends = list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
        }
        None => cli::die("flow-gateway", "--backend HOST:PORT[,...] is required"),
    }
    if let Some(ms) = parse_duration(&args, "health-interval") {
        if ms == 0 {
            cli::die("flow-gateway", "bad --health-interval '0'");
        }
        config.health_interval_ms = ms;
    }
    if let Some(ms) = parse_duration(&args, "probe-timeout") {
        if ms == 0 {
            cli::die("flow-gateway", "bad --probe-timeout '0'");
        }
        config.probe_timeout_ms = ms;
    }
    if let Some(n) = parse_u64(&args, "breaker-failures") {
        if n == 0 {
            cli::die("flow-gateway", "bad --breaker-failures '0'");
        }
        config.breaker_threshold = n as u32;
    }
    if let Some(ms) = parse_duration(&args, "breaker-reopen") {
        config.breaker_reopen_ms = ms;
    }
    if let Some(seed) = parse_u64(&args, "jitter-seed") {
        config.jitter_seed = seed;
    }
    if let Some(n) = parse_u64(&args, "max-inflight") {
        if n == 0 {
            cli::die("flow-gateway", "bad --max-inflight '0'");
        }
        config.governor.max_inflight = n as usize;
    }
    if let Some(n) = parse_u64(&args, "admission-queue") {
        config.governor.queue_bound = n as usize;
    }
    if let Some(n) = parse_u64(&args, "tenant-burst") {
        if n == 0 {
            cli::die("flow-gateway", "bad --tenant-burst '0'");
        }
        config.governor.tenant_burst = n;
    }
    if let Some(n) = parse_u64(&args, "tenant-rate") {
        config.governor.tenant_refill_milli_per_s = n * 1_000;
    }
    if let Some(spec) = args.options.get("tenant-weight") {
        for pair in spec.split(',').filter(|s| !s.is_empty()) {
            match pair.split_once('=') {
                Some((tenant, w)) if !tenant.is_empty() => match w.parse::<u32>() {
                    Ok(weight) if weight > 0 => {
                        config.governor.weights.push((tenant.to_string(), weight))
                    }
                    _ => cli::die(
                        "flow-gateway",
                        format!("bad weight in --tenant-weight '{pair}'"),
                    ),
                },
                _ => cli::die(
                    "flow-gateway",
                    format!("bad --tenant-weight '{pair}' (want TENANT=W)"),
                ),
            }
        }
    }
    if let Some(ms) = parse_duration(&args, "retry-after") {
        config.governor.retry_after_ms = ms;
    }
    if let Some(ms) = parse_duration(&args, "idle-timeout") {
        config.idle_timeout_ms = (ms > 0).then_some(ms);
    }
    if let Some(raw) = args.options.get("max-line") {
        let bytes = cli::parse_size_bytes(raw)
            .unwrap_or_else(|e| cli::die("flow-gateway", format!("bad --max-line: {e}")));
        if bytes == 0 {
            cli::die("flow-gateway", "bad --max-line '0'");
        }
        config.max_line_bytes = bytes as usize;
    }
    if let Some(n) = parse_u64(&args, "max-conns") {
        if n == 0 {
            cli::die("flow-gateway", "bad --max-conns '0'");
        }
        config.max_connections = n as usize;
    }
    if args.flags.iter().any(|f| f == "no-steal") {
        config.steal = false;
    }
    if args.flags.iter().any(|f| f == "corrupt-artifacts") {
        config.corrupt_artifacts = true;
    }

    let backends = config.backends.clone();
    let gov = config.governor.clone();
    let (threshold, reopen) = (config.breaker_threshold, config.breaker_reopen_ms);
    let (steal, corrupt) = (config.steal, config.corrupt_artifacts);
    let mut gateway = match Gateway::start(config) {
        Ok(g) => g,
        Err(e) => cli::die("flow-gateway", e),
    };
    eprintln!("flow-gateway {} starting", fpga_flow::FLOW_VERSION);
    eprintln!("flow-gateway listening on tcp://{}", gateway.tcp_addr());
    eprintln!(
        "flow-gateway backends: {} (breaker: {} failures, reopen {} ms)",
        backends.join(", "),
        threshold,
        reopen
    );
    eprintln!(
        "flow-gateway admission: {} in flight, queue {}, tenant burst {} @ {}/s (stop with: flowc shutdown)",
        gov.max_inflight,
        gov.queue_bound,
        gov.tenant_burst,
        gov.tenant_refill_milli_per_s / 1_000
    );
    eprintln!(
        "flow-gateway artifact tier: serving peer fetches (work stealing {})",
        if steal { "on" } else { "off" }
    );
    if corrupt {
        eprintln!("flow-gateway CORRUPTING ARTIFACT TRANSFERS (test mode)");
    }
    gateway.wait();
    eprintln!("flow-gateway stopped");
}
