//! Process-wide metrics for `flowd`: per-stage latency histograms plus
//! the counters the rest of the daemon already keeps (job outcomes,
//! queue depth, worker restarts, cache tiers), gathered into one
//! snapshot for the `metrics` protocol verb.
//!
//! Histograms use fixed millisecond bucket bounds (the classic
//! log-ish ladder 1..5000 ms plus `+Inf`), so two snapshots can be
//! subtracted and exports stay mergeable across restarts. Everything is
//! atomics — `observe` on the hot path is a couple of relaxed
//! `fetch_add`s, no locks.
//!
//! Two renderings:
//!
//! * [`MetricsSnapshot::to_json`] — the structured body of the
//!   `{"cmd":"metrics"}` response;
//! * [`MetricsSnapshot::to_prometheus_text`] — a Prometheus-style text
//!   exposition (`flowd_*` families) for `flowc metrics --text` and
//!   `flowd --metrics-dump`.

use std::sync::atomic::{AtomicU64, Ordering};

use fpga_flow::cache::STAGES;
use fpga_lint::RULES;
use serde_json::Value;

use crate::breaker::BreakerCounters;
use crate::tenancy::TenantCounters;

/// Upper bounds (milliseconds, inclusive) of the latency buckets; an
/// implicit `+Inf` bucket follows. Chosen to straddle the stand-in
/// pipeline's stage times (sub-millisecond to seconds under `--fault
/// sleep`).
pub const BUCKET_BOUNDS_MS: [u64; 12] = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000];

/// A fixed-bucket latency histogram. Cheap to observe, lock-free.
#[derive(Default)]
pub struct Histogram {
    /// One slot per bound in [`BUCKET_BOUNDS_MS`] plus the `+Inf` slot.
    buckets: [AtomicU64; BUCKET_BOUNDS_MS.len() + 1],
    count: AtomicU64,
    /// Sum in microseconds: integer atomics, converted to ms on export.
    sum_us: AtomicU64,
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation, in milliseconds.
    pub fn observe_ms(&self, ms: f64) {
        let ms = if ms.is_finite() && ms > 0.0 { ms } else { 0.0 };
        let slot = BUCKET_BOUNDS_MS
            .iter()
            .position(|&bound| ms <= bound as f64)
            .unwrap_or(BUCKET_BOUNDS_MS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us
            .fetch_add((ms * 1e3).round() as u64, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ms: self.sum_us.load(Ordering::Relaxed) as f64 / 1e3,
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, same order as [`BUCKET_BOUNDS_MS`] with the
    /// trailing `+Inf` slot. *Not* cumulative; rendering accumulates.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum_ms: f64,
}

impl HistogramSnapshot {
    /// JSON form: cumulative `le` buckets, Prometheus-style.
    pub fn to_json(&self) -> Value {
        let mut buckets = Vec::with_capacity(self.buckets.len());
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cumulative += n;
            let le = match BUCKET_BOUNDS_MS.get(i) {
                Some(bound) => Value::from(*bound),
                None => Value::from("+Inf"),
            };
            buckets.push(serde_json::json!({"le": le, "count": cumulative}));
        }
        serde_json::json!({
            "count": self.count,
            "sum_ms": self.sum_ms,
            "buckets": Value::Array(buckets),
        })
    }
}

/// The registry: one latency histogram per pipeline stage, keyed by the
/// stage's short stable id (`"synthesis"`, `"lut_map"`, ...). Job and
/// queue counters live with the daemon's `Shared` state; the service
/// folds both into a [`MetricsSnapshot`] when a client asks.
#[derive(Default)]
pub struct Metrics {
    stage_latency: [Histogram; STAGES.len()],
    /// Stage events whose id the registry did not recognize — should
    /// stay zero; nonzero means a flow/daemon version skew.
    unknown_stage_events: AtomicU64,
    /// Design-rule findings by rule code, in [`RULES`] order.
    lint_rule_hits: [AtomicU64; RULES.len()],
    /// Findings whose code the catalogue does not list — the lint
    /// analogue of `unknown_stage_events`; nonzero means version skew.
    unknown_lint_rules: AtomicU64,
    /// Equivalence findings by rule code (the `stage == "verify"` slice
    /// of [`RULES`]), counted separately from the structural lint rules
    /// so `flowd_verify_*` stays its own metric family.
    verify_rule_hits: [AtomicU64; RULES.len()],
    /// EQ-family findings whose code the catalogue does not list.
    unknown_verify_rules: AtomicU64,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed stage execution (cache hits included: a hit is
    /// a real, observable service latency, it is just a fast one).
    pub fn observe_stage(&self, stage_id: &str, elapsed_ms: f64) {
        match STAGES.iter().position(|s| s.name() == stage_id) {
            Some(i) => self.stage_latency[i].observe_ms(elapsed_ms),
            None => {
                self.unknown_stage_events.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub fn unknown_stage_events(&self) -> u64 {
        self.unknown_stage_events.load(Ordering::Relaxed)
    }

    /// Record one design-rule finding by its code (`"NL001"`, ...).
    pub fn observe_lint_rule(&self, code: &str) {
        match RULES.iter().position(|r| r.code == code) {
            Some(i) => {
                self.lint_rule_hits[i].fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.unknown_lint_rules.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Per-rule finding counts, in catalogue order.
    pub fn lint_rule_snapshots(&self) -> Vec<(&'static str, u64)> {
        RULES
            .iter()
            .zip(self.lint_rule_hits.iter())
            .map(|(r, n)| (r.code, n.load(Ordering::Relaxed)))
            .collect()
    }

    pub fn unknown_lint_rules(&self) -> u64 {
        self.unknown_lint_rules.load(Ordering::Relaxed)
    }

    /// Record one equivalence finding by its code (`"EQ001"`, ...).
    pub fn observe_verify_rule(&self, code: &str) {
        match RULES
            .iter()
            .position(|r| r.code == code && r.stage == "verify")
        {
            Some(i) => {
                self.verify_rule_hits[i].fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.unknown_verify_rules.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Per-EQ-rule finding counts, in catalogue order.
    pub fn verify_rule_snapshots(&self) -> Vec<(&'static str, u64)> {
        RULES
            .iter()
            .zip(self.verify_rule_hits.iter())
            .filter(|(r, _)| r.stage == "verify")
            .map(|(r, n)| (r.code, n.load(Ordering::Relaxed)))
            .collect()
    }

    pub fn unknown_verify_rules(&self) -> u64 {
        self.unknown_verify_rules.load(Ordering::Relaxed)
    }

    /// Snapshot every stage histogram, in flow order.
    pub fn stage_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        STAGES
            .iter()
            .zip(self.stage_latency.iter())
            .map(|(s, h)| (s.name(), h.snapshot()))
            .collect()
    }
}

/// Scalar counters the service contributes to a snapshot (already
/// tracked elsewhere in the daemon; gathered here so the two renderings
/// agree on names).
#[derive(Clone, Debug, Default)]
pub struct ServiceCounters {
    pub jobs_submitted: u64,
    pub jobs_completed: u64,
    pub jobs_failed: u64,
    pub jobs_rejected: u64,
    pub jobs_panicked: u64,
    pub jobs_timed_out: u64,
    pub jobs_cancelled: u64,
    pub queue_depth: u64,
    pub queue_peak: u64,
    pub workers_configured: u64,
    pub workers_respawned: u64,
    pub connections_open: u64,
    pub connections_rejected: u64,
}

/// Per-stage cache tier counts folded into a snapshot.
#[derive(Clone, Debug, Default)]
pub struct StageCacheCounters {
    pub memory_hits: u64,
    pub disk_hits: u64,
    /// Hits served from a peer's store via the remote artifact tier.
    pub remote_hits: u64,
    pub misses: u64,
    pub wall_ms: u64,
}

/// Daemon-side remote artifact tier client counters, present when
/// `--artifact-gateway` is configured. Every failure here is a
/// degradation (the stage recomputes locally), never a job error — the
/// counters are how operators see the tier limping.
#[derive(Clone, Debug, Default)]
pub struct RemoteTierCounters {
    pub fetch_hits: u64,
    pub fetch_misses: u64,
    /// Fetch attempts that errored out (connect/timeout/short read)
    /// after retries — degraded to a local recompute.
    pub fetch_failures: u64,
    pub bytes_fetched: u64,
    pub published: u64,
    pub publish_failures: u64,
    /// Fetches skipped outright because the per-gateway breaker was open.
    pub breaker_skips: u64,
    /// Fetch breaker state name: `closed` / `open` / `half-open`.
    pub breaker: &'static str,
}

/// Everything the `metrics` verb reports, assembled by the service.
#[derive(Default)]
pub struct MetricsSnapshot {
    pub service: ServiceCounters,
    /// `(stage_id, latency, cache)` in flow order.
    pub stages: Vec<(&'static str, HistogramSnapshot, StageCacheCounters)>,
    pub cache_entries: u64,
    pub cache_memory_evicted: u64,
    /// Durable-store counters, when `--cache-dir` is configured:
    /// `(disk_hits, disk_misses, quarantined, evicted, writes)`.
    pub store: Option<(u64, u64, u64, u64, u64)>,
    /// Remote artifact tier client counters, when `--artifact-gateway`
    /// is configured.
    pub remote: Option<RemoteTierCounters>,
    pub unknown_stage_events: u64,
    /// `(rule_code, findings)` in catalogue order.
    pub lint_rules: Vec<(&'static str, u64)>,
    pub unknown_lint_rules: u64,
    /// `(rule_code, findings)` for the EQ equivalence rules.
    pub verify_rules: Vec<(&'static str, u64)>,
    pub unknown_verify_rules: u64,
}

impl MetricsSnapshot {
    fn totals(&self) -> (u64, u64, u64, u64) {
        let mut memory = 0;
        let mut disk = 0;
        let mut remote = 0;
        let mut misses = 0;
        for (_, _, c) in &self.stages {
            memory += c.memory_hits;
            disk += c.disk_hits;
            remote += c.remote_hits;
            misses += c.misses;
        }
        (memory, disk, remote, misses)
    }

    /// The structured body of the `{"cmd":"metrics"}` response. Field
    /// names are part of the wire protocol (see DESIGN.md).
    pub fn to_json(&self) -> Value {
        let mut stages = serde_json::Map::new();
        for (name, hist, cache) in &self.stages {
            stages.insert(
                name.to_string(),
                serde_json::json!({
                    "latency": hist.to_json(),
                    "memory_hits": cache.memory_hits,
                    "disk_hits": cache.disk_hits,
                    "remote_hits": cache.remote_hits,
                    "misses": cache.misses,
                    "wall_ms": cache.wall_ms,
                }),
            );
        }
        let (memory_hits, disk_hits, remote_hits, misses) = self.totals();
        let s = &self.service;
        let mut root = serde_json::Map::new();
        root.insert(
            "jobs".into(),
            serde_json::json!({
                "submitted": s.jobs_submitted,
                "completed": s.jobs_completed,
                "failed": s.jobs_failed,
                "rejected": s.jobs_rejected,
                "panicked": s.jobs_panicked,
                "timed_out": s.jobs_timed_out,
                "cancelled": s.jobs_cancelled,
            }),
        );
        root.insert(
            "queue".into(),
            serde_json::json!({"depth": s.queue_depth, "peak": s.queue_peak}),
        );
        root.insert(
            "workers".into(),
            serde_json::json!({"configured": s.workers_configured, "respawned": s.workers_respawned}),
        );
        root.insert(
            "connections".into(),
            serde_json::json!({"open": s.connections_open, "rejected": s.connections_rejected}),
        );
        let mut cache = serde_json::Map::new();
        cache.insert("memory_hits".into(), memory_hits.into());
        cache.insert("disk_hits".into(), disk_hits.into());
        cache.insert("remote_hits".into(), remote_hits.into());
        cache.insert("misses".into(), misses.into());
        cache.insert("entries".into(), self.cache_entries.into());
        cache.insert("memory_evicted".into(), self.cache_memory_evicted.into());
        if let Some((dh, dm, q, ev, w)) = self.store {
            cache.insert(
                "store".into(),
                serde_json::json!({
                    "disk_hits": dh,
                    "disk_misses": dm,
                    "quarantined": q,
                    "evicted": ev,
                    "writes": w,
                }),
            );
        }
        if let Some(r) = &self.remote {
            cache.insert(
                "remote".into(),
                serde_json::json!({
                    "fetch_hits": r.fetch_hits,
                    "fetch_misses": r.fetch_misses,
                    "fetch_failures": r.fetch_failures,
                    "bytes_fetched": r.bytes_fetched,
                    "published": r.published,
                    "publish_failures": r.publish_failures,
                    "breaker_skips": r.breaker_skips,
                    "breaker": r.breaker,
                }),
            );
        }
        root.insert("cache".into(), Value::Object(cache));
        root.insert("stages".into(), Value::Object(stages));
        root.insert(
            "unknown_stage_events".into(),
            self.unknown_stage_events.into(),
        );
        let mut lint = serde_json::Map::new();
        for (code, n) in &self.lint_rules {
            lint.insert(code.to_string(), (*n).into());
        }
        lint.insert("unknown".into(), self.unknown_lint_rules.into());
        root.insert("lint_rules".into(), Value::Object(lint));
        let mut verify = serde_json::Map::new();
        for (code, n) in &self.verify_rules {
            verify.insert(code.to_string(), (*n).into());
        }
        verify.insert("unknown".into(), self.unknown_verify_rules.into());
        root.insert("verify_rules".into(), Value::Object(verify));
        Value::Object(root)
    }

    /// Prometheus-style text exposition (`flowd --metrics-dump`,
    /// `flowc metrics --text`).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let s = &self.service;
        let push = |out: &mut String, line: String| {
            out.push_str(&line);
            out.push('\n');
        };

        push(
            &mut out,
            "# HELP flowd_jobs_total Jobs by terminal state.".into(),
        );
        push(&mut out, "# TYPE flowd_jobs_total counter".into());
        for (state, n) in [
            ("submitted", s.jobs_submitted),
            ("completed", s.jobs_completed),
            ("failed", s.jobs_failed),
            ("rejected", s.jobs_rejected),
            ("panicked", s.jobs_panicked),
            ("timed_out", s.jobs_timed_out),
            ("cancelled", s.jobs_cancelled),
        ] {
            push(
                &mut out,
                format!("flowd_jobs_total{{state=\"{state}\"}} {n}"),
            );
        }

        push(&mut out, "# TYPE flowd_queue_depth gauge".into());
        push(&mut out, format!("flowd_queue_depth {}", s.queue_depth));
        push(&mut out, "# TYPE flowd_queue_depth_peak gauge".into());
        push(&mut out, format!("flowd_queue_depth_peak {}", s.queue_peak));
        push(&mut out, "# TYPE flowd_workers_configured gauge".into());
        push(
            &mut out,
            format!("flowd_workers_configured {}", s.workers_configured),
        );
        push(
            &mut out,
            "# TYPE flowd_workers_respawned_total counter".into(),
        );
        push(
            &mut out,
            format!("flowd_workers_respawned_total {}", s.workers_respawned),
        );
        push(&mut out, "# TYPE flowd_connections_open gauge".into());
        push(
            &mut out,
            format!("flowd_connections_open {}", s.connections_open),
        );
        push(
            &mut out,
            "# TYPE flowd_connections_rejected_total counter".into(),
        );
        push(
            &mut out,
            format!(
                "flowd_connections_rejected_total {}",
                s.connections_rejected
            ),
        );

        let (memory_hits, disk_hits, remote_hits, misses) = self.totals();
        push(
            &mut out,
            "# HELP flowd_cache_hits_total Stage-cache hits by tier.".into(),
        );
        push(&mut out, "# TYPE flowd_cache_hits_total counter".into());
        push(
            &mut out,
            format!("flowd_cache_hits_total{{tier=\"memory\"}} {memory_hits}"),
        );
        push(
            &mut out,
            format!("flowd_cache_hits_total{{tier=\"disk\"}} {disk_hits}"),
        );
        push(
            &mut out,
            format!("flowd_cache_hits_total{{tier=\"remote\"}} {remote_hits}"),
        );
        push(&mut out, "# TYPE flowd_cache_misses_total counter".into());
        push(&mut out, format!("flowd_cache_misses_total {misses}"));
        push(&mut out, "# TYPE flowd_cache_entries gauge".into());
        push(
            &mut out,
            format!("flowd_cache_entries {}", self.cache_entries),
        );
        push(
            &mut out,
            "# TYPE flowd_cache_memory_evicted_total counter".into(),
        );
        push(
            &mut out,
            format!(
                "flowd_cache_memory_evicted_total {}",
                self.cache_memory_evicted
            ),
        );
        if let Some((dh, dm, q, ev, w)) = self.store {
            push(
                &mut out,
                "# TYPE flowd_store_disk_hits_total counter".into(),
            );
            push(&mut out, format!("flowd_store_disk_hits_total {dh}"));
            push(
                &mut out,
                "# TYPE flowd_store_disk_misses_total counter".into(),
            );
            push(&mut out, format!("flowd_store_disk_misses_total {dm}"));
            push(
                &mut out,
                "# TYPE flowd_store_quarantined_total counter".into(),
            );
            push(&mut out, format!("flowd_store_quarantined_total {q}"));
            push(&mut out, "# TYPE flowd_store_evicted_total counter".into());
            push(&mut out, format!("flowd_store_evicted_total {ev}"));
            push(&mut out, "# TYPE flowd_store_writes_total counter".into());
            push(&mut out, format!("flowd_store_writes_total {w}"));
        }
        if let Some(r) = &self.remote {
            push(
                &mut out,
                "# HELP flowd_remote_fetch_total Remote artifact fetches by result.".into(),
            );
            push(&mut out, "# TYPE flowd_remote_fetch_total counter".into());
            for (result, n) in [
                ("hit", r.fetch_hits),
                ("miss", r.fetch_misses),
                ("failure", r.fetch_failures),
                ("breaker-skip", r.breaker_skips),
            ] {
                push(
                    &mut out,
                    format!("flowd_remote_fetch_total{{result=\"{result}\"}} {n}"),
                );
            }
            push(
                &mut out,
                "# TYPE flowd_remote_bytes_fetched_total counter".into(),
            );
            push(
                &mut out,
                format!("flowd_remote_bytes_fetched_total {}", r.bytes_fetched),
            );
            push(&mut out, "# TYPE flowd_remote_publish_total counter".into());
            for (result, n) in [("ok", r.published), ("failure", r.publish_failures)] {
                push(
                    &mut out,
                    format!("flowd_remote_publish_total{{result=\"{result}\"}} {n}"),
                );
            }
            push(
                &mut out,
                "# HELP flowd_remote_breaker_state 0=closed 1=half-open 2=open.".into(),
            );
            push(&mut out, "# TYPE flowd_remote_breaker_state gauge".into());
            let code = match r.breaker {
                "closed" => 0,
                "half-open" => 1,
                _ => 2,
            };
            push(&mut out, format!("flowd_remote_breaker_state {code}"));
        }

        push(
            &mut out,
            "# HELP flowd_stage_duration_ms Per-stage service latency (cache hits included)."
                .into(),
        );
        push(&mut out, "# TYPE flowd_stage_duration_ms histogram".into());
        for (stage, hist, _) in &self.stages {
            let mut cumulative = 0u64;
            for (i, n) in hist.buckets.iter().enumerate() {
                cumulative += n;
                let le = match BUCKET_BOUNDS_MS.get(i) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".to_string(),
                };
                push(
                    &mut out,
                    format!(
                        "flowd_stage_duration_ms_bucket{{stage=\"{stage}\",le=\"{le}\"}} {cumulative}"
                    ),
                );
            }
            push(
                &mut out,
                format!(
                    "flowd_stage_duration_ms_sum{{stage=\"{stage}\"}} {}",
                    hist.sum_ms
                ),
            );
            push(
                &mut out,
                format!(
                    "flowd_stage_duration_ms_count{{stage=\"{stage}\"}} {}",
                    hist.count
                ),
            );
        }

        push(
            &mut out,
            "# TYPE flowd_unknown_stage_events_total counter".into(),
        );
        push(
            &mut out,
            format!(
                "flowd_unknown_stage_events_total {}",
                self.unknown_stage_events
            ),
        );

        push(
            &mut out,
            "# HELP flowd_lint_rule_hits_total Design-rule findings by rule code.".into(),
        );
        push(&mut out, "# TYPE flowd_lint_rule_hits_total counter".into());
        for (code, n) in &self.lint_rules {
            push(
                &mut out,
                format!("flowd_lint_rule_hits_total{{rule=\"{code}\"}} {n}"),
            );
        }
        push(
            &mut out,
            "# TYPE flowd_unknown_lint_rules_total counter".into(),
        );
        push(
            &mut out,
            format!("flowd_unknown_lint_rules_total {}", self.unknown_lint_rules),
        );
        push(
            &mut out,
            "# HELP flowd_verify_rule_hits_total Equivalence findings by EQ rule code.".into(),
        );
        push(
            &mut out,
            "# TYPE flowd_verify_rule_hits_total counter".into(),
        );
        for (code, n) in &self.verify_rules {
            push(
                &mut out,
                format!("flowd_verify_rule_hits_total{{rule=\"{code}\"}} {n}"),
            );
        }
        push(
            &mut out,
            "# TYPE flowd_unknown_verify_rules_total counter".into(),
        );
        push(
            &mut out,
            format!(
                "flowd_unknown_verify_rules_total {}",
                self.unknown_verify_rules
            ),
        );
        out
    }
}

/// One backend's row in a [`GatewaySnapshot`].
#[derive(Clone, Debug)]
pub struct BackendSnapshot {
    pub addr: String,
    /// Last health probe succeeded and the breaker is not open.
    pub healthy: bool,
    /// Breaker state name: `closed` / `open` / `half-open`.
    pub breaker: &'static str,
    pub breaker_transitions: BreakerCounters,
    pub in_flight: u64,
    /// Job attempts routed to this backend (including failed ones).
    pub requests: u64,
    /// Attempts that ended in a transport failure or lost worker.
    pub failures: u64,
    /// Attempts re-routed here *from* a failed peer attempt.
    pub failovers: u64,
    /// Artifact-fetch breaker state name (`closed` / `open` /
    /// `half-open`) — separate from the job breaker so a flaky artifact
    /// path never stops job routing.
    pub fetch_breaker: &'static str,
    /// Jobs routed here instead of their busy affinity backend.
    pub steals: u64,
}

/// Gateway artifact-tier counters (`artifact_get` / `artifact_put`
/// verbs fanned out to backends).
#[derive(Clone, Copy, Debug, Default)]
pub struct GatewayArtifactCounters {
    /// `artifact_get` requests received from daemons.
    pub gets: u64,
    /// Gets answered with a payload from some backend.
    pub hits: u64,
    /// Gets answered `hit=false` (no backend had the entry).
    pub misses: u64,
    /// Backend exchanges that errored during a get (fed the fetch
    /// breaker; the get degrades to a miss, never an error).
    pub fetch_failures: u64,
    /// `artifact_put` requests received from daemons.
    pub puts: u64,
    /// Put replications that failed on a backend.
    pub put_failures: u64,
    /// Payload bytes served to fetching daemons.
    pub bytes_served: u64,
    /// Payload bytes accepted from publishing daemons.
    pub bytes_stored: u64,
    /// Payloads deliberately corrupted by the `--corrupt-artifacts`
    /// chaos hook before serving.
    pub corrupted: u64,
}

/// Gateway-level job terminals.
#[derive(Clone, Copy, Debug, Default)]
pub struct GatewayJobCounters {
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    /// Shed at admission (tenant quota / queue bound) or because every
    /// backend was saturated or broken.
    pub shed: u64,
    pub timed_out: u64,
}

/// Everything `flow-gateway`'s `metrics` verb reports — the gateway
/// family the issue asks for, rendered in the same two shapes as the
/// daemon's snapshot (JSON body + `flowgw_*` Prometheus text).
#[derive(Clone, Debug, Default)]
pub struct GatewaySnapshot {
    pub jobs: GatewayJobCounters,
    pub backends: Vec<BackendSnapshot>,
    /// `(tenant, counters)` sorted by tenant name.
    pub tenants: Vec<(String, TenantCounters)>,
    pub admission_inflight: u64,
    pub admission_queued: u64,
    pub max_inflight: u64,
    pub queue_bound: u64,
    /// Artifact-tier traffic through the gateway.
    pub artifacts: GatewayArtifactCounters,
    /// Aggregated `(memory_hits, disk_hits, remote_hits, misses)`
    /// scraped from the healthy backends at snapshot time — lets
    /// cache-aware clients (`qor_bench --via-daemon`) read one `cache`
    /// object through the gateway exactly as they would from a single
    /// daemon.
    pub cache: Option<(u64, u64, u64, u64)>,
}

impl GatewaySnapshot {
    /// Total failovers across backends (the headline counter the chaos
    /// harness asserts on).
    pub fn failover_total(&self) -> u64 {
        self.backends.iter().map(|b| b.failovers).sum()
    }

    /// Total work steals across backends.
    pub fn steal_total(&self) -> u64 {
        self.backends.iter().map(|b| b.steals).sum()
    }

    /// The structured body of the gateway's `{"cmd":"metrics"}` reply.
    pub fn to_json(&self) -> Value {
        let j = &self.jobs;
        let mut root = serde_json::Map::new();
        root.insert("role".into(), "gateway".into());
        root.insert(
            "jobs".into(),
            serde_json::json!({
                "submitted": j.submitted,
                "completed": j.completed,
                "failed": j.failed,
                "shed": j.shed,
                "timed_out": j.timed_out,
                "failovers": self.failover_total(),
                "steals": self.steal_total(),
            }),
        );
        let backends: Vec<Value> = self
            .backends
            .iter()
            .map(|b| {
                serde_json::json!({
                    "addr": b.addr.clone(),
                    "healthy": b.healthy,
                    "breaker": b.breaker,
                    "breaker_transitions": serde_json::json!({
                        "opened": b.breaker_transitions.opened,
                        "half_opened": b.breaker_transitions.half_opened,
                        "closed": b.breaker_transitions.closed,
                    }),
                    "in_flight": b.in_flight,
                    "requests": b.requests,
                    "failures": b.failures,
                    "failovers": b.failovers,
                    "fetch_breaker": b.fetch_breaker,
                    "steals": b.steals,
                })
            })
            .collect();
        root.insert("backends".into(), Value::Array(backends));
        let mut tenants = serde_json::Map::new();
        for (name, c) in &self.tenants {
            tenants.insert(
                name.clone(),
                serde_json::json!({
                    "admitted": c.admitted,
                    "queued": c.queued,
                    "shed": c.shed,
                }),
            );
        }
        root.insert("tenants".into(), Value::Object(tenants));
        root.insert(
            "admission".into(),
            serde_json::json!({
                "inflight": self.admission_inflight,
                "queued": self.admission_queued,
                "max_inflight": self.max_inflight,
                "queue_bound": self.queue_bound,
            }),
        );
        let a = &self.artifacts;
        root.insert(
            "artifacts".into(),
            serde_json::json!({
                "gets": a.gets,
                "hits": a.hits,
                "misses": a.misses,
                "fetch_failures": a.fetch_failures,
                "puts": a.puts,
                "put_failures": a.put_failures,
                "bytes_served": a.bytes_served,
                "bytes_stored": a.bytes_stored,
                "corrupted": a.corrupted,
            }),
        );
        if let Some((memory_hits, disk_hits, remote_hits, misses)) = self.cache {
            root.insert(
                "cache".into(),
                serde_json::json!({
                    "memory_hits": memory_hits,
                    "disk_hits": disk_hits,
                    "remote_hits": remote_hits,
                    "misses": misses,
                }),
            );
        }
        Value::Object(root)
    }

    /// Prometheus-style text exposition (`flowgw_*` families).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, line: String| {
            out.push_str(&line);
            out.push('\n');
        };
        let j = &self.jobs;
        push(
            &mut out,
            "# HELP flowgw_jobs_total Gateway jobs by terminal state.".into(),
        );
        push(&mut out, "# TYPE flowgw_jobs_total counter".into());
        for (state, n) in [
            ("submitted", j.submitted),
            ("completed", j.completed),
            ("failed", j.failed),
            ("shed", j.shed),
            ("timed_out", j.timed_out),
        ] {
            push(
                &mut out,
                format!("flowgw_jobs_total{{state=\"{state}\"}} {n}"),
            );
        }
        push(
            &mut out,
            "# HELP flowgw_backend_requests_total Job attempts per backend.".into(),
        );
        push(
            &mut out,
            "# TYPE flowgw_backend_requests_total counter".into(),
        );
        for b in &self.backends {
            push(
                &mut out,
                format!(
                    "flowgw_backend_requests_total{{backend=\"{}\"}} {}",
                    b.addr, b.requests
                ),
            );
        }
        push(
            &mut out,
            "# TYPE flowgw_backend_failures_total counter".into(),
        );
        for b in &self.backends {
            push(
                &mut out,
                format!(
                    "flowgw_backend_failures_total{{backend=\"{}\"}} {}",
                    b.addr, b.failures
                ),
            );
        }
        push(
            &mut out,
            "# HELP flowgw_backend_failovers_total Attempts re-routed here from a dead peer."
                .into(),
        );
        push(
            &mut out,
            "# TYPE flowgw_backend_failovers_total counter".into(),
        );
        for b in &self.backends {
            push(
                &mut out,
                format!(
                    "flowgw_backend_failovers_total{{backend=\"{}\"}} {}",
                    b.addr, b.failovers
                ),
            );
        }
        push(
            &mut out,
            "# HELP flowgw_backend_steals_total Jobs routed here instead of their busy affinity backend.".into(),
        );
        push(
            &mut out,
            "# TYPE flowgw_backend_steals_total counter".into(),
        );
        for b in &self.backends {
            push(
                &mut out,
                format!(
                    "flowgw_backend_steals_total{{backend=\"{}\"}} {}",
                    b.addr, b.steals
                ),
            );
        }
        push(&mut out, "# TYPE flowgw_steals_total counter".into());
        push(
            &mut out,
            format!("flowgw_steals_total {}", self.steal_total()),
        );
        push(&mut out, "# TYPE flowgw_backend_in_flight gauge".into());
        for b in &self.backends {
            push(
                &mut out,
                format!(
                    "flowgw_backend_in_flight{{backend=\"{}\"}} {}",
                    b.addr, b.in_flight
                ),
            );
        }
        push(
            &mut out,
            "# HELP flowgw_backend_healthy Last probe ok and breaker not open.".into(),
        );
        push(&mut out, "# TYPE flowgw_backend_healthy gauge".into());
        for b in &self.backends {
            push(
                &mut out,
                format!(
                    "flowgw_backend_healthy{{backend=\"{}\"}} {}",
                    b.addr,
                    u64::from(b.healthy)
                ),
            );
        }
        push(
            &mut out,
            "# HELP flowgw_breaker_state 0=closed 1=half-open 2=open.".into(),
        );
        push(&mut out, "# TYPE flowgw_breaker_state gauge".into());
        for b in &self.backends {
            let code = match b.breaker {
                "closed" => 0,
                "half-open" => 1,
                _ => 2,
            };
            push(
                &mut out,
                format!("flowgw_breaker_state{{backend=\"{}\"}} {code}", b.addr),
            );
        }
        push(
            &mut out,
            "# HELP flowgw_fetch_breaker_state Artifact-fetch breaker: 0=closed 1=half-open 2=open.".into(),
        );
        push(&mut out, "# TYPE flowgw_fetch_breaker_state gauge".into());
        for b in &self.backends {
            let code = match b.fetch_breaker {
                "closed" => 0,
                "half-open" => 1,
                _ => 2,
            };
            push(
                &mut out,
                format!(
                    "flowgw_fetch_breaker_state{{backend=\"{}\"}} {code}",
                    b.addr
                ),
            );
        }
        push(
            &mut out,
            "# TYPE flowgw_breaker_transitions_total counter".into(),
        );
        for b in &self.backends {
            for (to, n) in [
                ("open", b.breaker_transitions.opened),
                ("half-open", b.breaker_transitions.half_opened),
                ("closed", b.breaker_transitions.closed),
            ] {
                push(
                    &mut out,
                    format!(
                        "flowgw_breaker_transitions_total{{backend=\"{}\",to=\"{to}\"}} {n}",
                        b.addr
                    ),
                );
            }
        }
        push(
            &mut out,
            "# HELP flowgw_tenant_jobs_total Per-tenant admission outcomes.".into(),
        );
        push(&mut out, "# TYPE flowgw_tenant_jobs_total counter".into());
        for (tenant, c) in &self.tenants {
            for (state, n) in [
                ("admitted", c.admitted),
                ("queued", c.queued),
                ("shed", c.shed),
            ] {
                push(
                    &mut out,
                    format!(
                        "flowgw_tenant_jobs_total{{tenant=\"{tenant}\",state=\"{state}\"}} {n}"
                    ),
                );
            }
        }
        push(&mut out, "# TYPE flowgw_admission_inflight gauge".into());
        push(
            &mut out,
            format!("flowgw_admission_inflight {}", self.admission_inflight),
        );
        push(&mut out, "# TYPE flowgw_admission_queued gauge".into());
        push(
            &mut out,
            format!("flowgw_admission_queued {}", self.admission_queued),
        );
        let a = &self.artifacts;
        push(
            &mut out,
            "# HELP flowgw_artifact_requests_total Artifact verbs received from daemons.".into(),
        );
        push(
            &mut out,
            "# TYPE flowgw_artifact_requests_total counter".into(),
        );
        for (verb, n) in [("get", a.gets), ("put", a.puts)] {
            push(
                &mut out,
                format!("flowgw_artifact_requests_total{{verb=\"{verb}\"}} {n}"),
            );
        }
        push(
            &mut out,
            "# HELP flowgw_artifact_gets_total Artifact gets by result (failures degrade to misses downstream).".into(),
        );
        push(&mut out, "# TYPE flowgw_artifact_gets_total counter".into());
        for (result, n) in [
            ("hit", a.hits),
            ("miss", a.misses),
            ("fetch-failure", a.fetch_failures),
        ] {
            push(
                &mut out,
                format!("flowgw_artifact_gets_total{{result=\"{result}\"}} {n}"),
            );
        }
        push(
            &mut out,
            "# TYPE flowgw_artifact_put_failures_total counter".into(),
        );
        push(
            &mut out,
            format!("flowgw_artifact_put_failures_total {}", a.put_failures),
        );
        push(
            &mut out,
            "# TYPE flowgw_artifact_bytes_total counter".into(),
        );
        for (direction, n) in [("served", a.bytes_served), ("stored", a.bytes_stored)] {
            push(
                &mut out,
                format!("flowgw_artifact_bytes_total{{direction=\"{direction}\"}} {n}"),
            );
        }
        push(
            &mut out,
            "# HELP flowgw_artifact_corrupted_total Payloads corrupted by the chaos hook.".into(),
        );
        push(
            &mut out,
            "# TYPE flowgw_artifact_corrupted_total counter".into(),
        );
        push(
            &mut out,
            format!("flowgw_artifact_corrupted_total {}", a.corrupted),
        );
        if let Some((memory_hits, disk_hits, remote_hits, misses)) = self.cache {
            push(
                &mut out,
                "# HELP flowgw_cache_hits_total Backend stage-cache hits by tier (aggregated)."
                    .into(),
            );
            push(&mut out, "# TYPE flowgw_cache_hits_total counter".into());
            push(
                &mut out,
                format!("flowgw_cache_hits_total{{tier=\"memory\"}} {memory_hits}"),
            );
            push(
                &mut out,
                format!("flowgw_cache_hits_total{{tier=\"disk\"}} {disk_hits}"),
            );
            push(
                &mut out,
                format!("flowgw_cache_hits_total{{tier=\"remote\"}} {remote_hits}"),
            );
            push(&mut out, "# TYPE flowgw_cache_misses_total counter".into());
            push(&mut out, format!("flowgw_cache_misses_total {misses}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_observations_by_bound() {
        let h = Histogram::new();
        h.observe_ms(0.4); // le=1
        h.observe_ms(1.0); // le=1 (inclusive bound)
        h.observe_ms(7.0); // le=10
        h.observe_ms(9999.0); // +Inf
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[3], 1, "7ms lands in the le=10 bucket");
        assert_eq!(*snap.buckets.last().unwrap(), 1, "overflow lands in +Inf");
        assert!((snap.sum_ms - 10007.4).abs() < 0.01);

        let js = snap.to_json();
        let buckets = js["buckets"].as_array().unwrap();
        assert_eq!(buckets.len(), BUCKET_BOUNDS_MS.len() + 1);
        // Cumulative: the +Inf bucket always equals the total count.
        assert_eq!(buckets.last().unwrap()["count"].as_u64(), Some(4));
        assert_eq!(buckets.last().unwrap()["le"].as_str(), Some("+Inf"));
    }

    #[test]
    fn registry_routes_by_stage_id_and_flags_unknowns() {
        let m = Metrics::new();
        m.observe_stage("synthesis", 3.0);
        m.observe_stage("route", 42.0);
        m.observe_stage("not_a_stage", 1.0);
        let stages = m.stage_snapshots();
        let synth = &stages.iter().find(|(n, _)| *n == "synthesis").unwrap().1;
        assert_eq!(synth.count, 1);
        let route = &stages.iter().find(|(n, _)| *n == "route").unwrap().1;
        assert_eq!(route.count, 1);
        assert_eq!(m.unknown_stage_events(), 1);
    }

    #[test]
    fn lint_rule_counters_route_by_code_and_flag_unknowns() {
        let m = Metrics::new();
        m.observe_lint_rule("NL001");
        m.observe_lint_rule("NL001");
        m.observe_lint_rule("RT002");
        m.observe_lint_rule("XX999");
        let snap = m.lint_rule_snapshots();
        assert_eq!(snap.len(), RULES.len());
        assert_eq!(
            snap.iter().find(|(c, _)| *c == "NL001"),
            Some(&("NL001", 2))
        );
        assert_eq!(
            snap.iter().find(|(c, _)| *c == "RT002"),
            Some(&("RT002", 1))
        );
        assert_eq!(m.unknown_lint_rules(), 1);

        let rendered = MetricsSnapshot {
            lint_rules: snap,
            unknown_lint_rules: m.unknown_lint_rules(),
            ..Default::default()
        };
        let text = rendered.to_prometheus_text();
        assert!(text.contains("flowd_lint_rule_hits_total{rule=\"NL001\"} 2"));
        assert!(text.contains("flowd_lint_rule_hits_total{rule=\"PK001\"} 0"));
        assert!(text.contains("flowd_unknown_lint_rules_total 1"));
        let js = rendered.to_json();
        assert_eq!(js["lint_rules"]["NL001"].as_u64(), Some(2));
        assert_eq!(js["lint_rules"]["unknown"].as_u64(), Some(1));
    }

    #[test]
    fn prometheus_text_has_expected_families() {
        let m = Metrics::new();
        m.observe_stage("pack", 12.0);
        let snap = MetricsSnapshot {
            service: ServiceCounters {
                jobs_completed: 3,
                queue_peak: 2,
                ..Default::default()
            },
            stages: m
                .stage_snapshots()
                .into_iter()
                .map(|(n, h)| (n, h, StageCacheCounters::default()))
                .collect(),
            store: Some((8, 1, 0, 0, 9)),
            remote: Some(RemoteTierCounters {
                fetch_hits: 4,
                fetch_misses: 2,
                fetch_failures: 1,
                bytes_fetched: 1024,
                published: 5,
                publish_failures: 0,
                breaker_skips: 0,
                breaker: "closed",
            }),
            ..Default::default()
        };
        let text = snap.to_prometheus_text();
        assert!(text.contains("flowd_jobs_total{state=\"completed\"} 3"));
        assert!(text.contains("flowd_queue_depth_peak 2"));
        assert!(text.contains("flowd_stage_duration_ms_bucket{stage=\"pack\",le=\"20\"} 1"));
        assert!(text.contains("flowd_stage_duration_ms_count{stage=\"pack\"} 1"));
        assert!(text.contains("flowd_store_disk_hits_total 8"));
        assert!(text.contains("flowd_cache_hits_total{tier=\"memory\"} 0"));
        assert!(text.contains("flowd_cache_hits_total{tier=\"remote\"} 0"));
        assert!(text.contains("flowd_remote_fetch_total{result=\"hit\"} 4"));
        assert!(text.contains("flowd_remote_fetch_total{result=\"failure\"} 1"));
        assert!(text.contains("flowd_remote_bytes_fetched_total 1024"));
        assert!(text.contains("flowd_remote_publish_total{result=\"ok\"} 5"));
        assert!(text.contains("flowd_remote_breaker_state 0"));
        // Every line is a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn gateway_snapshot_renders_both_shapes() {
        let snap = GatewaySnapshot {
            jobs: GatewayJobCounters {
                submitted: 5,
                completed: 4,
                failed: 0,
                shed: 1,
                timed_out: 0,
            },
            backends: vec![
                BackendSnapshot {
                    addr: "127.0.0.1:9101".into(),
                    healthy: true,
                    breaker: "closed",
                    breaker_transitions: BreakerCounters::default(),
                    in_flight: 1,
                    requests: 3,
                    failures: 0,
                    failovers: 0,
                    fetch_breaker: "closed",
                    steals: 2,
                },
                BackendSnapshot {
                    addr: "127.0.0.1:9102".into(),
                    healthy: false,
                    breaker: "open",
                    breaker_transitions: BreakerCounters {
                        opened: 1,
                        half_opened: 0,
                        closed: 0,
                    },
                    in_flight: 0,
                    requests: 2,
                    failures: 1,
                    failovers: 1,
                    fetch_breaker: "open",
                    steals: 0,
                },
            ],
            tenants: vec![(
                "acme".to_string(),
                TenantCounters {
                    admitted: 4,
                    queued: 2,
                    shed: 1,
                },
            )],
            admission_inflight: 1,
            admission_queued: 0,
            max_inflight: 8,
            queue_bound: 16,
            artifacts: GatewayArtifactCounters {
                gets: 7,
                hits: 4,
                misses: 2,
                fetch_failures: 1,
                puts: 5,
                put_failures: 0,
                bytes_served: 2048,
                bytes_stored: 4096,
                corrupted: 1,
            },
            cache: Some((10, 2, 4, 3)),
        };
        assert_eq!(snap.failover_total(), 1);
        assert_eq!(snap.steal_total(), 2);

        let js = snap.to_json();
        assert_eq!(js["role"].as_str(), Some("gateway"));
        assert_eq!(js["jobs"]["failovers"].as_u64(), Some(1));
        assert_eq!(js["jobs"]["steals"].as_u64(), Some(2));
        assert_eq!(js["backends"][1]["breaker"].as_str(), Some("open"));
        assert_eq!(js["backends"][1]["fetch_breaker"].as_str(), Some("open"));
        assert_eq!(
            js["backends"][1]["breaker_transitions"]["opened"].as_u64(),
            Some(1)
        );
        assert_eq!(js["tenants"]["acme"]["shed"].as_u64(), Some(1));
        assert_eq!(js["artifacts"]["hits"].as_u64(), Some(4));
        assert_eq!(js["artifacts"]["bytes_served"].as_u64(), Some(2048));
        // The aggregated cache object matches the daemon's field names,
        // so cache-aware clients work unchanged through the gateway.
        assert_eq!(js["cache"]["memory_hits"].as_u64(), Some(10));
        assert_eq!(js["cache"]["disk_hits"].as_u64(), Some(2));
        assert_eq!(js["cache"]["remote_hits"].as_u64(), Some(4));
        assert_eq!(js["cache"]["misses"].as_u64(), Some(3));

        let text = snap.to_prometheus_text();
        assert!(text.contains("flowgw_jobs_total{state=\"shed\"} 1"));
        assert!(text.contains("flowgw_backend_failovers_total{backend=\"127.0.0.1:9102\"} 1"));
        assert!(text.contains("flowgw_breaker_state{backend=\"127.0.0.1:9102\"} 2"));
        assert!(text.contains(
            "flowgw_breaker_transitions_total{backend=\"127.0.0.1:9102\",to=\"open\"} 1"
        ));
        assert!(text.contains("flowgw_tenant_jobs_total{tenant=\"acme\",state=\"admitted\"} 4"));
        assert!(text.contains("flowgw_backend_healthy{backend=\"127.0.0.1:9101\"} 1"));
        assert!(text.contains("flowgw_cache_hits_total{tier=\"memory\"} 10"));
        assert!(text.contains("flowgw_cache_hits_total{tier=\"remote\"} 4"));
        assert!(text.contains("flowgw_steals_total 2"));
        assert!(text.contains("flowgw_backend_steals_total{backend=\"127.0.0.1:9101\"} 2"));
        assert!(text.contains("flowgw_fetch_breaker_state{backend=\"127.0.0.1:9102\"} 2"));
        assert!(text.contains("flowgw_artifact_requests_total{verb=\"get\"} 7"));
        assert!(text.contains("flowgw_artifact_gets_total{result=\"hit\"} 4"));
        assert!(text.contains("flowgw_artifact_bytes_total{direction=\"served\"} 2048"));
        assert!(text.contains("flowgw_artifact_corrupted_total 1"));
        // Same exposition-format invariant as the daemon family.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }
}
