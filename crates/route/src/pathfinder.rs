//! PathFinder: negotiated-congestion routing.
//!
//! Each iteration routes every net by Dijkstra search over the RR graph
//! with the cost `base * (1 + hist) * (1 + pres * overuse)`. Present-
//! congestion pressure (`pres`) grows each iteration, history cost
//! accumulates on persistently overused nodes, and the loop ends when no
//! node is shared.

use std::collections::{BinaryHeap, HashMap};

use fpga_netlist::ir::NetId;
use fpga_pack::Clustering;
use fpga_place::{BlockRef, Placement};

use crate::rrgraph::{clb_ipin, clb_opin, RrGraph, RrKind, RrNodeId};
use crate::{Result, RouteError};

/// Router options.
#[derive(Clone, Debug)]
pub struct RouteOptions {
    pub max_iterations: usize,
    pub pres_fac_first: f64,
    pub pres_fac_mult: f64,
    pub hist_fac: f64,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            max_iterations: 30,
            pres_fac_first: 0.5,
            pres_fac_mult: 1.8,
            hist_fac: 0.4,
        }
    }
}

/// One routed net: the tree as (node, parent-node) pairs, roots first.
#[derive(Clone, Debug)]
pub struct RoutedNet {
    pub net: NetId,
    pub source: RrNodeId,
    pub sinks: Vec<RrNodeId>,
    /// Every RR node used by the net, with its parent in the tree
    /// (`None` for the source).
    pub tree: Vec<(RrNodeId, Option<RrNodeId>)>,
}

impl RoutedNet {
    /// Wire segments used.
    pub fn wirelength(&self, g: &RrGraph) -> usize {
        self.tree
            .iter()
            .filter(|(n, _)| g.kind(*n).is_wire())
            .count()
    }
}

/// The routing result.
#[derive(Clone, Debug)]
pub struct RouteResult {
    pub nets: Vec<RoutedNet>,
    pub channel_width: usize,
    pub iterations: usize,
    /// Total wire segments used.
    pub wirelength: usize,
}

/// Endpoints of every routable net in RR-graph terms.
pub fn net_endpoints(
    clustering: &Clustering,
    placement: &Placement,
    g: &RrGraph,
) -> Result<Vec<(NetId, RrNodeId, Vec<RrNodeId>)>> {
    let device = &placement.device;
    let mut out = Vec::new();
    for pn in &placement.nets {
        let driver = pn.terminals[0];
        let source = match driver {
            BlockRef::Cluster(c) => {
                let loc = placement.cluster_loc(c);
                // Which BLE slot drives this net?
                let cluster = &clustering.clusters[c.0 as usize];
                let slot = cluster
                    .bles
                    .iter()
                    .position(|&b| clustering.bles[b.0 as usize].output == pn.net)
                    .ok_or_else(|| {
                        RouteError::BadEndpoint(format!(
                            "cluster {} does not drive net {}",
                            c.0,
                            clustering.netlist.net_name(pn.net)
                        ))
                    })?;
                clb_opin(g, device, loc, slot)
                    .ok_or_else(|| RouteError::BadEndpoint("missing CLB opin".to_string()))?
            }
            BlockRef::InputPad(n) => {
                let slot = placement.slots[&BlockRef::InputPad(n)];
                g.find(RrKind::Opin {
                    x: slot.loc.x,
                    y: slot.loc.y,
                    pin: slot.sub,
                })
                .ok_or_else(|| RouteError::BadEndpoint("missing pad opin".into()))?
            }
            BlockRef::OutputPad(_) => {
                return Err(RouteError::BadEndpoint(
                    "net driven by an output pad".into(),
                ))
            }
        };
        let mut sinks = Vec::new();
        for &term in &pn.terminals[1..] {
            match term {
                BlockRef::Cluster(c) => {
                    let loc = placement.cluster_loc(c);
                    let cluster = &clustering.clusters[c.0 as usize];
                    let idx = cluster
                        .inputs
                        .iter()
                        .position(|&n| n == pn.net)
                        .ok_or_else(|| {
                            RouteError::BadEndpoint(format!(
                                "cluster {} does not consume net {}",
                                c.0,
                                clustering.netlist.net_name(pn.net)
                            ))
                        })?;
                    sinks.push(
                        clb_ipin(g, loc, idx)
                            .ok_or_else(|| RouteError::BadEndpoint("missing CLB ipin".into()))?,
                    );
                }
                BlockRef::OutputPad(n) => {
                    let slot = placement.slots[&BlockRef::OutputPad(n)];
                    sinks.push(
                        g.find(RrKind::Ipin {
                            x: slot.loc.x,
                            y: slot.loc.y,
                            pin: slot.sub,
                        })
                        .ok_or_else(|| RouteError::BadEndpoint("missing pad ipin".into()))?,
                    );
                }
                BlockRef::InputPad(_) => {
                    return Err(RouteError::BadEndpoint("input pad listed as a sink".into()))
                }
            }
        }
        out.push((pn.net, source, sinks));
    }
    Ok(out)
}

#[derive(Clone, Copy, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: RrNodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn base_cost(kind: RrKind) -> f64 {
    match kind {
        RrKind::Chanx { .. } | RrKind::Chany { .. } => 1.0,
        RrKind::Ipin { .. } => 0.9,
        RrKind::Opin { .. } => 0.9,
    }
}

/// Route all nets of a placement on an RR graph.
pub fn route(
    clustering: &Clustering,
    placement: &Placement,
    g: &RrGraph,
    opts: &RouteOptions,
) -> Result<RouteResult> {
    let endpoints = net_endpoints(clustering, placement, g)?;
    let n_nodes = g.node_count();
    let mut occupancy = vec![0u32; n_nodes];
    let mut history = vec![0.0f64; n_nodes];
    let mut trees: HashMap<NetId, Vec<(RrNodeId, Option<RrNodeId>)>> = HashMap::new();

    let mut pres_fac = opts.pres_fac_first;
    for iteration in 0..opts.max_iterations {
        for (net, source, sinks) in &endpoints {
            // Rip up the previous tree.
            if let Some(old) = trees.remove(net) {
                for (n, _) in &old {
                    occupancy[n.0 as usize] -= 1;
                }
            }
            let tree =
                route_net(g, *source, sinks, &occupancy, &history, pres_fac).ok_or_else(|| {
                    RouteError::Internal(format!(
                        "no path for net '{}'",
                        clustering.netlist.net_name(*net)
                    ))
                })?;
            for (n, _) in &tree {
                occupancy[n.0 as usize] += 1;
            }
            trees.insert(*net, tree);
        }
        // Congestion check: every node capacity is 1.
        let mut overused = 0usize;
        for (i, &occ) in occupancy.iter().enumerate() {
            if occ > 1 {
                overused += 1;
                history[i] += opts.hist_fac * (occ - 1) as f64;
            }
        }
        if overused == 0 {
            let nets: Vec<RoutedNet> = endpoints
                .iter()
                .map(|(net, source, sinks)| RoutedNet {
                    net: *net,
                    source: *source,
                    sinks: sinks.clone(),
                    tree: trees[net].clone(),
                })
                .collect();
            let wirelength = nets.iter().map(|n| n.wirelength(g)).sum();
            return Ok(RouteResult {
                nets,
                channel_width: g.channel_width,
                iterations: iteration + 1,
                wirelength,
            });
        }
        pres_fac *= opts.pres_fac_mult;
    }
    let overused = occupancy.iter().filter(|&&o| o > 1).count();
    Err(RouteError::Unroutable {
        channel_width: g.channel_width,
        overused,
    })
}

/// Dijkstra-grown route tree for one net.
fn route_net(
    g: &RrGraph,
    source: RrNodeId,
    sinks: &[RrNodeId],
    occupancy: &[u32],
    history: &[f64],
    pres_fac: f64,
) -> Option<Vec<(RrNodeId, Option<RrNodeId>)>> {
    let n = g.node_count();
    let mut tree: Vec<(RrNodeId, Option<RrNodeId>)> = vec![(source, None)];
    let mut in_tree = vec![false; n];
    in_tree[source.0 as usize] = true;
    let mut remaining: Vec<RrNodeId> = sinks.to_vec();

    let node_cost = |id: RrNodeId, extra_occ: u32| -> f64 {
        let i = id.0 as usize;
        let occ = occupancy[i] + extra_occ;
        let over = occ as f64; // capacity 1: occ >= 1 means congestion next
        base_cost(g.kind(id)) * (1.0 + history[i]) * (1.0 + pres_fac * over)
    };

    while !remaining.is_empty() {
        // Dijkstra from the whole current tree to the nearest sink.
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<RrNodeId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        for &(tn, _) in &tree {
            dist[tn.0 as usize] = 0.0;
            heap.push(HeapEntry {
                cost: 0.0,
                node: tn,
            });
        }
        let mut reached: Option<RrNodeId> = None;
        while let Some(HeapEntry { cost, node }) = heap.pop() {
            if cost > dist[node.0 as usize] {
                continue;
            }
            if remaining.contains(&node) {
                reached = Some(node);
                break;
            }
            // Input pins terminate paths: you cannot route *through* a pin.
            if !in_tree[node.0 as usize] && matches!(g.kind(node), RrKind::Ipin { .. }) {
                continue;
            }
            for &succ in &g.edges[node.0 as usize] {
                let c = cost + node_cost(succ, 0);
                if c < dist[succ.0 as usize] {
                    dist[succ.0 as usize] = c;
                    prev[succ.0 as usize] = Some(node);
                    heap.push(HeapEntry {
                        cost: c,
                        node: succ,
                    });
                }
            }
        }
        let sink = reached?;
        // Trace back to the tree.
        let mut cur = sink;
        let mut path = Vec::new();
        while !in_tree[cur.0 as usize] {
            let p = prev[cur.0 as usize]?;
            path.push((cur, Some(p)));
            cur = p;
        }
        for &(node, parent) in path.iter().rev() {
            tree.push((node, parent));
            in_tree[node.0 as usize] = true;
        }
        remaining.retain(|&s| s != sink);
    }
    Some(tree)
}

/// Binary search for the minimum channel width that routes the design.
pub fn find_min_channel_width(
    clustering: &Clustering,
    placement: &Placement,
    opts: &RouteOptions,
    max_width: usize,
) -> Result<(usize, RouteResult)> {
    let device = &placement.device;
    // Find an upper bound that routes.
    let mut hi = device.arch.routing.channel_width.max(2);
    let mut best: Option<(usize, RouteResult)>;
    loop {
        let g = RrGraph::build(device, hi);
        match route(clustering, placement, &g, opts) {
            Ok(r) => {
                best = Some((hi, r));
                break;
            }
            Err(_) if hi < max_width => hi = (hi * 2).min(max_width),
            Err(e) => return Err(e),
        }
    }
    let mut hi_w = hi;
    let mut lo = 1usize;
    while lo < hi_w {
        let mid = (lo + hi_w) / 2;
        let g = RrGraph::build(device, mid);
        match route(clustering, placement, &g, opts) {
            Ok(r) => {
                best = Some((mid, r));
                hi_w = mid;
            }
            Err(_) => lo = mid + 1,
        }
    }
    Ok(best.expect("at least one successful width"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_arch::device::Device;
    use fpga_arch::{Architecture, ClbArch};
    use fpga_netlist::ir::{CellKind, Netlist};
    use fpga_place::{place, PlaceOptions};

    fn flow(n_luts: usize, seed: u64) -> (Clustering, Placement) {
        // A few LUT+FF chains with cross-links for routing pressure.
        let mut nl = Netlist::new("t");
        let clk = nl.net("clk");
        nl.add_clock(clk);
        let a = nl.net("a");
        let b = nl.net("b");
        nl.add_input(a);
        nl.add_input(b);
        let mut prev = a;
        for i in 0..n_luts {
            let d = nl.net(&format!("d{i}"));
            let q = nl.net(&format!("q{i}"));
            nl.add_cell(
                &format!("l{i}"),
                CellKind::Lut {
                    k: 2,
                    truth: 0b0110,
                },
                vec![prev, b],
                d,
            );
            nl.add_cell(
                &format!("f{i}"),
                CellKind::Dff {
                    clock: clk,
                    init: false,
                },
                vec![d],
                q,
            );
            prev = q;
        }
        nl.add_output(prev);
        let c = fpga_pack::pack(&nl, &ClbArch::paper_default()).unwrap();
        let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 8);
        let p = place(
            &c,
            device,
            PlaceOptions {
                seed,
                inner_num: 2.0,
            },
        )
        .unwrap();
        (c, p)
    }

    #[test]
    fn routes_small_design() {
        let (c, p) = flow(12, 1);
        let g = RrGraph::build(&p.device, p.device.arch.routing.channel_width);
        let r = route(&c, &p, &g, &RouteOptions::default()).unwrap();
        assert_eq!(r.nets.len(), p.nets.len());
        assert!(r.wirelength > 0);
        // Legality: no node used twice.
        let mut used = std::collections::HashSet::new();
        for net in &r.nets {
            for (node, _) in &net.tree {
                assert!(used.insert(*node), "node {:?} shared", g.kind(*node));
            }
        }
        // Connectivity: every sink is in its net's tree, every tree node's
        // parent precedes it.
        for net in &r.nets {
            let nodes: std::collections::HashSet<_> = net.tree.iter().map(|(n, _)| *n).collect();
            for s in &net.sinks {
                assert!(nodes.contains(s), "sink not reached");
            }
            for (i, (node, parent)) in net.tree.iter().enumerate() {
                if let Some(p) = parent {
                    let pos = net.tree.iter().position(|(n, _)| n == p).unwrap();
                    assert!(pos < i, "parent after child for {node:?}");
                } else {
                    assert_eq!(*node, net.source);
                }
            }
        }
    }

    #[test]
    fn trees_follow_graph_edges() {
        let (c, p) = flow(8, 2);
        let g = RrGraph::build(&p.device, 10);
        let r = route(&c, &p, &g, &RouteOptions::default()).unwrap();
        for net in &r.nets {
            for (node, parent) in &net.tree {
                if let Some(par) = parent {
                    assert!(
                        g.edges[par.0 as usize].contains(node),
                        "tree edge {:?} -> {:?} not in graph",
                        g.kind(*par),
                        g.kind(*node)
                    );
                }
            }
        }
    }

    #[test]
    fn min_channel_width_is_found() {
        let (c, p) = flow(10, 3);
        let (w, r) = find_min_channel_width(&c, &p, &RouteOptions::default(), 64).unwrap();
        assert!((1..=64).contains(&w));
        assert_eq!(r.channel_width, w);
        // One less track must fail (minimality), unless already 1.
        if w > 1 {
            let g = RrGraph::build(&p.device, w - 1);
            assert!(route(&c, &p, &g, &RouteOptions::default()).is_err());
        }
    }

    #[test]
    fn tiny_channel_is_unroutable() {
        let (c, p) = flow(25, 4);
        let g = RrGraph::build(&p.device, 1);
        let opts = RouteOptions {
            max_iterations: 6,
            ..Default::default()
        };
        match route(&c, &p, &g, &opts) {
            Err(RouteError::Unroutable { .. }) | Err(RouteError::Internal(_)) => {}
            Ok(r) => {
                // Highly unlikely but legal for trivially small placements.
                assert!(r.wirelength > 0);
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
