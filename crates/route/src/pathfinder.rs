//! PathFinder: negotiated-congestion routing.
//!
//! Each iteration rips up and reroutes nets by A* search over the RR
//! graph with the cost `base * (1 + hist) * (1 + pres * overuse)` and an
//! admissible manhattan distance-to-go bound toward the remaining sinks.
//! Present-congestion pressure (`pres`) grows each iteration, history
//! cost accumulates on persistently overused nodes, and the loop ends
//! when no node is shared.
//!
//! The iteration structure is batch-synchronous Gauss-Seidel so per-net
//! searches can run concurrently without giving up serial convergence:
//! the worklist is cut into fixed-size batches in canonical net order,
//! every net in a batch routes against the congestion state *frozen at
//! batch start* (with its own previous tree's occupancy subtracted from
//! its cost view), and the batch's trees are committed at a barrier in
//! canonical net order before the next batch starts. Later batches
//! therefore see earlier batches' rip-ups and new trees within the same
//! iteration — the information flow that makes serial PathFinder
//! converge — while the handful of nets inside one batch route
//! independently. After iteration 0, only nets whose trees touch an
//! overused node are rerouted; once the routing is legal, a couple of
//! full clean-up sweeps at frozen pressure reclaim the detour cost the
//! congested stragglers absorbed (see `POLISH_SWEEPS` — incremental
//! rip-up alone was measured notably worse on critical path). Batch
//! boundaries are staggered per iteration so order-adjacent nets are not
//! mutually blind forever, small worklists route serially to break
//! negotiation standoffs, and small *designs* run fully classic — serial
//! full sweeps, no jitter (see `SERIAL_WORKLIST`).
//! Determinism across thread counts is by
//! construction: the batch size is a constant (never derived from the
//! thread count), so batch composition, each batch-start snapshot, and
//! the commit order are functions of canonical net order alone;
//! history/pressure updates happen single-threaded at the iteration
//! barrier. The search heap breaks cost ties by node id so results never
//! depend on heap insertion order.
//!
//! Searches reuse per-worker epoch-stamped distance/parent buffers
//! instead of allocating per sink, which is where most of the serial
//! router's time went on large graphs.

use std::collections::BinaryHeap;

use fpga_netlist::ir::NetId;
use fpga_pack::Clustering;
use fpga_place::{BlockRef, Placement};

use crate::engine::{PathFinderRouter, RouteConfig, RouteEngine};
use crate::rrgraph::{clb_ipin, clb_opin, RrGraph, RrKind, RrNodeId};
use crate::{Result, RouteError};

/// Router options for the deprecated free-function API.
#[derive(Clone, Debug)]
pub struct RouteOptions {
    pub max_iterations: usize,
    pub pres_fac_first: f64,
    pub pres_fac_mult: f64,
    pub hist_fac: f64,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            max_iterations: 30,
            pres_fac_first: 0.5,
            pres_fac_mult: 1.8,
            hist_fac: 0.4,
        }
    }
}

/// One routed net: the tree as (node, parent-node) pairs, roots first.
#[derive(Clone, Debug)]
pub struct RoutedNet {
    pub net: NetId,
    pub source: RrNodeId,
    pub sinks: Vec<RrNodeId>,
    /// Every RR node used by the net, with its parent in the tree
    /// (`None` for the source).
    pub tree: Vec<(RrNodeId, Option<RrNodeId>)>,
}

impl RoutedNet {
    /// Wire segments used.
    pub fn wirelength(&self, g: &RrGraph) -> usize {
        self.tree
            .iter()
            .filter(|(n, _)| g.kind(*n).is_wire())
            .count()
    }
}

/// The routing result.
#[derive(Clone, Debug)]
pub struct RouteResult {
    pub nets: Vec<RoutedNet>,
    pub channel_width: usize,
    pub iterations: usize,
    /// Total wire segments used.
    pub wirelength: usize,
}

/// Endpoints of every routable net in RR-graph terms.
pub fn net_endpoints(
    clustering: &Clustering,
    placement: &Placement,
    g: &RrGraph,
) -> Result<Vec<(NetId, RrNodeId, Vec<RrNodeId>)>> {
    let device = &placement.device;
    let mut out = Vec::new();
    for pn in &placement.nets {
        let driver = pn.terminals[0];
        let source = match driver {
            BlockRef::Cluster(c) => {
                let loc = placement.cluster_loc(c);
                // Which BLE slot drives this net?
                let cluster = &clustering.clusters[c.0 as usize];
                let slot = cluster
                    .bles
                    .iter()
                    .position(|&b| clustering.bles[b.0 as usize].output == pn.net)
                    .ok_or_else(|| {
                        RouteError::BadEndpoint(format!(
                            "cluster {} does not drive net {}",
                            c.0,
                            clustering.netlist.net_name(pn.net)
                        ))
                    })?;
                clb_opin(g, device, loc, slot)
                    .ok_or_else(|| RouteError::BadEndpoint("missing CLB opin".to_string()))?
            }
            BlockRef::InputPad(n) => {
                let slot = placement.slots[&BlockRef::InputPad(n)];
                g.find(RrKind::Opin {
                    x: slot.loc.x,
                    y: slot.loc.y,
                    pin: slot.sub,
                })
                .ok_or_else(|| RouteError::BadEndpoint("missing pad opin".into()))?
            }
            BlockRef::OutputPad(_) => {
                return Err(RouteError::BadEndpoint(
                    "net driven by an output pad".into(),
                ))
            }
        };
        let mut sinks = Vec::new();
        for &term in &pn.terminals[1..] {
            match term {
                BlockRef::Cluster(c) => {
                    let loc = placement.cluster_loc(c);
                    let cluster = &clustering.clusters[c.0 as usize];
                    let idx = cluster
                        .inputs
                        .iter()
                        .position(|&n| n == pn.net)
                        .ok_or_else(|| {
                            RouteError::BadEndpoint(format!(
                                "cluster {} does not consume net {}",
                                c.0,
                                clustering.netlist.net_name(pn.net)
                            ))
                        })?;
                    sinks.push(
                        clb_ipin(g, loc, idx)
                            .ok_or_else(|| RouteError::BadEndpoint("missing CLB ipin".into()))?,
                    );
                }
                BlockRef::OutputPad(n) => {
                    let slot = placement.slots[&BlockRef::OutputPad(n)];
                    sinks.push(
                        g.find(RrKind::Ipin {
                            x: slot.loc.x,
                            y: slot.loc.y,
                            pin: slot.sub,
                        })
                        .ok_or_else(|| RouteError::BadEndpoint("missing pad ipin".into()))?,
                    );
                }
                BlockRef::InputPad(_) => {
                    return Err(RouteError::BadEndpoint("input pad listed as a sink".into()))
                }
            }
        }
        out.push((pn.net, source, sinks));
    }
    Ok(out)
}

#[derive(Clone, Copy, PartialEq)]
struct HeapEntry {
    /// Priority: path cost plus the admissible distance-to-go estimate.
    cost: f64,
    /// Path cost alone, for the stale-entry check against `dist`.
    dist: f64,
    node: RrNodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on cost; ties broken by node id so pop order never
        // depends on heap insertion history.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Grid label of an RR node — every variant carries the (x, y) of its
/// tile or channel segment, and every RR edge moves at most one step in
/// this label space (unit-length segments, disjoint switch boxes,
/// pin-to-adjacent-channel connections).
fn tile(kind: RrKind) -> (i32, i32) {
    match kind {
        RrKind::Opin { x, y, .. }
        | RrKind::Ipin { x, y, .. }
        | RrKind::Chanx { x, y, .. }
        | RrKind::Chany { x, y, .. } => (x as i32, y as i32),
    }
}

/// Beyond this fanout, remaining sinks blanket the chip and a
/// min-over-sinks bound prunes little while costing O(sinks) per edge.
const ASTAR_MAX_GOALS: usize = 16;

/// Admissible distance-to-go lower bound for A*: every edge moves at
/// most one step in label space and costs at least 0.9 (the minimum
/// base cost; the congestion/history/jitter multipliers are all >= 1),
/// so `0.9 * (manhattan - 1)` never overestimates the true remaining
/// cost to the nearest goal. The -1 slack absorbs the half-step
/// offsets between a pin's label and its adjacent channel's. An empty
/// goal list means "no bound" (plain Dijkstra).
fn lower_bound(goals: &[(i32, i32)], at: (i32, i32)) -> f64 {
    let mut best = i32::MAX;
    for &(gx, gy) in goals {
        let d = (gx - at.0).abs() + (gy - at.1).abs();
        best = best.min(d);
    }
    if best == i32::MAX {
        0.0
    } else {
        0.9 * (best - 1).max(0) as f64
    }
}

fn base_cost(kind: RrKind) -> f64 {
    match kind {
        RrKind::Chanx { .. } | RrKind::Chany { .. } => 1.0,
        RrKind::Ipin { .. } => 0.9,
        RrKind::Opin { .. } => 0.9,
    }
}

type Tree = Vec<(RrNodeId, Option<RrNodeId>)>;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-(net, node) cost jitter in `[0, JITTER_FAC)`.
///
/// Nets inside one batch route against identical frozen congestion, so
/// without a tie-breaker two symmetric nets fighting over a node can
/// relocate in lockstep. A tiny multiplicative jitter keyed on
/// `(net, node)` — never on thread or iteration — makes their cost
/// landscapes slightly different, so negotiation converges, while results
/// stay bit-identical across thread counts.
const JITTER_FAC: f64 = 0.01;

fn jitter(net_salt: u64, node: usize) -> f64 {
    1.0 + JITTER_FAC
        * ((splitmix64(net_salt ^ node as u64) >> 11) as f64 * (1.0 / (1u64 << 53) as f64))
}

/// Nets routed concurrently between commit barriers. A constant — never
/// derived from the thread count — so batch composition and barrier
/// placement, and therefore the routed result, are identical at any
/// parallelism. Small enough that congestion information still flows
/// through an iteration nearly as fast as fully serial Gauss-Seidel.
const NET_BATCH: usize = 32;

/// Serial threshold, applied at two levels. A *design* with at most
/// this many nets routes in classic mode throughout: full serial
/// sweeps, no jitter, no polish — plain Gauss-Seidel PathFinder.
/// Convergence at *marginal* channel widths — exactly what
/// `find_min_channel_width` probes on small designs — measurably
/// degrades under both within-batch blindness and incremental rip-up
/// (minimum widths came out 1–2 tracks worse), and small designs carry
/// no useful parallelism anyway. On bigger designs, an *iteration*
/// whose worklist shrinks to this size goes serial (batch size 1): in
/// the negotiation endgame the last few stragglers fighting over one
/// node can swap resources in lockstep when routed blind inside one
/// batch, while one-at-a-time each sees the others' commits and the
/// standoff resolves. Both tests are functions of the design and the
/// canonical worklist alone, so thread-count invariance is untouched.
const SERIAL_WORKLIST: usize = 512;

/// After this many consecutive iterations without the overused-node
/// count improving, incremental rerouting has stalled: the congested
/// stragglers keep trading the same nodes while every net that could
/// yield a resource sits outside the worklist. Escalate to full sweeps
/// — classic PathFinder's global renegotiation — until overuse drops
/// again. A pure function of the iteration history, so thread-count
/// invariance is untouched. Measured on `rent_4k` at its pinned width
/// of 44: incremental-only negotiation parks at 2 overused nodes until
/// the ceiling, while sweep escalation converges.
const STAGNATION_SWEEP: usize = 3;

/// Full clean-up sweeps run after negotiation converges, at frozen
/// pressure. Incremental rip-up leaves the last-resolved nets with
/// whatever detours broke the congestion; once the landscape has
/// settled, rerouting every net lets those detours shorten through
/// space that is now free (occupied nodes stay prohibitively expensive
/// at converged pressure, so legality is re-checked, not assumed). If a
/// polish sweep reintroduces overuse, normal negotiation resumes; the
/// last legal routing is kept as a fallback.
const POLISH_SWEEPS: usize = 2;

/// Route all nets of a placement on an RR graph.
#[deprecated(
    since = "0.2.0",
    note = "use engine::{PathFinderRouter, RouteConfig, RouteEngine}"
)]
pub fn route(
    clustering: &Clustering,
    placement: &Placement,
    g: &RrGraph,
    opts: &RouteOptions,
) -> Result<RouteResult> {
    PathFinderRouter::new(RouteConfig::from(opts)).route(clustering, placement, g)
}

/// Binary search for the minimum channel width that routes the design.
#[deprecated(
    since = "0.2.0",
    note = "use engine::RouteEngine::find_min_channel_width"
)]
pub fn find_min_channel_width(
    clustering: &Clustering,
    placement: &Placement,
    opts: &RouteOptions,
    max_width: usize,
) -> Result<(usize, RouteResult)> {
    PathFinderRouter::new(RouteConfig::from(opts))
        .find_min_channel_width(clustering, placement, max_width)
}

/// Reusable, epoch-stamped per-worker search state. An entry of `dist`/
/// `prev` is valid only when `stamp` carries the current search epoch;
/// `mark` (in-tree), `own` (the net's previous tree) and `sinkm`
/// (pending sinks) are valid under the current net epoch. Bumping an
/// epoch invalidates the whole array in O(1) instead of re-zeroing
/// node-count-sized buffers for every sink of every net.
struct SearchBuffers {
    dist: Vec<f64>,
    prev: Vec<u32>,
    stamp: Vec<u32>,
    search_epoch: u32,
    mark: Vec<u32>,
    own: Vec<u32>,
    sinkm: Vec<u32>,
    net_epoch: u32,
    heap: BinaryHeap<HeapEntry>,
}

impl SearchBuffers {
    fn new(n: usize) -> Self {
        SearchBuffers {
            dist: vec![0.0; n],
            prev: vec![u32::MAX; n],
            stamp: vec![0; n],
            search_epoch: 0,
            mark: vec![0; n],
            own: vec![0; n],
            sinkm: vec![0; n],
            net_epoch: 0,
            heap: BinaryHeap::new(),
        }
    }
}

/// A*-grown route tree for one net against a frozen congestion
/// snapshot, with the net's own previous tree subtracted from its view.
#[allow(clippy::too_many_arguments)]
fn route_net(
    g: &RrGraph,
    net_salt: Option<u64>,
    source: RrNodeId,
    sinks: &[RrNodeId],
    occupancy: &[u32],
    history: &[f64],
    own_old: Option<&[(RrNodeId, Option<RrNodeId>)]>,
    pres_fac: f64,
    bufs: &mut SearchBuffers,
) -> Option<Tree> {
    bufs.net_epoch += 1;
    let ne = bufs.net_epoch;
    if let Some(old) = own_old {
        for (node, _) in old {
            bufs.own[node.0 as usize] = ne;
        }
    }
    let mut tree: Tree = vec![(source, None)];
    bufs.mark[source.0 as usize] = ne;
    let mut remaining = 0usize;
    for s in sinks {
        if bufs.sinkm[s.0 as usize] != ne {
            bufs.sinkm[s.0 as usize] = ne;
            remaining += 1;
        }
    }

    let mut goals: Vec<(i32, i32)> = Vec::new();
    while remaining > 0 {
        // A* from the whole current tree to the nearest sink: plain
        // Dijkstra ordering plus the admissible `lower_bound` estimate,
        // which steers the wavefront toward the remaining sinks instead
        // of flooding cost-annuli across the whole chip. The bound is
        // consistent, so the first sink popped still carries its true
        // minimum path cost — the heuristic changes how much gets
        // explored, never which tree wins.
        goals.clear();
        if remaining <= ASTAR_MAX_GOALS {
            goals.extend(
                sinks
                    .iter()
                    .filter(|s| bufs.sinkm[s.0 as usize] == ne)
                    .map(|&s| tile(g.kind(s))),
            );
        }
        bufs.search_epoch += 1;
        let se = bufs.search_epoch;
        bufs.heap.clear();
        for &(tn, _) in &tree {
            let i = tn.0 as usize;
            bufs.dist[i] = 0.0;
            bufs.stamp[i] = se;
            bufs.prev[i] = u32::MAX;
            bufs.heap.push(HeapEntry {
                cost: lower_bound(&goals, tile(g.kind(tn))),
                dist: 0.0,
                node: tn,
            });
        }
        let mut reached: Option<RrNodeId> = None;
        while let Some(HeapEntry { dist, node, .. }) = bufs.heap.pop() {
            let i = node.0 as usize;
            if bufs.stamp[i] == se && dist > bufs.dist[i] {
                continue;
            }
            if bufs.sinkm[i] == ne {
                reached = Some(node);
                break;
            }
            // Input pins terminate paths: you cannot route *through* a pin.
            if bufs.mark[i] != ne && matches!(g.kind(node), RrKind::Ipin { .. }) {
                continue;
            }
            for &succ in &g.edges[i] {
                let si = succ.0 as usize;
                let occ = occupancy[si].saturating_sub((bufs.own[si] == ne) as u32);
                let over = occ as f64; // capacity 1: occ >= 1 means congestion next
                let c = dist
                    + base_cost(g.kind(succ))
                        * (1.0 + history[si])
                        * (1.0 + pres_fac * over)
                        * net_salt.map_or(1.0, |salt| jitter(salt, si));
                if bufs.stamp[si] != se || c < bufs.dist[si] {
                    bufs.dist[si] = c;
                    bufs.stamp[si] = se;
                    bufs.prev[si] = node.0;
                    bufs.heap.push(HeapEntry {
                        cost: c + lower_bound(&goals, tile(g.kind(succ))),
                        dist: c,
                        node: succ,
                    });
                }
            }
        }
        let sink = reached?;
        // Trace back to the tree.
        let mut cur = sink;
        let mut path = Vec::new();
        while bufs.mark[cur.0 as usize] != ne {
            let p = bufs.prev[cur.0 as usize];
            if p == u32::MAX {
                return None;
            }
            path.push((cur, Some(RrNodeId(p))));
            cur = RrNodeId(p);
        }
        for &(node, parent) in path.iter().rev() {
            tree.push((node, parent));
            bufs.mark[node.0 as usize] = ne;
        }
        bufs.sinkm[sink.0 as usize] = 0;
        remaining -= 1;
    }
    Some(tree)
}

/// Route one batch of nets against the frozen batch-start state, spread
/// over `threads` workers. Results come back in worklist order no matter
/// which worker routed which net.
#[allow(clippy::too_many_arguments)]
fn route_batch(
    g: &RrGraph,
    endpoints: &[(NetId, RrNodeId, Vec<RrNodeId>)],
    trees: &[Option<Tree>],
    worklist: &[u32],
    occupancy: &[u32],
    history: &[f64],
    pres_fac: f64,
    use_jitter: bool,
    threads: usize,
    pool: &mut Vec<SearchBuffers>,
) -> Vec<Option<Tree>> {
    let workers = threads.min(worklist.len()).max(1);
    while pool.len() < workers {
        pool.push(SearchBuffers::new(g.node_count()));
    }
    let run = |bufs: &mut SearchBuffers, wi: u32| -> Option<Tree> {
        let (net, source, sinks) = &endpoints[wi as usize];
        route_net(
            g,
            use_jitter.then(|| splitmix64(0x7ac0_5e1f ^ net.0 as u64)),
            *source,
            sinks,
            occupancy,
            history,
            trees[wi as usize].as_deref(),
            pres_fac,
            bufs,
        )
    };
    if workers == 1 {
        let bufs = &mut pool[0];
        return worklist.iter().map(|&wi| run(bufs, wi)).collect();
    }
    let chunk = worklist.len().div_ceil(workers);
    let mut results: Vec<Option<Tree>> = worklist.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        let run = &run;
        for ((wch, rch), bufs) in worklist
            .chunks(chunk)
            .zip(results.chunks_mut(chunk))
            .zip(pool.iter_mut())
        {
            s.spawn(move || {
                for (&wi, r) in wch.iter().zip(rch.iter_mut()) {
                    *r = run(bufs, wi);
                }
            });
        }
    });
    results
}

/// Route all nets of a placement on an RR graph (engine entry point).
pub(crate) fn route_with(
    cfg: &RouteConfig,
    clustering: &Clustering,
    placement: &Placement,
    g: &RrGraph,
) -> Result<RouteResult> {
    let endpoints = net_endpoints(clustering, placement, g)?;
    let n_nodes = g.node_count();
    let mut occupancy = vec![0u32; n_nodes];
    let mut history = vec![0.0f64; n_nodes];
    let mut trees: Vec<Option<Tree>> = vec![None; endpoints.len()];
    let threads = cfg.parallelism.threads.max(1);
    let mut pool: Vec<SearchBuffers> = Vec::new();

    let finish = |trees: &[Option<Tree>], iterations: usize| -> RouteResult {
        let nets: Vec<RoutedNet> = endpoints
            .iter()
            .enumerate()
            .map(|(i, (net, source, sinks))| RoutedNet {
                net: *net,
                source: *source,
                sinks: sinks.clone(),
                tree: trees[i].clone().unwrap_or_default(),
            })
            .collect();
        let wirelength = nets.iter().map(|n| n.wirelength(g)).sum();
        RouteResult {
            nets,
            channel_width: g.channel_width,
            iterations,
            wirelength,
        }
    };

    // Small designs route in classic mode: full serial sweeps, no
    // jitter. Their minimum channel width is itself a QoR metric (the
    // binary-search experiment), and marginal-width convergence
    // measurably degrades under both within-batch blindness and
    // incremental rip-up — while costing nothing to run serially at
    // this size. The mode is a function of the design alone.
    let classic = endpoints.len() <= SERIAL_WORKLIST;

    let mut pres_fac = cfg.pres_fac_first;
    let mut polish_left = if classic { 0 } else { POLISH_SWEEPS };
    let mut last_legal: Option<(Vec<Option<Tree>>, usize)> = None;
    let mut prev_overused = usize::MAX;
    let mut stagnant = 0usize;
    for iteration in 0..cfg.max_iterations {
        // Worklist in canonical net order. Iteration 0, classic mode,
        // polish sweeps (no overuse left), and stagnation escalation
        // (see STAGNATION_SWEEP) route every net; incremental
        // negotiation iterations reroute only nets whose tree touches
        // an overused node.
        let congested: Vec<u32> = (0..endpoints.len() as u32)
            .filter(|&i| {
                trees[i as usize]
                    .as_ref()
                    .is_some_and(|t| t.iter().any(|(n, _)| occupancy[n.0 as usize] > 1))
            })
            .collect();
        let polishing = iteration > 0 && congested.is_empty();
        let worklist: Vec<u32> =
            if classic || iteration == 0 || polishing || stagnant >= STAGNATION_SWEEP {
                (0..endpoints.len() as u32).collect()
            } else {
                congested
            };
        // Batch-synchronous sweep: each fixed-size batch routes against
        // the occupancy left by the batches before it, then commits at a
        // barrier in canonical net order (see module docs). Small
        // worklists run serially — classic Gauss-Seidel — which also
        // breaks endgame standoffs on big designs: the last stragglers
        // fighting over one node can swap resources in lockstep when
        // routed blind inside one batch, while one-at-a-time each sees
        // the others' commits.
        let batch_size = if classic || worklist.len() <= SERIAL_WORKLIST {
            1
        } else {
            NET_BATCH
        };
        let use_jitter = !classic;
        // Stagger batch boundaries by iteration: with a fixed phase, two
        // nets adjacent in canonical order share a batch — mutually
        // blind — in *every* iteration, and can trade the same overused
        // node forever. The stagger is a function of the iteration index
        // only, so it is identical at any thread count.
        let lead = (iteration * 7 % batch_size).min(worklist.len());
        let (head, tail) = worklist.split_at(lead);
        let batches = std::iter::once(head)
            .filter(|b| !b.is_empty())
            .chain(tail.chunks(batch_size));
        for batch in batches {
            let results = route_batch(
                g, &endpoints, &trees, batch, &occupancy, &history, pres_fac, use_jitter, threads,
                &mut pool,
            );
            for (&wi, tree) in batch.iter().zip(results) {
                let wi = wi as usize;
                let tree = tree.ok_or_else(|| {
                    RouteError::Internal(format!(
                        "no path for net '{}'",
                        clustering.netlist.net_name(endpoints[wi].0)
                    ))
                })?;
                if let Some(old) = trees[wi].take() {
                    for (n, _) in &old {
                        occupancy[n.0 as usize] -= 1;
                    }
                }
                for (n, _) in &tree {
                    occupancy[n.0 as usize] += 1;
                }
                trees[wi] = Some(tree);
            }
        }
        // Congestion check: every node capacity is 1.
        let mut overused = 0usize;
        for (i, &occ) in occupancy.iter().enumerate() {
            if occ > 1 {
                overused += 1;
                history[i] += cfg.hist_fac * (occ - 1) as f64;
            }
        }
        if overused == 0 {
            if polish_left == 0 {
                return Ok(finish(&trees, iteration + 1));
            }
            // Legal but not yet polished: keep this routing as the
            // fallback, hold pressure steady, and run a clean-up sweep
            // (next iteration's worklist is every net).
            last_legal = Some((trees.clone(), iteration + 1));
            polish_left -= 1;
            continue;
        }
        if std::env::var_os("ROUTE_DEBUG").is_some() {
            eprintln!(
                "iter {iteration}: overused {overused} worklist {} pres {pres_fac:.1}",
                worklist.len()
            );
        }
        if overused >= prev_overused {
            stagnant += 1;
        } else {
            stagnant = 0;
        }
        prev_overused = overused;
        pres_fac *= cfg.pres_fac_mult;
    }
    if let Some((trees, iterations)) = last_legal {
        // The iteration budget ran out mid-polish; the pre-polish
        // routing was legal, so ship that.
        return Ok(finish(&trees, iterations));
    }
    let overused = occupancy.iter().filter(|&&o| o > 1).count();
    Err(RouteError::Unroutable {
        channel_width: g.channel_width,
        overused,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Parallelism;
    use fpga_arch::device::Device;
    use fpga_arch::{Architecture, ClbArch};
    use fpga_netlist::ir::{CellKind, Netlist};
    use fpga_place::{AnnealingPlacer, PlaceConfig, PlaceEngine};

    fn router(threads: usize) -> PathFinderRouter {
        PathFinderRouter::new(
            RouteConfig::new().parallelism(Parallelism::serial().threads(threads)),
        )
    }

    fn flow(n_luts: usize, seed: u64) -> (Clustering, Placement) {
        // A few LUT+FF chains with cross-links for routing pressure.
        let mut nl = Netlist::new("t");
        let clk = nl.net("clk");
        nl.add_clock(clk);
        let a = nl.net("a");
        let b = nl.net("b");
        nl.add_input(a);
        nl.add_input(b);
        let mut prev = a;
        for i in 0..n_luts {
            let d = nl.net(&format!("d{i}"));
            let q = nl.net(&format!("q{i}"));
            nl.add_cell(
                &format!("l{i}"),
                CellKind::Lut {
                    k: 2,
                    truth: 0b0110,
                },
                vec![prev, b],
                d,
            );
            nl.add_cell(
                &format!("f{i}"),
                CellKind::Dff {
                    clock: clk,
                    init: false,
                },
                vec![d],
                q,
            );
            prev = q;
        }
        nl.add_output(prev);
        let c = fpga_pack::pack(&nl, &ClbArch::paper_default()).unwrap();
        let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 8);
        let p = AnnealingPlacer::new(PlaceConfig::new().seed(seed).inner_num(2.0))
            .place(&c, device)
            .unwrap();
        (c, p)
    }

    #[test]
    fn routes_small_design() {
        let (c, p) = flow(12, 1);
        let g = RrGraph::build(&p.device, p.device.arch.routing.channel_width);
        let r = router(1).route(&c, &p, &g).unwrap();
        assert_eq!(r.nets.len(), p.nets.len());
        assert!(r.wirelength > 0);
        // Legality: no node used twice.
        let mut used = std::collections::HashSet::new();
        for net in &r.nets {
            for (node, _) in &net.tree {
                assert!(used.insert(*node), "node {:?} shared", g.kind(*node));
            }
        }
        // Connectivity: every sink is in its net's tree, every tree node's
        // parent precedes it.
        for net in &r.nets {
            let nodes: std::collections::HashSet<_> = net.tree.iter().map(|(n, _)| *n).collect();
            for s in &net.sinks {
                assert!(nodes.contains(s), "sink not reached");
            }
            for (i, (node, parent)) in net.tree.iter().enumerate() {
                if let Some(p) = parent {
                    let pos = net.tree.iter().position(|(n, _)| n == p).unwrap();
                    assert!(pos < i, "parent after child for {node:?}");
                } else {
                    assert_eq!(*node, net.source);
                }
            }
        }
    }

    #[test]
    fn trees_follow_graph_edges() {
        let (c, p) = flow(8, 2);
        let g = RrGraph::build(&p.device, 10);
        let r = router(1).route(&c, &p, &g).unwrap();
        for net in &r.nets {
            for (node, parent) in &net.tree {
                if let Some(par) = parent {
                    assert!(
                        g.edges[par.0 as usize].contains(node),
                        "tree edge {:?} -> {:?} not in graph",
                        g.kind(*par),
                        g.kind(*node)
                    );
                }
            }
        }
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let (c, p) = flow(20, 5);
        let g = RrGraph::build(&p.device, p.device.arch.routing.channel_width);
        let r1 = router(1).route(&c, &p, &g).unwrap();
        for threads in [2, 3, 8] {
            let rn = router(threads).route(&c, &p, &g).unwrap();
            assert_eq!(r1.iterations, rn.iterations, "threads={threads}");
            assert_eq!(r1.wirelength, rn.wirelength, "threads={threads}");
            for (a, b) in r1.nets.iter().zip(rn.nets.iter()) {
                assert_eq!(a.net, b.net);
                assert_eq!(a.tree, b.tree, "threads={threads} tree diverged");
            }
        }
    }

    #[test]
    fn min_channel_width_is_found() {
        let (c, p) = flow(10, 3);
        let (w, r) = router(1).find_min_channel_width(&c, &p, 64).unwrap();
        assert!((1..=64).contains(&w));
        assert_eq!(r.channel_width, w);
        // One less track must fail (minimality), unless already 1.
        if w > 1 {
            let g = RrGraph::build(&p.device, w - 1);
            assert!(router(1).route(&c, &p, &g).is_err());
        }
    }

    #[test]
    fn deprecated_wrapper_matches_engine() {
        let (c, p) = flow(9, 6);
        let g = RrGraph::build(&p.device, p.device.arch.routing.channel_width);
        #[allow(deprecated)]
        let legacy = route(
            &c,
            &p,
            &g,
            &RouteOptions {
                max_iterations: 50,
                ..Default::default()
            },
        )
        .unwrap();
        let modern = router(1).route(&c, &p, &g).unwrap();
        assert_eq!(legacy.wirelength, modern.wirelength);
        for (a, b) in legacy.nets.iter().zip(modern.nets.iter()) {
            assert_eq!(a.tree, b.tree);
        }
    }

    #[test]
    fn tiny_channel_is_unroutable() {
        let (c, p) = flow(25, 4);
        let g = RrGraph::build(&p.device, 1);
        let r = PathFinderRouter::new(RouteConfig::new().max_iterations(6));
        match r.route(&c, &p, &g) {
            Err(RouteError::Unroutable { .. }) | Err(RouteError::Internal(_)) => {}
            Ok(r) => {
                // Highly unlikely but legal for trivially small placements.
                assert!(r.wirelength > 0);
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
