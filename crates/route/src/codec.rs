//! Binary wire codec for [`RouteResult`] — the routed-design artifact
//! the flow server persists between runs.
//!
//! The routing-resource graph is deliberately *not* serialized: it is a
//! pure function of the device and the channel width
//! ([`crate::rrgraph::RrGraph::build`] is deterministic), so consumers
//! rebuild it instead of storing megabytes of regenerable structure.
//! Node ids in the stored trees stay valid because the rebuilt graph is
//! bit-identical to the one the router used.

use fpga_netlist::codec::{ByteReader, ByteWriter, CodecResult};
use fpga_netlist::NetId;

use crate::rrgraph::RrNodeId;
use crate::{RouteResult, RoutedNet};

fn write_node(w: &mut ByteWriter, n: RrNodeId) {
    w.u32(n.0);
}

fn read_node(r: &mut ByteReader) -> CodecResult<RrNodeId> {
    Ok(RrNodeId(r.u32()?))
}

/// Serialize a routing result (net trees, channel width, iteration and
/// wirelength counters).
pub fn route_result_to_bytes(res: &RouteResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.usize(res.channel_width);
    w.usize(res.iterations);
    w.usize(res.wirelength);
    w.seq(&res.nets, |w, net: &RoutedNet| {
        w.u32(net.net.0);
        write_node(w, net.source);
        w.seq(&net.sinks, |w, &n| write_node(w, n));
        w.seq(&net.tree, |w, (node, parent)| {
            write_node(w, *node);
            w.opt(parent, |w, &p| write_node(w, p));
        });
    });
    w.into_bytes()
}

/// Inverse of [`route_result_to_bytes`].
pub fn route_result_from_bytes(bytes: &[u8]) -> CodecResult<RouteResult> {
    let mut r = ByteReader::new(bytes);
    let channel_width = r.usize()?;
    let iterations = r.usize()?;
    let wirelength = r.usize()?;
    let nets = r.seq(|r| {
        Ok(RoutedNet {
            net: NetId(r.u32()?),
            source: read_node(r)?,
            sinks: r.seq(read_node)?,
            tree: r.seq(|r| Ok((read_node(r)?, r.opt(|r| read_node(r))?)))?,
        })
    })?;
    r.finish()?;
    Ok(RouteResult {
        nets,
        channel_width,
        iterations,
        wirelength,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RouteResult {
        RouteResult {
            nets: vec![
                RoutedNet {
                    net: NetId(0),
                    source: RrNodeId(10),
                    sinks: vec![RrNodeId(20), RrNodeId(21)],
                    tree: vec![
                        (RrNodeId(10), None),
                        (RrNodeId(15), Some(RrNodeId(10))),
                        (RrNodeId(20), Some(RrNodeId(15))),
                        (RrNodeId(21), Some(RrNodeId(15))),
                    ],
                },
                RoutedNet {
                    net: NetId(3),
                    source: RrNodeId(7),
                    sinks: vec![],
                    tree: vec![(RrNodeId(7), None)],
                },
            ],
            channel_width: 12,
            iterations: 3,
            wirelength: 2,
        }
    }

    #[test]
    fn route_result_round_trips_exactly() {
        let res = sample();
        let bytes = route_result_to_bytes(&res);
        let back = route_result_from_bytes(&bytes).unwrap();
        assert_eq!(route_result_to_bytes(&back), bytes);
        assert_eq!(back.nets.len(), 2);
        assert_eq!(back.nets[0].tree.len(), 4);
        assert_eq!(back.channel_width, 12);
    }

    #[test]
    fn truncation_never_decodes() {
        let bytes = route_result_to_bytes(&sample());
        for cut in [0, 8, bytes.len() - 1] {
            assert!(route_result_from_bytes(&bytes[..cut]).is_err());
        }
    }
}
