//! Engine-level routing API.
//!
//! Mirrors `fpga_place::engine`: the flow pipeline, lint drivers, and
//! bench harness consume routers through the [`RouteEngine`] trait so
//! alternative engines (a greedy pattern router, a timing-driven
//! PathFinder, ...) can be slotted in later. [`PathFinderRouter`] is the
//! production engine: negotiation-based iterations with concurrent
//! per-net workers whose results are bit-identical across thread counts
//! (see the `pathfinder` module docs for the determinism argument).

use fpga_pack::Clustering;
use fpga_place::Placement;

use crate::pathfinder::{route_with, RouteOptions, RouteResult};
use crate::rrgraph::RrGraph;
use crate::{Result, RouteError};

/// Shared parallelism knobs, re-exported from `fpga-place` so both P&R
/// engines configure threading with one type.
pub use fpga_place::engine::Parallelism;

/// Typed builder-style configuration for [`PathFinderRouter`].
#[derive(Clone, Debug, PartialEq)]
pub struct RouteConfig {
    pub max_iterations: usize,
    pub pres_fac_first: f64,
    pub pres_fac_mult: f64,
    pub hist_fac: f64,
    pub parallelism: Parallelism,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            // Batch-synchronous Gauss-Seidel converges like the serial
            // router (later batches see earlier batches' commits within
            // an iteration); a third of headroom over the old serial
            // ceiling of 30 absorbs within-batch blindness on designs
            // pinned near their minimum channel width.
            max_iterations: 40,
            pres_fac_first: 0.5,
            pres_fac_mult: 1.8,
            hist_fac: 0.4,
            parallelism: Parallelism::default(),
        }
    }
}

impl RouteConfig {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    pub fn pres_fac_first(mut self, v: f64) -> Self {
        self.pres_fac_first = v;
        self
    }

    pub fn pres_fac_mult(mut self, v: f64) -> Self {
        self.pres_fac_mult = v;
        self
    }

    pub fn hist_fac(mut self, v: f64) -> Self {
        self.hist_fac = v;
        self
    }

    pub fn parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    pub fn threads(mut self, n: usize) -> Self {
        self.parallelism.threads = n.max(1);
        self
    }
}

impl From<&RouteOptions> for RouteConfig {
    fn from(opts: &RouteOptions) -> Self {
        RouteConfig {
            max_iterations: opts.max_iterations,
            pres_fac_first: opts.pres_fac_first,
            pres_fac_mult: opts.pres_fac_mult,
            hist_fac: opts.hist_fac,
            parallelism: Parallelism::default(),
        }
    }
}

/// A routing engine: connects every placed net on an RR graph.
pub trait RouteEngine {
    /// Stable engine name (for traces and reports).
    fn name(&self) -> &'static str;

    /// Route all nets of a placement on an RR graph.
    fn route(
        &self,
        clustering: &Clustering,
        placement: &Placement,
        g: &RrGraph,
    ) -> Result<RouteResult>;

    /// Binary search for the minimum channel width that routes the design
    /// (the width VPR reports for an architecture). Starts from the
    /// architecture's default width, doubles until routable, then bisects.
    fn find_min_channel_width(
        &self,
        clustering: &Clustering,
        placement: &Placement,
        max_width: usize,
    ) -> Result<(usize, RouteResult)> {
        let device = &placement.device;
        // Find an upper bound that routes.
        let mut hi = device.arch.routing.channel_width.max(2);
        let mut best: Option<(usize, RouteResult)>;
        loop {
            let g = RrGraph::build(device, hi);
            match self.route(clustering, placement, &g) {
                Ok(r) => {
                    best = Some((hi, r));
                    break;
                }
                Err(_) if hi < max_width => hi = (hi * 2).min(max_width),
                Err(e) => return Err(e),
            }
        }
        let mut hi_w = hi;
        let mut lo = 1usize;
        while lo < hi_w {
            let mid = (lo + hi_w) / 2;
            let g = RrGraph::build(device, mid);
            match self.route(clustering, placement, &g) {
                Ok(r) => {
                    best = Some((mid, r));
                    hi_w = mid;
                }
                Err(_) => lo = mid + 1,
            }
        }
        best.ok_or_else(|| RouteError::Internal("no routable channel width".into()))
    }
}

/// The PathFinder negotiated-congestion router with concurrent per-net
/// search workers and deterministic barrier commits.
#[derive(Clone, Debug, Default)]
pub struct PathFinderRouter {
    cfg: RouteConfig,
}

impl PathFinderRouter {
    pub fn new(cfg: RouteConfig) -> Self {
        PathFinderRouter { cfg }
    }

    pub fn config(&self) -> &RouteConfig {
        &self.cfg
    }
}

impl RouteEngine for PathFinderRouter {
    fn name(&self) -> &'static str {
        "pathfinder"
    }

    fn route(
        &self,
        clustering: &Clustering,
        placement: &Placement,
        g: &RrGraph,
    ) -> Result<RouteResult> {
        route_with(&self.cfg, clustering, placement, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builder_sets_fields() {
        let cfg = RouteConfig::new()
            .max_iterations(12)
            .pres_fac_first(0.25)
            .pres_fac_mult(2.0)
            .hist_fac(0.5)
            .threads(4);
        assert_eq!(cfg.max_iterations, 12);
        assert_eq!(cfg.pres_fac_first, 0.25);
        assert_eq!(cfg.pres_fac_mult, 2.0);
        assert_eq!(cfg.hist_fac, 0.5);
        assert_eq!(cfg.parallelism.threads, 4);
    }

    #[test]
    fn config_from_legacy_options_maps_fields() {
        let opts = RouteOptions {
            max_iterations: 9,
            pres_fac_first: 0.7,
            pres_fac_mult: 1.5,
            hist_fac: 0.3,
        };
        let cfg = RouteConfig::from(&opts);
        assert_eq!(cfg.max_iterations, 9);
        assert_eq!(cfg.pres_fac_first, 0.7);
    }
}
