//! # fpga-route
//!
//! The routing half of the flow's "VPR" tool.
//!
//! * [`rrgraph`] — the routing-resource graph of the island-style fabric:
//!   output/input pins, segmented channel wires, disjoint switch boxes
//!   (Fs = 3) and connection boxes with configurable Fc, exactly the
//!   §3.3 architecture.
//! * [`pathfinder`] — the PathFinder negotiated-congestion router:
//!   repeated shortest-path search with present-congestion and historic
//!   cost terms until no routing resource is overused.
//! * [`timing`] — Elmore-style delay estimates over routed trees using the
//!   platform's switch and wire electricals.
//!
//! `find_min_channel_width` runs the binary search VPR uses to report the
//! minimum channel width a netlist needs on the architecture.

pub mod codec;
pub mod engine;
pub mod pathfinder;
pub mod rrgraph;
pub mod sta;
pub mod timing;

pub use codec::{route_result_from_bytes, route_result_to_bytes};
pub use engine::{Parallelism, PathFinderRouter, RouteConfig, RouteEngine};
#[allow(deprecated)]
pub use pathfinder::{find_min_channel_width, route};
pub use pathfinder::{RouteOptions, RouteResult, RoutedNet};
pub use rrgraph::{RrGraph, RrKind, RrNodeId};
pub use sta::{analyze_paths, LogicDelays, StaResult};

/// Errors from routing.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// PathFinder did not converge at this channel width.
    Unroutable {
        channel_width: usize,
        overused: usize,
    },
    /// A net endpoint could not be attached to the graph.
    BadEndpoint(String),
    Internal(String),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Unroutable {
                channel_width,
                overused,
            } => write!(
                f,
                "unroutable at channel width {channel_width}: {overused} overused nodes"
            ),
            RouteError::BadEndpoint(msg) => write!(f, "bad net endpoint: {msg}"),
            RouteError::Internal(msg) => write!(f, "internal routing error: {msg}"),
        }
    }
}

impl std::error::Error for RouteError {}

pub type Result<T> = std::result::Result<T, RouteError>;
