//! The routing-resource graph.
//!
//! Geometry conventions (see `fpga_arch::device`): horizontal channel
//! segment `Chanx { x, y, t }` runs along row boundary `y` (0..=H) at
//! column `x` (1..=W); vertical segment `Chany { x, y, t }` runs along
//! column boundary `x` (0..=W) at row `y` (1..=H). A switch box sits at
//! every corner `(x, y)` with `x` in 0..=W, `y` in 0..=H, joining up to
//! four wires of the same track index (the disjoint topology, Fs = 3).
//!
//! Pins: CLB input pins are numbered `0..I`, output pins `I..I+N`; IO
//! tiles number their pads' fabric-driving pin (OPIN) and fabric-receiving
//! pin (IPIN) by the pad sub-slot.

use std::collections::HashMap;

use fpga_arch::device::{Device, GridLoc, PinClass};

/// Routing-resource node id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RrNodeId(pub u32);

/// Node kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RrKind {
    /// A block output pin at a grid location.
    Opin { x: u32, y: u32, pin: u32 },
    /// A block input pin.
    Ipin { x: u32, y: u32, pin: u32 },
    /// Horizontal channel wire.
    Chanx { x: u32, y: u32, t: u32 },
    /// Vertical channel wire.
    Chany { x: u32, y: u32, t: u32 },
}

impl RrKind {
    pub fn is_wire(&self) -> bool {
        matches!(self, RrKind::Chanx { .. } | RrKind::Chany { .. })
    }
}

/// The graph.
#[derive(Clone, Debug)]
pub struct RrGraph {
    pub nodes: Vec<RrKind>,
    /// Forward adjacency (switches are bidirectional pass transistors, so
    /// wire-wire edges appear in both directions).
    pub edges: Vec<Vec<RrNodeId>>,
    index: HashMap<RrKind, RrNodeId>,
    pub channel_width: usize,
}

impl RrGraph {
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn find(&self, kind: RrKind) -> Option<RrNodeId> {
        self.index.get(&kind).copied()
    }

    pub fn kind(&self, id: RrNodeId) -> RrKind {
        self.nodes[id.0 as usize]
    }

    /// Build the full graph for a device at the given channel width.
    pub fn build(device: &Device, channel_width: usize) -> RrGraph {
        let w = device.width as u32;
        let h = device.height as u32;
        let cw = channel_width as u32;
        let mut g = RrGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            index: HashMap::new(),
            channel_width,
        };

        let add = |g: &mut RrGraph, kind: RrKind| -> RrNodeId {
            if let Some(&id) = g.index.get(&kind) {
                return id;
            }
            let id = RrNodeId(g.nodes.len() as u32);
            g.nodes.push(kind);
            g.edges.push(Vec::new());
            g.index.insert(kind, id);
            id
        };

        // Channel wires.
        for x in 1..=w {
            for y in 0..=h {
                for t in 0..cw {
                    add(&mut g, RrKind::Chanx { x, y, t });
                }
            }
        }
        for x in 0..=w {
            for y in 1..=h {
                for t in 0..cw {
                    add(&mut g, RrKind::Chany { x, y, t });
                }
            }
        }

        // Disjoint switch boxes: same track index joins at each corner.
        // The four wires at corner (x, y): chanx(x, y) [west side],
        // chanx(x+1, y) [east], chany(x, y) [below], chany(x, y+1) [above].
        for x in 0..=w {
            for y in 0..=h {
                for t in 0..cw {
                    let mut here: Vec<RrNodeId> = Vec::with_capacity(4);
                    if x >= 1 {
                        here.push(add(&mut g, RrKind::Chanx { x, y, t }));
                    }
                    if x < w {
                        here.push(add(&mut g, RrKind::Chanx { x: x + 1, y, t }));
                    }
                    if y >= 1 {
                        here.push(add(&mut g, RrKind::Chany { x, y, t }));
                    }
                    if y < h {
                        here.push(add(&mut g, RrKind::Chany { x, y: y + 1, t }));
                    }
                    for i in 0..here.len() {
                        for j in 0..here.len() {
                            if i != j {
                                let (a, b) = (here[i], here[j]);
                                if !g.edges[a.0 as usize].contains(&b) {
                                    g.edges[a.0 as usize].push(b);
                                }
                            }
                        }
                    }
                }
            }
        }

        // CLB pins.
        let arch = &device.arch;
        let tracks_for = |fc: f64, pin: u32| -> Vec<u32> {
            let n = ((fc * cw as f64).ceil() as u32).clamp(1, cw);
            (0..n)
                .map(|k| (pin + k * cw.div_ceil(n).max(1)) % cw)
                .collect()
        };
        for loc in device.clb_locs() {
            for pin in 0..arch.clb.inputs as u32 {
                let ipin = add(
                    &mut g,
                    RrKind::Ipin {
                        x: loc.x,
                        y: loc.y,
                        pin,
                    },
                );
                let (horiz, cx, cy) = device.pin_channel(loc, PinClass::Input(pin));
                for t in tracks_for(arch.routing.fc_in, pin) {
                    let wire = if horiz {
                        add(&mut g, RrKind::Chanx { x: cx, y: cy, t })
                    } else {
                        add(&mut g, RrKind::Chany { x: cx, y: cy, t })
                    };
                    g.edges[wire.0 as usize].push(ipin);
                }
            }
            for out in 0..arch.clb.outputs as u32 {
                let pin = arch.clb.inputs as u32 + out;
                let opin = add(
                    &mut g,
                    RrKind::Opin {
                        x: loc.x,
                        y: loc.y,
                        pin,
                    },
                );
                let (horiz, cx, cy) = device.pin_channel(loc, PinClass::Output(out));
                for t in tracks_for(arch.routing.fc_out, pin) {
                    let wire = if horiz {
                        add(&mut g, RrKind::Chanx { x: cx, y: cy, t })
                    } else {
                        add(&mut g, RrKind::Chany { x: cx, y: cy, t })
                    };
                    g.edges[opin.0 as usize].push(wire);
                }
            }
        }

        // IO pads: every pad can both drive and receive on all tracks of
        // its adjacent channel (pads are flexible).
        for loc in device.io_locs() {
            let (horiz, cx, cy) = device.io_channel(loc);
            for sub in 0..device.arch.io_per_tile as u32 {
                let opin = add(
                    &mut g,
                    RrKind::Opin {
                        x: loc.x,
                        y: loc.y,
                        pin: sub,
                    },
                );
                let ipin = add(
                    &mut g,
                    RrKind::Ipin {
                        x: loc.x,
                        y: loc.y,
                        pin: sub,
                    },
                );
                for t in 0..cw {
                    let wire = if horiz {
                        add(&mut g, RrKind::Chanx { x: cx, y: cy, t })
                    } else {
                        add(&mut g, RrKind::Chany { x: cx, y: cy, t })
                    };
                    g.edges[opin.0 as usize].push(wire);
                    g.edges[wire.0 as usize].push(ipin);
                }
            }
        }

        g
    }
}

/// Convenience: the RR node of a cluster's output pin for BLE slot `slot`.
pub fn clb_opin(g: &RrGraph, device: &Device, loc: GridLoc, slot: usize) -> Option<RrNodeId> {
    let pin = device.arch.clb.inputs as u32 + slot as u32;
    g.find(RrKind::Opin {
        x: loc.x,
        y: loc.y,
        pin,
    })
}

/// The RR node of a cluster's input pin at list position `idx`.
pub fn clb_ipin(g: &RrGraph, loc: GridLoc, idx: usize) -> Option<RrNodeId> {
    g.find(RrKind::Ipin {
        x: loc.x,
        y: loc.y,
        pin: idx as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_arch::Architecture;

    fn graph() -> (Device, RrGraph) {
        let device = Device::new(Architecture::paper_default(), 3, 3);
        let g = RrGraph::build(&device, 6);
        (device, g)
    }

    #[test]
    fn node_counts_match_geometry() {
        let (device, g) = graph();
        let w = device.width;
        let h = device.height;
        let cw = g.channel_width;
        let chanx = w * (h + 1) * cw;
        let chany = (w + 1) * h * cw;
        let clb_pins = w * h * device.arch.clb.total_pins().saturating_sub(1); // no clock pin in RR
                                                                               // Clock is global, so CLB pins = inputs + outputs only.
        let io_pins = device.io_locs().len() * device.arch.io_per_tile * 2;
        assert_eq!(
            g.node_count(),
            chanx + chany + clb_pins + io_pins,
            "chanx {chanx} chany {chany} clb {clb_pins} io {io_pins}"
        );
    }

    #[test]
    fn disjoint_switchbox_preserves_track_index() {
        let (_, g) = graph();
        for (i, kind) in g.nodes.iter().enumerate() {
            if let RrKind::Chanx { t, .. } | RrKind::Chany { t, .. } = kind {
                for succ in &g.edges[i] {
                    if let RrKind::Chanx { t: t2, .. } | RrKind::Chany { t: t2, .. } = g.kind(*succ)
                    {
                        assert_eq!(*t, t2, "disjoint SB must keep the track index");
                    }
                }
            }
        }
    }

    #[test]
    fn wires_have_at_most_fs_wire_neighbours_per_end() {
        let (_, g) = graph();
        // A wire touches two switch boxes; with Fs = 3 it can reach at
        // most 3 other wires per end = 6 wire neighbours total.
        for (i, kind) in g.nodes.iter().enumerate() {
            if kind.is_wire() {
                let wire_neighbours = g.edges[i].iter().filter(|s| g.kind(**s).is_wire()).count();
                assert!(wire_neighbours <= 6, "{kind:?} has {wire_neighbours}");
            }
        }
    }

    #[test]
    fn clb_pins_connect_to_adjacent_channels_only() {
        let (device, g) = graph();
        let loc = GridLoc::new(2, 2);
        for pin in 0..device.arch.clb.inputs as u32 {
            let ipin = g.find(RrKind::Ipin { x: 2, y: 2, pin }).unwrap();
            // Input pins are edge *targets*; find sources pointing at them.
            let mut found = false;
            for (i, kind) in g.nodes.iter().enumerate() {
                if g.edges[i].contains(&ipin) {
                    found = true;
                    match kind {
                        RrKind::Chanx { x, y, .. } => {
                            assert_eq!(*x, 2);
                            assert!(*y == 1 || *y == 2);
                        }
                        RrKind::Chany { x, y, .. } => {
                            assert!(*x == 1 || *x == 2);
                            assert_eq!(*y, 2);
                        }
                        other => panic!("pin fed by {other:?}"),
                    }
                }
            }
            assert!(found, "pin {pin} unreachable");
        }
        let _ = loc;
    }

    #[test]
    fn fc_one_reaches_every_track() {
        let (device, g) = graph();
        // fc_in = 1.0: every input pin must see all tracks of its channel.
        let pin = 0u32;
        let ipin = g.find(RrKind::Ipin { x: 1, y: 1, pin }).unwrap();
        let feeders: Vec<RrKind> = g
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| g.edges[*i].contains(&ipin))
            .map(|(_, k)| *k)
            .collect();
        assert_eq!(feeders.len(), g.channel_width, "{feeders:?}");
        let _ = device;
    }

    #[test]
    fn io_pads_reach_the_ring_channels() {
        let (device, g) = graph();
        let loc = device.io_locs()[0];
        let opin = g
            .find(RrKind::Opin {
                x: loc.x,
                y: loc.y,
                pin: 0,
            })
            .unwrap();
        assert_eq!(g.edges[opin.0 as usize].len(), g.channel_width);
    }

    #[test]
    fn helpers_find_pins() {
        let (device, g) = graph();
        let loc = GridLoc::new(1, 1);
        assert!(clb_opin(&g, &device, loc, 0).is_some());
        assert!(clb_opin(&g, &device, loc, device.arch.clb.outputs - 1).is_some());
        assert!(clb_ipin(&g, loc, 0).is_some());
        assert!(clb_ipin(&g, loc, device.arch.clb.inputs - 1).is_some());
        assert!(clb_ipin(&g, loc, 99).is_none());
    }
}
