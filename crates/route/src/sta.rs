//! Static timing analysis over the placed-and-routed design.
//!
//! Combines three delay sources into path-based arrival times on the
//! mapped netlist:
//!
//! * logic delay per LUT evaluation (crossbar + pass tree + BLE mux),
//! * intra-cluster feedback (the fully connected local crossbar),
//! * per-connection routed net delay (Elmore over the actual route tree,
//!   looked up per sink pin).
//!
//! Paths start at primary inputs and FF outputs and end at FF D inputs
//! and primary outputs; the maximum arrival is the critical path, whose
//! net-by-net trace is reported for designers (and the ablation benches).

use std::collections::HashMap;

use fpga_netlist::ir::{CellKind, NetId};
use fpga_pack::{ClusterId, Clustering};
use fpga_place::{BlockRef, Placement};

use crate::pathfinder::RouteResult;
use crate::rrgraph::{RrGraph, RrKind};
use crate::timing::{net_delays, TimingModel};

/// Logic-stage delays of the platform (seconds).
#[derive(Clone, Copy, Debug)]
pub struct LogicDelays {
    /// One LUT evaluation including its crossbar mux.
    pub lut: f64,
    /// Intra-cluster feedback path (crossbar only).
    pub local: f64,
    /// FF clock-to-Q.
    pub clk_to_q: f64,
    /// FF setup time.
    pub setup: f64,
}

impl Default for LogicDelays {
    fn default() -> Self {
        LogicDelays {
            lut: 650e-12,
            local: 150e-12,
            clk_to_q: 105e-12,
            setup: 60e-12,
        }
    }
}

/// The analysis result.
#[derive(Clone, Debug)]
pub struct StaResult {
    /// Arrival time per net (seconds), for nets on analyzed paths.
    pub arrival: HashMap<NetId, f64>,
    /// The critical path as a net trace, source first.
    pub critical_path: Vec<NetId>,
    /// Critical delay including FF setup (= minimum clock period for
    /// single-edge clocking; the DET platform runs the clock at half the
    /// data rate but the data path constraint is identical).
    pub critical_delay: f64,
}

impl StaResult {
    /// Maximum data rate implied by the critical path (Hz).
    pub fn fmax(&self) -> f64 {
        if self.critical_delay <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.critical_delay
        }
    }
}

/// Run the analysis.
pub fn analyze_paths(
    clustering: &Clustering,
    placement: &Placement,
    routing: &RouteResult,
    graph: &RrGraph,
    wires: &TimingModel,
    logic: &LogicDelays,
) -> StaResult {
    let nl = &clustering.netlist;

    // Per-(net, sink location) routed delay: map each sink RR pin back to
    // its grid location.
    let mut routed_delay: HashMap<(NetId, (u32, u32)), f64> = HashMap::new();
    for rn in &routing.nets {
        for (sink, delay) in net_delays(rn, graph, wires) {
            if let RrKind::Ipin { x, y, .. } = graph.kind(sink) {
                let key = (rn.net, (x, y));
                let entry = routed_delay.entry(key).or_insert(0.0);
                *entry = entry.max(delay);
            }
        }
    }

    // Which cluster is each cell in, and where is that cluster?
    let mut cluster_of_cell: HashMap<u32, ClusterId> = HashMap::new();
    for (ci, cluster) in clustering.clusters.iter().enumerate() {
        for &bid in &cluster.bles {
            let ble = &clustering.bles[bid.0 as usize];
            if let Some(lut) = ble.lut {
                cluster_of_cell.insert(lut.0, ClusterId(ci as u32));
            }
            if let Some(ff) = ble.ff {
                cluster_of_cell.insert(ff.0, ClusterId(ci as u32));
            }
        }
    }

    // Interconnect delay for a net arriving at a consuming cell.
    let conn_delay = |net: NetId, consumer: u32| -> f64 {
        match cluster_of_cell.get(&consumer) {
            Some(&c) => {
                let producer = clustering.producer(net);
                if producer == Some(c) {
                    logic.local // stays inside the cluster
                } else {
                    let loc = placement.cluster_loc(c);
                    routed_delay
                        .get(&(net, (loc.x, loc.y)))
                        .copied()
                        .unwrap_or(logic.local)
                        + logic.local
                }
            }
            None => logic.local,
        }
    };

    // Arrival propagation in topological order.
    let order = nl.topo_order().expect("mapped netlist is acyclic");
    let mut arrival: HashMap<NetId, f64> = HashMap::new();
    let mut pred: HashMap<NetId, NetId> = HashMap::new();
    for &pi in &nl.inputs {
        arrival.insert(pi, 0.0);
    }
    for cell in &nl.cells {
        if cell.kind.is_ff() {
            arrival.insert(cell.output, logic.clk_to_q);
        }
    }
    for cid in order {
        let cell = &nl.cells[cid.index()];
        let mut worst = 0.0f64;
        let mut worst_src: Option<NetId> = None;
        for &input in &cell.inputs {
            let a = arrival.get(&input).copied().unwrap_or(0.0) + conn_delay(input, cid.0);
            if a >= worst {
                worst = a;
                worst_src = Some(input);
            }
        }
        let out_arrival = worst + logic.lut;
        arrival.insert(cell.output, out_arrival);
        if let Some(src) = worst_src {
            pred.insert(cell.output, src);
        }
    }

    // Endpoints: FF D inputs (+ setup + their arrival through the net) and
    // primary outputs (+ routed delay to the pad).
    let mut worst_end = 0.0f64;
    let mut worst_net: Option<NetId> = None;
    for cell in &nl.cells {
        if let CellKind::Dff { .. } = cell.kind {
            let d = cell.inputs[0];
            let t = arrival.get(&d).copied().unwrap_or(0.0) + conn_delay(d, u32::MAX) + logic.setup;
            if t > worst_end {
                worst_end = t;
                worst_net = Some(d);
            }
        }
    }
    for &po in &nl.outputs {
        let pad_delay = placement
            .slots
            .get(&BlockRef::OutputPad(po))
            .and_then(|s| routed_delay.get(&(po, (s.loc.x, s.loc.y))))
            .copied()
            .unwrap_or(0.0);
        let t = arrival.get(&po).copied().unwrap_or(0.0) + pad_delay;
        if t > worst_end {
            worst_end = t;
            worst_net = Some(po);
        }
    }

    // Trace the critical path backwards.
    let mut critical_path = Vec::new();
    let mut cur = worst_net;
    while let Some(net) = cur {
        critical_path.push(net);
        cur = pred.get(&net).copied();
        if critical_path.len() > nl.nets.len() {
            break; // defensive: no cycles expected
        }
    }
    critical_path.reverse();

    StaResult {
        arrival,
        critical_path,
        critical_delay: worst_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PathFinderRouter, RouteConfig, RouteEngine};
    use crate::rrgraph::RrGraph;
    use fpga_arch::device::Device;
    use fpga_arch::{Architecture, ClbArch};
    use fpga_netlist::ir::Netlist;
    use fpga_place::{AnnealingPlacer, PlaceConfig, PlaceEngine};

    fn lut_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let a = nl.net("a");
        nl.add_input(a);
        let mut prev = a;
        for i in 0..n {
            let w = nl.net(&format!("w{i}"));
            nl.add_cell(
                &format!("l{i}"),
                CellKind::Lut { k: 1, truth: 0b01 },
                vec![prev],
                w,
            );
            prev = w;
        }
        nl.add_output(prev);
        nl
    }

    fn analyzed(n: usize) -> StaResult {
        let nl = lut_chain(n);
        let c = fpga_pack::pack(&nl, &ClbArch::paper_default()).unwrap();
        let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 4);
        let p = AnnealingPlacer::new(PlaceConfig::new().seed(4).inner_num(1.0))
            .place(&c, device)
            .unwrap();
        let g = RrGraph::build(&p.device, 10);
        let r = PathFinderRouter::new(RouteConfig::new())
            .route(&c, &p, &g)
            .unwrap();
        analyze_paths(
            &c,
            &p,
            &r,
            &g,
            &TimingModel::default(),
            &LogicDelays::default(),
        )
    }

    #[test]
    fn deeper_chains_are_slower() {
        let d4 = analyzed(4).critical_delay;
        let d12 = analyzed(12).critical_delay;
        assert!(d12 > d4, "12-deep {d12:.3e} vs 4-deep {d4:.3e}");
        // A 12-LUT chain must cost at least 12 LUT delays.
        assert!(d12 >= 12.0 * LogicDelays::default().lut);
    }

    #[test]
    fn critical_path_traces_the_chain() {
        let sta = analyzed(8);
        // The path must run from the input to the final output net.
        assert!(sta.critical_path.len() >= 8, "{:?}", sta.critical_path);
        assert!(sta.fmax() > 0.0 && sta.fmax() < 1e9);
        // Arrivals are monotone along the reported path.
        let mut last = -1.0;
        for net in &sta.critical_path {
            let a = sta.arrival.get(net).copied().unwrap_or(0.0);
            assert!(a >= last, "arrivals must not decrease along the path");
            last = a;
        }
    }

    #[test]
    fn registered_designs_measure_register_to_register() {
        let mut nl = Netlist::new("r2r");
        let clk = nl.net("clk");
        nl.add_clock(clk);
        let q0 = nl.net("q0");
        let w = nl.net("w");
        let d1 = nl.net("d1");
        let q1 = nl.net("q1");
        nl.add_output(q1);
        nl.add_cell(
            "f0",
            CellKind::Dff {
                clock: clk,
                init: false,
            },
            vec![q1],
            q0,
        );
        nl.add_cell("l0", CellKind::Lut { k: 1, truth: 0b10 }, vec![q0], w);
        nl.add_cell("l1", CellKind::Lut { k: 1, truth: 0b01 }, vec![w], d1);
        nl.add_cell(
            "f1",
            CellKind::Dff {
                clock: clk,
                init: false,
            },
            vec![d1],
            q1,
        );
        let c = fpga_pack::pack(&nl, &ClbArch::paper_default()).unwrap();
        let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 3);
        let p = AnnealingPlacer::new(PlaceConfig::new().seed(1).inner_num(1.0))
            .place(&c, device)
            .unwrap();
        let g = RrGraph::build(&p.device, 8);
        let r = PathFinderRouter::new(RouteConfig::new())
            .route(&c, &p, &g)
            .unwrap();
        let logic = LogicDelays::default();
        let sta = analyze_paths(&c, &p, &r, &g, &TimingModel::default(), &logic);
        // clk->Q + 2 LUTs + setup at minimum.
        assert!(sta.critical_delay >= logic.clk_to_q + 2.0 * logic.lut + logic.setup);
        assert!(sta.critical_delay < 100e-9);
    }
}
