//! Post-route delay estimation: Elmore delays over routed trees using the
//! platform's wire and switch electricals (§3.3's selected design point:
//! 10x pass transistors on length-1 segments).

use std::collections::HashMap;

use crate::pathfinder::{RouteResult, RoutedNet};
use crate::rrgraph::{RrGraph, RrKind, RrNodeId};

/// Per-resource electrical parameters (seconds-friendly SI units).
#[derive(Clone, Copy, Debug)]
pub struct TimingModel {
    /// Switch on-resistance entering a wire (ohm).
    pub switch_r: f64,
    /// Wire segment capacitance (F).
    pub wire_c: f64,
    /// Wire segment resistance (ohm).
    pub wire_r: f64,
    /// Input-pin load (F).
    pub ipin_c: f64,
    /// Driver (output buffer) resistance (ohm).
    pub driver_r: f64,
    /// Intra-cluster (crossbar + LUT + FF) delay per CLB traversal (s).
    pub clb_delay: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        // The selected platform point: 10x pass switches (~550 ohm),
        // length-1 double-spacing wires (~11 fF, ~450 ohm effective with
        // via resistance), minimum input buffers.
        TimingModel {
            switch_r: 550.0,
            wire_c: 11e-15,
            wire_r: 450.0,
            ipin_c: 2e-15,
            driver_r: 350.0,
            clb_delay: 800e-12,
        }
    }
}

/// Elmore delay (s) from the net source to each sink.
pub fn net_delays(net: &RoutedNet, g: &RrGraph, model: &TimingModel) -> HashMap<RrNodeId, f64> {
    // Downstream capacitance per tree node.
    let idx: HashMap<RrNodeId, usize> = net
        .tree
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (*n, i))
        .collect();
    let node_c = |id: RrNodeId| -> f64 {
        match g.kind(id) {
            RrKind::Chanx { .. } | RrKind::Chany { .. } => model.wire_c,
            RrKind::Ipin { .. } => model.ipin_c,
            RrKind::Opin { .. } => 2e-15,
        }
    };
    let node_r = |id: RrNodeId| -> f64 {
        match g.kind(id) {
            RrKind::Chanx { .. } | RrKind::Chany { .. } => model.switch_r + model.wire_r,
            RrKind::Ipin { .. } => model.switch_r,
            RrKind::Opin { .. } => model.driver_r,
        }
    };
    let n = net.tree.len();
    let mut cdown: Vec<f64> = net.tree.iter().map(|(id, _)| node_c(*id)).collect();
    for i in (1..n).rev() {
        if let Some(parent) = net.tree[i].1 {
            let pi = idx[&parent];
            cdown[pi] += cdown[i];
        }
    }
    // Delay accumulates root -> leaves: delay(child) = delay(parent) +
    // R(edge into child) * Cdown(child).
    let mut delay = vec![0.0f64; n];
    for i in 0..n {
        let (id, parent) = net.tree[i];
        match parent {
            None => delay[i] = model.driver_r * cdown[i],
            Some(p) => {
                let pi = idx[&p];
                delay[i] = delay[pi] + node_r(id) * cdown[i];
            }
        }
    }
    net.sinks
        .iter()
        .map(|s| (*s, idx.get(s).map(|&i| delay[i]).unwrap_or(0.0)))
        .collect()
}

/// Summary timing over a whole routing: worst net delay and the
/// worst-case register-to-register period estimate (net + CLB delay).
#[derive(Clone, Copy, Debug)]
pub struct TimingReport {
    pub worst_net_delay: f64,
    pub mean_net_delay: f64,
    pub critical_path_estimate: f64,
}

/// Compute the timing report for a routed design.
pub fn analyze(result: &RouteResult, g: &RrGraph, model: &TimingModel) -> TimingReport {
    let mut worst: f64 = 0.0;
    let mut total = 0.0;
    let mut count = 0usize;
    for net in &result.nets {
        for (_, d) in net_delays(net, g, model) {
            worst = worst.max(d);
            total += d;
            count += 1;
        }
    }
    TimingReport {
        worst_net_delay: worst,
        mean_net_delay: if count == 0 {
            0.0
        } else {
            total / count as f64
        },
        critical_path_estimate: worst + model.clb_delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PathFinderRouter, RouteConfig, RouteEngine};
    use crate::rrgraph::RrGraph;
    use fpga_arch::device::Device;
    use fpga_arch::{Architecture, ClbArch};
    use fpga_netlist::ir::{CellKind, Netlist};
    use fpga_place::{AnnealingPlacer, PlaceConfig, PlaceEngine};

    fn routed() -> (RouteResult, RrGraph) {
        let mut nl = Netlist::new("t");
        let a = nl.net("a");
        nl.add_input(a);
        let mut prev = a;
        for i in 0..6 {
            let w = nl.net(&format!("w{i}"));
            nl.add_cell(
                &format!("l{i}"),
                CellKind::Lut { k: 1, truth: 0b01 },
                vec![prev],
                w,
            );
            prev = w;
        }
        nl.add_output(prev);
        let c = fpga_pack::pack(&nl, &ClbArch::paper_default()).unwrap();
        let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 4);
        let p = AnnealingPlacer::new(PlaceConfig::new().seed(5).inner_num(1.0))
            .place(&c, device)
            .unwrap();
        let g = RrGraph::build(&p.device, 8);
        let r = PathFinderRouter::new(RouteConfig::new())
            .route(&c, &p, &g)
            .unwrap();
        (r, g)
    }

    #[test]
    fn delays_are_positive_and_ordered() {
        let (r, g) = routed();
        let model = TimingModel::default();
        for net in &r.nets {
            let delays = net_delays(net, &g, &model);
            assert_eq!(delays.len(), net.sinks.len());
            for (_, d) in delays {
                assert!(d > 0.0 && d < 100e-9, "delay {d}");
            }
        }
    }

    #[test]
    fn report_aggregates() {
        let (r, g) = routed();
        let rep = analyze(&r, &g, &TimingModel::default());
        assert!(rep.worst_net_delay >= rep.mean_net_delay);
        assert!(rep.critical_path_estimate > rep.worst_net_delay);
    }

    #[test]
    fn longer_routes_are_slower() {
        let (r, g) = routed();
        let model = TimingModel::default();
        // Compare two nets with different wirelength.
        let mut by_len: Vec<(usize, f64)> = r
            .nets
            .iter()
            .map(|n| {
                let wl = n.wirelength(&g);
                let worst = net_delays(n, &g, &model)
                    .values()
                    .cloned()
                    .fold(0.0f64, f64::max);
                (wl, worst)
            })
            .collect();
        by_len.sort_by_key(|(wl, _)| *wl);
        if by_len.len() >= 2 {
            let (short_wl, short_d) = by_len[0];
            let (long_wl, long_d) = by_len[by_len.len() - 1];
            if long_wl > short_wl + 2 {
                assert!(
                    long_d > short_d,
                    "{long_wl} seg {long_d} vs {short_wl} seg {short_d}"
                );
            }
        }
    }
}
