//! Abstract syntax tree of the supported VHDL subset.

/// A parsed design file: entities plus their architectures.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Design {
    pub entities: Vec<Entity>,
    pub architectures: Vec<Architecture>,
}

impl Design {
    /// Find an entity by (lower-cased) name.
    pub fn entity(&self, name: &str) -> Option<&Entity> {
        self.entities.iter().find(|e| e.name == name)
    }

    /// The architecture bound to an entity (first match).
    pub fn architecture_of(&self, entity: &str) -> Option<&Architecture> {
        self.architectures.iter().find(|a| a.entity == entity)
    }

    /// The top entity: the last one with an architecture.
    pub fn top(&self) -> Option<(&Entity, &Architecture)> {
        self.entities
            .iter()
            .rev()
            .find_map(|e| self.architecture_of(&e.name).map(|a| (e, a)))
    }
}

/// Port direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    In,
    Out,
}

/// Signal type: a scalar bit or a `downto` vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ty {
    Bit,
    /// `std_logic_vector(msb downto lsb)`.
    Vector {
        msb: u32,
        lsb: u32,
    },
}

impl Ty {
    /// Number of bits.
    pub fn width(&self) -> usize {
        match self {
            Ty::Bit => 1,
            Ty::Vector { msb, lsb } => (*msb as usize) - (*lsb as usize) + 1,
        }
    }
}

/// An entity port.
#[derive(Clone, Debug, PartialEq)]
pub struct Port {
    pub name: String,
    pub dir: Dir,
    pub ty: Ty,
    pub line: usize,
}

/// `entity <name> is port (...); end`.
#[derive(Clone, Debug, PartialEq)]
pub struct Entity {
    pub name: String,
    pub ports: Vec<Port>,
    pub line: usize,
}

/// `signal <name> : <type>;`
#[derive(Clone, Debug, PartialEq)]
pub struct SignalDecl {
    pub name: String,
    pub ty: Ty,
    pub line: usize,
}

/// `architecture <name> of <entity> is ... begin ... end`.
#[derive(Clone, Debug, PartialEq)]
pub struct Architecture {
    pub name: String,
    pub entity: String,
    pub signals: Vec<SignalDecl>,
    pub stmts: Vec<ConcStmt>,
    pub line: usize,
}

/// Assignment target: a whole signal or one bit of a vector.
#[derive(Clone, Debug, PartialEq)]
pub enum Target {
    Sig(String),
    Index(String, u32),
}

impl Target {
    pub fn base(&self) -> &str {
        match self {
            Target::Sig(s) | Target::Index(s, _) => s,
        }
    }
}

/// Concurrent statements.
#[derive(Clone, Debug, PartialEq)]
pub enum ConcStmt {
    /// `target <= expr;`
    Assign {
        target: Target,
        expr: Expr,
        line: usize,
    },
    /// `target <= v1 when c1 else v2 when c2 else vN;`
    CondAssign {
        target: Target,
        arms: Vec<(Expr, Expr)>,
        default: Expr,
        line: usize,
    },
    /// A clocked process.
    Process(Process),
}

/// `process (sensitivity) begin ... end process;`
#[derive(Clone, Debug, PartialEq)]
pub struct Process {
    pub sensitivity: Vec<String>,
    pub body: Vec<SeqStmt>,
    pub line: usize,
}

/// Sequential statements inside a process.
#[derive(Clone, Debug, PartialEq)]
pub enum SeqStmt {
    Assign {
        target: Target,
        expr: Expr,
        line: usize,
    },
    If {
        cond: Expr,
        then_body: Vec<SeqStmt>,
        elsifs: Vec<(Expr, Vec<SeqStmt>)>,
        else_body: Vec<SeqStmt>,
        line: usize,
    },
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    And,
    Or,
    Nand,
    Nor,
    Xor,
    Xnor,
    /// Ripple-carry addition on equal-width vectors (or vector + integer).
    Add,
    /// Ripple-borrow subtraction (vector - vector or vector - integer).
    Sub,
    /// Equality comparison (yields a single bit).
    Eq,
    /// Inequality comparison.
    Neq,
    /// Concatenation `&` (vector building).
    Concat,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Reference to a scalar or whole vector.
    Ref(String),
    /// `sig(i)` — one bit of a vector.
    Index(String, u32),
    /// `'0'` / `'1'`.
    Bit(bool),
    /// `"0101"` (index 0 of the Vec is the leftmost/most-significant bit).
    Vec(Vec<bool>),
    /// Integer literal (for `+ 1` and comparisons against vectors).
    Int(u64),
    /// `(others => '0')` / `(others => '1')` aggregate: fills the target.
    Others(bool),
    Not(Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `rising_edge(clk)` — only valid as a process `if` condition.
    RisingEdge(String),
}

impl Expr {
    /// Does the expression tree contain a `rising_edge`?
    pub fn has_rising_edge(&self) -> bool {
        match self {
            Expr::RisingEdge(_) => true,
            Expr::Not(e) => e.has_rising_edge(),
            Expr::Bin(_, a, b) => a.has_rising_edge() || b.has_rising_edge(),
            _ => false,
        }
    }

    /// All signal names referenced.
    pub fn refs(&self, out: &mut Vec<String>) {
        match self {
            Expr::Ref(s) | Expr::Index(s, _) | Expr::RisingEdge(s) => out.push(s.clone()),
            Expr::Not(e) => e.refs(out),
            Expr::Bin(_, a, b) => {
                a.refs(out);
                b.refs(out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_widths() {
        assert_eq!(Ty::Bit.width(), 1);
        assert_eq!(Ty::Vector { msb: 7, lsb: 0 }.width(), 8);
        assert_eq!(Ty::Vector { msb: 3, lsb: 2 }.width(), 2);
    }

    #[test]
    fn expr_refs_collects_all() {
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Ref("a".into())),
            Box::new(Expr::Not(Box::new(Expr::Index("b".into(), 2)))),
        );
        let mut refs = Vec::new();
        e.refs(&mut refs);
        assert_eq!(refs, vec!["a".to_string(), "b".to_string()]);
        assert!(!e.has_rising_edge());
    }

    #[test]
    fn rising_edge_detection() {
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::RisingEdge("clk".into())),
            Box::new(Expr::Bit(true)),
        );
        assert!(e.has_rising_edge());
    }
}
