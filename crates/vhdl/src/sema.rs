//! Semantic analysis: the checking half of the paper's "VHDL Parser" tool.
//!
//! Verifies that a parsed design is well-formed for synthesis: every
//! architecture binds to an entity, all referenced signals are declared,
//! widths are consistent, inputs are never driven, no signal bit has two
//! concurrent drivers, and processes follow the synthesizable clocked
//! template (`if rising_edge(clk) then ... end if;` with the clock in the
//! sensitivity list).

use std::collections::{HashMap, HashSet};

use crate::ast::*;
use crate::{Result, VhdlError};

/// Width of an expression: either a fixed number of bits or elastic
/// (integer literals adapt to context).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Width {
    Bits(usize),
    Elastic,
}

impl Width {
    fn unify(self, other: Width, line: usize, what: &str) -> Result<Width> {
        match (self, other) {
            (Width::Elastic, w) | (w, Width::Elastic) => Ok(w),
            (Width::Bits(a), Width::Bits(b)) if a == b => Ok(Width::Bits(a)),
            (Width::Bits(a), Width::Bits(b)) => Err(VhdlError {
                line,
                msg: format!("{what}: width mismatch ({a} vs {b} bits)"),
            }),
        }
    }
}

/// Symbol table for one architecture: name -> (type, is_input, is_output).
pub struct Scope {
    pub symbols: HashMap<String, (Ty, Option<Dir>)>,
}

impl Scope {
    pub fn build(entity: &Entity, arch: &Architecture) -> Result<Scope> {
        let mut symbols = HashMap::new();
        for p in &entity.ports {
            if symbols
                .insert(p.name.clone(), (p.ty, Some(p.dir)))
                .is_some()
            {
                return Err(VhdlError {
                    line: p.line,
                    msg: format!("duplicate port '{}'", p.name),
                });
            }
        }
        for s in &arch.signals {
            if symbols.insert(s.name.clone(), (s.ty, None)).is_some() {
                return Err(VhdlError {
                    line: s.line,
                    msg: format!("'{}' shadows a port or earlier signal", s.name),
                });
            }
        }
        Ok(Scope { symbols })
    }

    fn lookup(&self, name: &str, line: usize) -> Result<(Ty, Option<Dir>)> {
        self.symbols.get(name).copied().ok_or_else(|| VhdlError {
            line,
            msg: format!("undeclared signal '{name}'"),
        })
    }
}

/// Check the whole design.
pub fn check(design: &Design) -> Result<()> {
    if design.entities.is_empty() {
        return Err(VhdlError {
            line: 1,
            msg: "no entity declared".into(),
        });
    }
    let mut entity_names = HashSet::new();
    for e in &design.entities {
        if !entity_names.insert(&e.name) {
            return Err(VhdlError {
                line: e.line,
                msg: format!("duplicate entity '{}'", e.name),
            });
        }
    }
    for arch in &design.architectures {
        let entity = design.entity(&arch.entity).ok_or_else(|| VhdlError {
            line: arch.line,
            msg: format!(
                "architecture '{}' of unknown entity '{}'",
                arch.name, arch.entity
            ),
        })?;
        check_architecture(entity, arch)?;
    }
    if design.top().is_none() {
        return Err(VhdlError {
            line: 1,
            msg: "no entity has an architecture".into(),
        });
    }
    Ok(())
}

fn check_architecture(entity: &Entity, arch: &Architecture) -> Result<()> {
    let scope = Scope::build(entity, arch)?;

    // Per-bit driver map to catch multiple drivers.
    let mut driven: HashMap<(String, u32), usize> = HashMap::new();
    fn drive(
        driven: &mut HashMap<(String, u32), usize>,
        scope: &Scope,
        target: &Target,
        line: usize,
    ) -> Result<()> {
        let (ty, dir) = scope.lookup(target.base(), line)?;
        if dir == Some(Dir::In) {
            return Err(VhdlError {
                line,
                msg: format!("cannot assign to input port '{}'", target.base()),
            });
        }
        let bits: Vec<u32> = match (target, ty) {
            (Target::Sig(_), Ty::Bit) => vec![0],
            (Target::Sig(_), Ty::Vector { msb, lsb }) => (lsb..=msb).collect(),
            (Target::Index(_, i), Ty::Vector { msb, lsb }) => {
                if *i < lsb || *i > msb {
                    return Err(VhdlError {
                        line,
                        msg: format!("index {} out of range {}..{}", i, lsb, msb),
                    });
                }
                vec![*i]
            }
            (Target::Index(..), Ty::Bit) => {
                return Err(VhdlError {
                    line,
                    msg: format!("cannot index scalar '{}'", target.base()),
                })
            }
        };
        for b in bits {
            if let Some(prev) = driven.insert((target.base().to_string(), b), line) {
                return Err(VhdlError {
                    line,
                    msg: format!("'{}({})' already driven at line {prev}", target.base(), b),
                });
            }
        }
        Ok(())
    }

    for stmt in &arch.stmts {
        match stmt {
            ConcStmt::Assign { target, expr, line } => {
                drive(&mut driven, &scope, target, *line)?;
                let tw = target_width(&scope, target, *line)?;
                let ew = expr_width(&scope, expr, *line)?;
                Width::Bits(tw).unify(ew, *line, "assignment")?;
            }
            ConcStmt::CondAssign {
                target,
                arms,
                default,
                line,
            } => {
                drive(&mut driven, &scope, target, *line)?;
                let tw = target_width(&scope, target, *line)?;
                for (value, cond) in arms {
                    let vw = expr_width(&scope, value, *line)?;
                    Width::Bits(tw).unify(vw, *line, "conditional value")?;
                    let cw = expr_width(&scope, cond, *line)?;
                    Width::Bits(1).unify(cw, *line, "condition")?;
                }
                let dw = expr_width(&scope, default, *line)?;
                Width::Bits(tw).unify(dw, *line, "default value")?;
            }
            ConcStmt::Process(p) => check_process(&scope, p, &mut driven)?,
        }
    }
    Ok(())
}

fn target_width(scope: &Scope, target: &Target, line: usize) -> Result<usize> {
    let (ty, _) = scope.lookup(target.base(), line)?;
    Ok(match target {
        Target::Sig(_) => ty.width(),
        Target::Index(..) => 1,
    })
}

fn check_process(
    scope: &Scope,
    p: &Process,
    driven: &mut HashMap<(String, u32), usize>,
) -> Result<()> {
    // Synthesizable template: exactly one top-level if with a
    // rising_edge condition and no else.
    let (clk, body) = match p.body.as_slice() {
        [SeqStmt::If {
            cond: Expr::RisingEdge(clk),
            then_body,
            elsifs,
            else_body,
            line,
        }] => {
            if !elsifs.is_empty() || !else_body.is_empty() {
                return Err(VhdlError {
                    line: *line,
                    msg: "clocked process must not have elsif/else at the clock level".into(),
                });
            }
            (clk.clone(), then_body)
        }
        _ => {
            return Err(VhdlError {
                line: p.line,
                msg: "process must be 'if rising_edge(<clk>) then ... end if;'".into(),
            })
        }
    };
    scope.lookup(&clk, p.line)?;
    if !p.sensitivity.contains(&clk) {
        return Err(VhdlError {
            line: p.line,
            msg: format!("clock '{clk}' missing from sensitivity list"),
        });
    }

    // Collect targets (duplicates within a process are fine — last wins —
    // but they must not collide with other concurrent drivers).
    let mut local: HashSet<(String, u32)> = HashSet::new();
    collect_seq_targets(scope, body, &mut local)?;
    for (name, bit) in local {
        if let Some(prev) = driven.insert((name.clone(), bit), p.line) {
            return Err(VhdlError {
                line: p.line,
                msg: format!("'{name}({bit})' already driven at line {prev}"),
            });
        }
    }
    check_seq(scope, body)?;
    Ok(())
}

#[allow(clippy::only_used_in_recursion)] // scope is threaded for future nested scopes
fn collect_seq_targets(
    scope: &Scope,
    body: &[SeqStmt],
    out: &mut HashSet<(String, u32)>,
) -> Result<()> {
    for stmt in body {
        match stmt {
            SeqStmt::Assign { target, line, .. } => {
                let (ty, dir) = scope.lookup(target.base(), *line)?;
                if dir == Some(Dir::In) {
                    return Err(VhdlError {
                        line: *line,
                        msg: format!("cannot assign to input port '{}'", target.base()),
                    });
                }
                match (target, ty) {
                    (Target::Sig(n), Ty::Bit) => {
                        out.insert((n.clone(), 0));
                    }
                    (Target::Sig(n), Ty::Vector { msb, lsb }) => {
                        for b in lsb..=msb {
                            out.insert((n.clone(), b));
                        }
                    }
                    (Target::Index(n, i), Ty::Vector { msb, lsb }) => {
                        if *i < lsb || *i > msb {
                            return Err(VhdlError {
                                line: *line,
                                msg: format!("index {i} out of range"),
                            });
                        }
                        out.insert((n.clone(), *i));
                    }
                    (Target::Index(..), Ty::Bit) => {
                        return Err(VhdlError {
                            line: *line,
                            msg: "cannot index scalar".into(),
                        })
                    }
                }
            }
            SeqStmt::If {
                then_body,
                elsifs,
                else_body,
                ..
            } => {
                collect_seq_targets(scope, then_body, out)?;
                for (_, b) in elsifs {
                    collect_seq_targets(scope, b, out)?;
                }
                collect_seq_targets(scope, else_body, out)?;
            }
        }
    }
    Ok(())
}

fn check_seq(scope: &Scope, body: &[SeqStmt]) -> Result<()> {
    for stmt in body {
        match stmt {
            SeqStmt::Assign { target, expr, line } => {
                if expr.has_rising_edge() {
                    return Err(VhdlError {
                        line: *line,
                        msg: "rising_edge only allowed as a process condition".into(),
                    });
                }
                let tw = target_width(scope, target, *line)?;
                let ew = expr_width(scope, expr, *line)?;
                Width::Bits(tw).unify(ew, *line, "assignment")?;
            }
            SeqStmt::If {
                cond,
                then_body,
                elsifs,
                else_body,
                line,
            } => {
                if cond.has_rising_edge() {
                    return Err(VhdlError {
                        line: *line,
                        msg: "nested rising_edge conditions are not supported".into(),
                    });
                }
                let cw = expr_width(scope, cond, *line)?;
                Width::Bits(1).unify(cw, *line, "if condition")?;
                check_seq(scope, then_body)?;
                for (c, b) in elsifs {
                    let cw = expr_width(scope, c, *line)?;
                    Width::Bits(1).unify(cw, *line, "elsif condition")?;
                    check_seq(scope, b)?;
                }
                check_seq(scope, else_body)?;
            }
        }
    }
    Ok(())
}

/// Compute (and check) the width of an expression.
pub fn expr_width(scope: &Scope, expr: &Expr, line: usize) -> Result<Width> {
    Ok(match expr {
        Expr::Bit(_) => Width::Bits(1),
        Expr::Vec(v) => Width::Bits(v.len()),
        Expr::Int(_) | Expr::Others(_) => Width::Elastic,
        Expr::Ref(name) => {
            let (ty, _) = scope.lookup(name, line)?;
            Width::Bits(ty.width())
        }
        Expr::Index(name, i) => {
            let (ty, _) = scope.lookup(name, line)?;
            match ty {
                Ty::Vector { msb, lsb } if *i >= lsb && *i <= msb => Width::Bits(1),
                Ty::Vector { msb, lsb } => {
                    return Err(VhdlError {
                        line,
                        msg: format!("index {i} out of range {lsb}..{msb} for '{name}'"),
                    })
                }
                Ty::Bit => {
                    return Err(VhdlError {
                        line,
                        msg: format!("cannot index scalar '{name}'"),
                    })
                }
            }
        }
        Expr::Not(e) => expr_width(scope, e, line)?,
        Expr::Bin(op, a, b) => {
            let wa = expr_width(scope, a, line)?;
            let wb = expr_width(scope, b, line)?;
            match op {
                BinOp::Eq | BinOp::Neq => {
                    wa.unify(wb, line, "comparison")?;
                    Width::Bits(1)
                }
                BinOp::Concat => match (wa, wb) {
                    (Width::Bits(x), Width::Bits(y)) => Width::Bits(x + y),
                    _ => {
                        return Err(VhdlError {
                            line,
                            msg: "cannot concatenate integer literals".into(),
                        })
                    }
                },
                BinOp::Add | BinOp::Sub => wa.unify(wb, line, "arithmetic")?,
                _ => wa.unify(wb, line, "logical operation")?,
            }
        }
        Expr::RisingEdge(name) => {
            scope.lookup(name, line)?;
            Width::Bits(1)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn check_src(src: &str) -> Result<()> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn good_design_passes() {
        check_src(
            "entity x is port (a, b : in std_logic; y : out std_logic); end x;
             architecture r of x is begin y <= a and b; end r;",
        )
        .unwrap();
    }

    #[test]
    fn undeclared_signal_rejected() {
        let err = check_src(
            "entity x is port (a : in std_logic; y : out std_logic); end x;
             architecture r of x is begin y <= a and ghost; end r;",
        )
        .unwrap_err();
        assert!(err.msg.contains("ghost"), "{err}");
    }

    #[test]
    fn assigning_input_rejected() {
        let err = check_src(
            "entity x is port (a : in std_logic; y : out std_logic); end x;
             architecture r of x is begin a <= y; end r;",
        )
        .unwrap_err();
        assert!(err.msg.contains("input"), "{err}");
    }

    #[test]
    fn width_mismatch_rejected() {
        let err = check_src(
            "entity x is port (a : in std_logic_vector(3 downto 0); y : out std_logic); end x;
             architecture r of x is begin y <= a; end r;",
        )
        .unwrap_err();
        assert!(err.msg.contains("width"), "{err}");
    }

    #[test]
    fn double_driver_rejected() {
        let err = check_src(
            "entity x is port (a : in std_logic; y : out std_logic); end x;
             architecture r of x is begin y <= a; y <= not a; end r;",
        )
        .unwrap_err();
        assert!(err.msg.contains("already driven"), "{err}");
    }

    #[test]
    fn process_requires_clock_in_sensitivity() {
        let err = check_src(
            "entity x is port (clk, d : in std_logic; q : out std_logic); end x;
             architecture r of x is begin
               process (d) begin
                 if rising_edge(clk) then q <= d; end if;
               end process;
             end r;",
        )
        .unwrap_err();
        assert!(err.msg.contains("sensitivity"), "{err}");
    }

    #[test]
    fn clocked_process_passes() {
        check_src(
            "entity x is port (clk, d : in std_logic; q : out std_logic); end x;
             architecture r of x is begin
               process (clk) begin
                 if rising_edge(clk) then q <= d; end if;
               end process;
             end r;",
        )
        .unwrap();
    }

    #[test]
    fn unclocked_process_rejected() {
        let err = check_src(
            "entity x is port (a : in std_logic; y : out std_logic); end x;
             architecture r of x is begin
               process (a) begin y <= a; end process;
             end r;",
        )
        .unwrap_err();
        assert!(err.msg.contains("rising_edge"), "{err}");
    }

    #[test]
    fn index_out_of_range_rejected() {
        let err = check_src(
            "entity x is port (a : in std_logic_vector(3 downto 0); y : out std_logic); end x;
             architecture r of x is begin y <= a(7); end r;",
        )
        .unwrap_err();
        assert!(err.msg.contains("range"), "{err}");
    }

    #[test]
    fn architecture_of_unknown_entity_rejected() {
        let err = check_src("entity x is end x; architecture r of zz is begin end r;").unwrap_err();
        assert!(err.msg.contains("unknown entity"), "{err}");
    }
}
