//! Elaboration: lower a checked VHDL design to a gate-level netlist.
//!
//! Vectors are bit-blasted (`v(3)` becomes net `v(3)`), concurrent
//! assignments become gate trees, `when/else` chains become 2:1 mux
//! chains, and clocked processes become D flip-flops whose data inputs are
//! the symbolically-executed next-state expressions (if/elsif/else lowers
//! to mux trees; unassigned paths hold the previous value).

use std::collections::HashMap;

use fpga_netlist::ir::{CellKind, NetId, Netlist};

use crate::ast::*;
use crate::sema::Scope;
use crate::{Result, VhdlError};

struct Elab<'d> {
    #[allow(dead_code)] // retained for multi-entity elaboration (component support)
    design: &'d Design,
    netlist: Netlist,
    scope: Scope,
    const0: Option<NetId>,
    const1: Option<NetId>,
    gate_counter: usize,
}

/// Elaborate the top entity of a design.
pub fn elaborate(design: &Design) -> Result<Netlist> {
    let (entity, arch) = design.top().ok_or(VhdlError {
        line: 1,
        msg: "no elaboratable entity".into(),
    })?;
    let scope = Scope::build(entity, arch)?;
    let mut e = Elab {
        design,
        netlist: Netlist::new(&entity.name),
        scope,
        const0: None,
        const1: None,
        gate_counter: 0,
    };

    // Ports first so their nets carry the canonical names.
    for p in &entity.ports {
        let bits = e.signal_bits(&p.name, p.ty);
        for b in bits {
            match p.dir {
                Dir::In => e.netlist.add_input(b),
                Dir::Out => e.netlist.add_output(b),
            }
        }
    }

    for stmt in &arch.stmts {
        match stmt {
            ConcStmt::Assign { target, expr, line } => {
                let tbits = e.target_bits(target, *line)?;
                let value = e.eval_fit(expr, tbits.len(), *line)?;
                e.connect(&tbits, &value, *line)?;
            }
            ConcStmt::CondAssign {
                target,
                arms,
                default,
                line,
            } => {
                // Build the mux chain from the last arm backwards.
                let tbits = e.target_bits(target, *line)?;
                let mut value = e.eval_fit(default, tbits.len(), *line)?;
                for (arm_value, cond) in arms.iter().rev() {
                    let v = e.eval_fit(arm_value, tbits.len(), *line)?;
                    let c = e.eval_bit(cond, *line)?;
                    value = e.mux(c, &value, &v, *line)?;
                }
                e.connect(&tbits, &value, *line)?;
            }
            ConcStmt::Process(p) => e.elaborate_process(p)?,
        }
    }

    let netlist = e.netlist;
    netlist.validate().map_err(|err| VhdlError {
        line: arch.line,
        msg: format!("elaboration bug: {err}"),
    })?;
    Ok(netlist)
}

impl<'d> Elab<'d> {
    /// Net name of one bit of a signal.
    fn bit_name(name: &str, ty: Ty, bit: u32) -> String {
        match ty {
            Ty::Bit => name.to_string(),
            Ty::Vector { .. } => format!("{name}({bit})"),
        }
    }

    /// All bit nets of a signal, LSB first.
    fn signal_bits(&mut self, name: &str, ty: Ty) -> Vec<NetId> {
        match ty {
            Ty::Bit => vec![self.netlist.net(name)],
            Ty::Vector { msb, lsb } => (lsb..=msb)
                .map(|b| {
                    let n = Self::bit_name(name, ty, b);
                    self.netlist.net(&n)
                })
                .collect(),
        }
    }

    fn lookup(&self, name: &str, line: usize) -> Result<Ty> {
        self.scope
            .symbols
            .get(name)
            .map(|(ty, _)| *ty)
            .ok_or_else(|| VhdlError {
                line,
                msg: format!("undeclared '{name}'"),
            })
    }

    fn const_net(&mut self, v: bool) -> NetId {
        if v {
            if let Some(n) = self.const1 {
                return n;
            }
            let n = self.netlist.net("$const1");
            self.netlist
                .add_cell("$const1", CellKind::Const1, vec![], n);
            self.const1 = Some(n);
            n
        } else {
            if let Some(n) = self.const0 {
                return n;
            }
            let n = self.netlist.net("$const0");
            self.netlist
                .add_cell("$const0", CellKind::Const0, vec![], n);
            self.const0 = Some(n);
            n
        }
    }

    fn gate(&mut self, kind: CellKind, inputs: Vec<NetId>) -> NetId {
        let out = self.netlist.fresh_net("$w");
        let name = format!("$g{}", self.gate_counter);
        self.gate_counter += 1;
        self.netlist.add_cell(&name, kind, inputs, out);
        out
    }

    /// Evaluate an expression to its bit nets (LSB first).
    fn eval(&mut self, expr: &Expr, line: usize) -> Result<Vec<NetId>> {
        Ok(match expr {
            Expr::Bit(b) => vec![self.const_net(*b)],
            Expr::Vec(bits) => {
                // Literal is written MSB-first; we store LSB-first.
                bits.iter().rev().map(|&b| self.const_net(b)).collect()
            }
            Expr::Int(v) => {
                // Elastic: width resolved by the context via `fit`.
                let mut bits = Vec::new();
                let mut x = *v;
                loop {
                    bits.push(self.const_net(x & 1 == 1));
                    x >>= 1;
                    if x == 0 {
                        break;
                    }
                }
                bits
            }
            Expr::Ref(name) => {
                let ty = self.lookup(name, line)?;
                self.signal_bits(name, ty)
            }
            Expr::Index(name, i) => {
                let ty = self.lookup(name, line)?;
                let n = Self::bit_name(name, ty, *i);
                vec![self.netlist.net(&n)]
            }
            Expr::Not(e) => {
                let bits = self.eval(e, line)?;
                bits.into_iter()
                    .map(|b| self.gate(CellKind::Not, vec![b]))
                    .collect()
            }
            Expr::Bin(op, a, b) => self.eval_bin(*op, a, b, line)?,
            Expr::Others(_) => {
                return Err(VhdlError {
                    line,
                    msg: "(others => ...) is only allowed as an assignment source".into(),
                })
            }
            Expr::RisingEdge(_) => {
                return Err(VhdlError {
                    line,
                    msg: "rising_edge used outside a process condition".into(),
                })
            }
        })
    }

    /// Pad an elastic (integer-literal) value with zeros to `width`.
    fn fit(&mut self, mut bits: Vec<NetId>, width: usize, line: usize) -> Result<Vec<NetId>> {
        use std::cmp::Ordering;
        match bits.len().cmp(&width) {
            Ordering::Equal => Ok(bits),
            Ordering::Less => {
                let zero = self.const_net(false);
                while bits.len() < width {
                    bits.push(zero);
                }
                Ok(bits)
            }
            Ordering::Greater => Err(VhdlError {
                line,
                msg: format!("value of {} bits does not fit in {width}", bits.len()),
            }),
        }
    }

    /// Evaluate an expression whose width is dictated by the target:
    /// aggregates fill, integer literals zero-extend, everything else must
    /// match exactly.
    fn eval_fit(&mut self, expr: &Expr, width: usize, line: usize) -> Result<Vec<NetId>> {
        match expr {
            Expr::Others(b) => {
                let bit = self.const_net(*b);
                Ok(vec![bit; width])
            }
            Expr::Int(_) => {
                let bits = self.eval(expr, line)?;
                self.fit(bits, width, line)
            }
            _ => {
                let bits = self.eval(expr, line)?;
                if bits.len() != width {
                    return Err(VhdlError {
                        line,
                        msg: format!("expression is {} bits, target needs {width}", bits.len()),
                    });
                }
                Ok(bits)
            }
        }
    }

    fn eval_bin(&mut self, op: BinOp, a: &Expr, b: &Expr, line: usize) -> Result<Vec<NetId>> {
        let va = self.eval(a, line)?;
        let vb = self.eval(b, line)?;
        let width = va.len().max(vb.len());
        let elastic = matches!(a, Expr::Int(_)) || matches!(b, Expr::Int(_));
        let (va, vb) = if elastic {
            (self.fit(va, width, line)?, self.fit(vb, width, line)?)
        } else {
            (va, vb)
        };
        Ok(match op {
            BinOp::And | BinOp::Or | BinOp::Nand | BinOp::Nor | BinOp::Xor | BinOp::Xnor => {
                let kind = |op: BinOp| match op {
                    BinOp::And => CellKind::And,
                    BinOp::Or => CellKind::Or,
                    BinOp::Nand => CellKind::Nand,
                    BinOp::Nor => CellKind::Nor,
                    BinOp::Xor => CellKind::Xor,
                    BinOp::Xnor => CellKind::Xnor,
                    _ => unreachable!(),
                };
                va.iter()
                    .zip(vb.iter())
                    .map(|(&x, &y)| self.gate(kind(op), vec![x, y]))
                    .collect()
            }
            BinOp::Add => {
                // Ripple-carry adder, carry-in 0; result truncated to width.
                let mut carry = self.const_net(false);
                let mut sum = Vec::with_capacity(width);
                for (&x, &y) in va.iter().zip(vb.iter()) {
                    let xy = self.gate(CellKind::Xor, vec![x, y]);
                    let s = self.gate(CellKind::Xor, vec![xy, carry]);
                    let g = self.gate(CellKind::And, vec![x, y]);
                    let p = self.gate(CellKind::And, vec![xy, carry]);
                    carry = self.gate(CellKind::Or, vec![g, p]);
                    sum.push(s);
                }
                sum
            }
            BinOp::Sub => {
                // Ripple-borrow subtractor: diff = a ^ b ^ bin,
                // borrow' = (!a & (b | bin)) | (b & bin); truncated.
                let mut borrow = self.const_net(false);
                let mut diff = Vec::with_capacity(width);
                for (&x, &y) in va.iter().zip(vb.iter()) {
                    let xy = self.gate(CellKind::Xor, vec![x, y]);
                    let d = self.gate(CellKind::Xor, vec![xy, borrow]);
                    let nx = self.gate(CellKind::Not, vec![x]);
                    let ob = self.gate(CellKind::Or, vec![y, borrow]);
                    let t1 = self.gate(CellKind::And, vec![nx, ob]);
                    let t2 = self.gate(CellKind::And, vec![y, borrow]);
                    borrow = self.gate(CellKind::Or, vec![t1, t2]);
                    diff.push(d);
                }
                diff
            }
            BinOp::Eq | BinOp::Neq => {
                let mut eq_bits: Vec<NetId> = va
                    .iter()
                    .zip(vb.iter())
                    .map(|(&x, &y)| self.gate(CellKind::Xnor, vec![x, y]))
                    .collect();
                let all_eq = if eq_bits.len() == 1 {
                    eq_bits.pop().unwrap()
                } else {
                    self.gate(CellKind::And, eq_bits)
                };
                if op == BinOp::Neq {
                    vec![self.gate(CellKind::Not, vec![all_eq])]
                } else {
                    vec![all_eq]
                }
            }
            BinOp::Concat => {
                // a & b: `a` supplies the more significant bits.
                let mut bits = vb;
                bits.extend(va);
                bits
            }
        })
    }

    fn eval_bit(&mut self, expr: &Expr, line: usize) -> Result<NetId> {
        let bits = self.eval(expr, line)?;
        if bits.len() != 1 {
            return Err(VhdlError {
                line,
                msg: format!("expected a 1-bit value, got {} bits", bits.len()),
            });
        }
        Ok(bits[0])
    }

    /// Per-bit 2:1 mux: `sel ? when_true : when_false`.
    fn mux(
        &mut self,
        sel: NetId,
        when_false: &[NetId],
        when_true: &[NetId],
        line: usize,
    ) -> Result<Vec<NetId>> {
        if when_false.len() != when_true.len() {
            return Err(VhdlError {
                line,
                msg: format!(
                    "mux arm widths differ ({} vs {})",
                    when_false.len(),
                    when_true.len()
                ),
            });
        }
        Ok(when_false
            .iter()
            .zip(when_true.iter())
            .map(|(&f, &t)| self.gate(CellKind::Mux2, vec![sel, f, t]))
            .collect())
    }

    /// Bit nets of an assignment target.
    fn target_bits(&mut self, target: &Target, line: usize) -> Result<Vec<NetId>> {
        let ty = self.lookup(target.base(), line)?;
        Ok(match target {
            Target::Sig(name) => self.signal_bits(name, ty),
            Target::Index(name, i) => {
                let n = Self::bit_name(name, ty, *i);
                vec![self.netlist.net(&n)]
            }
        })
    }

    /// Drive target bits from value bits with buffers (keeping the target
    /// net names stable for IO and FF outputs).
    fn connect(&mut self, targets: &[NetId], values: &[NetId], line: usize) -> Result<()> {
        if targets.len() != values.len() {
            return Err(VhdlError {
                line,
                msg: format!(
                    "assignment width mismatch ({} vs {})",
                    targets.len(),
                    values.len()
                ),
            });
        }
        for (&t, &v) in targets.iter().zip(values.iter()) {
            let name = format!("$buf{}", self.gate_counter);
            self.gate_counter += 1;
            self.netlist.add_cell(&name, CellKind::Buf, vec![v], t);
        }
        Ok(())
    }

    fn elaborate_process(&mut self, p: &Process) -> Result<()> {
        // sema guarantees this shape.
        let (clk_name, body) = match p.body.as_slice() {
            [SeqStmt::If {
                cond: Expr::RisingEdge(c),
                then_body,
                ..
            }] => (c.clone(), then_body),
            _ => {
                return Err(VhdlError {
                    line: p.line,
                    msg: "unsupported process shape".into(),
                })
            }
        };
        let clk = self.netlist.net(&clk_name);
        self.netlist.add_clock(clk);

        // Symbolic execution: environment maps target bit net -> next value.
        let mut env: HashMap<NetId, NetId> = HashMap::new();
        self.exec_body(body, &mut env)?;

        // One DFF per assigned bit; D = computed next value, Q = the bit.
        let mut assigned: Vec<(NetId, NetId)> = env.into_iter().collect();
        assigned.sort_by_key(|(q, _)| q.0);
        for (q, d) in assigned {
            let name = format!("$ff_{}", self.netlist.net_name(q).replace(['(', ')'], "_"));
            self.netlist.add_cell(
                &name,
                CellKind::Dff {
                    clock: clk,
                    init: false,
                },
                vec![d],
                q,
            );
        }
        Ok(())
    }

    /// Execute a sequential body, updating the next-value environment.
    fn exec_body(&mut self, body: &[SeqStmt], env: &mut HashMap<NetId, NetId>) -> Result<()> {
        for stmt in body {
            match stmt {
                SeqStmt::Assign { target, expr, line } => {
                    // VHDL signal semantics: reads inside a process see the
                    // *old* value, so expressions are evaluated against the
                    // base nets — no env substitution needed.
                    let tbits = self.target_bits(target, *line)?;
                    let value = self.eval_fit(expr, tbits.len(), *line)?;
                    for (&t, &v) in tbits.iter().zip(value.iter()) {
                        env.insert(t, v);
                    }
                }
                SeqStmt::If {
                    cond,
                    then_body,
                    elsifs,
                    else_body,
                    line,
                } => {
                    let branches: Vec<(Option<&Expr>, &[SeqStmt])> =
                        std::iter::once((Some(cond), then_body.as_slice()))
                            .chain(elsifs.iter().map(|(c, b)| (Some(c), b.as_slice())))
                            .chain(std::iter::once((None, else_body.as_slice())))
                            .collect();
                    // Fold right: start from the implicit "hold" env and
                    // wrap each condition around it.
                    let mut result: HashMap<NetId, NetId> = env.clone();
                    for (c, b) in branches.into_iter().rev() {
                        let mut branch_env = env.clone();
                        self.exec_body(b, &mut branch_env)?;
                        match c {
                            None => result = branch_env,
                            Some(cexpr) => {
                                let sel = self.eval_bit(cexpr, *line)?;
                                // Bits written in either branch get a mux.
                                // Sorted + deduped: HashMap order would make
                                // mux cell/net numbering (and so the netlist's
                                // canonical text, which stage cache keys hash)
                                // vary run to run, and a bit in both envs
                                // would get a second, orphaned mux.
                                let mut merged = HashMap::new();
                                let mut keys: Vec<NetId> =
                                    branch_env.keys().chain(result.keys()).copied().collect();
                                keys.sort_unstable_by_key(|n| n.0);
                                keys.dedup();
                                for q in keys {
                                    let tv = branch_env.get(&q).copied().unwrap_or(q);
                                    let fv = result.get(&q).copied().unwrap_or(q);
                                    if tv == fv {
                                        merged.insert(q, tv);
                                    } else {
                                        let m = self.mux(sel, &[fv], &[tv], *line)?;
                                        merged.insert(q, m[0]);
                                    }
                                }
                                result = merged;
                            }
                        }
                    }
                    *env = result;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use fpga_netlist::sim::Simulator;

    fn elab(src: &str) -> Netlist {
        let d = parse(src).unwrap();
        crate::check(&d).unwrap();
        elaborate(&d).unwrap()
    }

    #[test]
    fn combinational_gates() {
        let n = elab(
            "entity x is port (a, b : in std_logic; y : out std_logic); end x;
             architecture r of x is begin y <= a nand (not b); end r;",
        );
        let mut sim = Simulator::new(&n).unwrap();
        for (a, b, want) in [
            (false, false, true),
            (true, true, true),
            (true, false, false),
        ] {
            sim.set_input_by_name("a", a).unwrap();
            sim.set_input_by_name("b", b).unwrap();
            sim.propagate();
            let y = n.find_net("y").unwrap();
            assert_eq!(sim.value(y), want, "a={a} b={b}");
        }
    }

    #[test]
    fn vector_ops_bit_blast() {
        let n = elab(
            "entity x is port (a, b : in std_logic_vector(2 downto 0);
                               y : out std_logic_vector(2 downto 0)); end x;
             architecture r of x is begin y <= a xor b; end r;",
        );
        assert_eq!(n.inputs.len(), 6);
        assert_eq!(n.outputs.len(), 3);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input_by_name("a(0)", true).unwrap();
        sim.set_input_by_name("b(0)", true).unwrap();
        sim.set_input_by_name("a(2)", true).unwrap();
        sim.propagate();
        assert!(!sim.value(n.find_net("y(0)").unwrap()));
        assert!(sim.value(n.find_net("y(2)").unwrap()));
    }

    #[test]
    fn when_else_is_a_mux() {
        let n = elab(
            "entity x is port (s, a, b : in std_logic; y : out std_logic); end x;
             architecture r of x is begin y <= a when s = '1' else b; end r;",
        );
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input_by_name("a", true).unwrap();
        sim.set_input_by_name("b", false).unwrap();
        sim.set_input_by_name("s", true).unwrap();
        sim.propagate();
        assert!(sim.value(n.find_net("y").unwrap()));
        sim.set_input_by_name("s", false).unwrap();
        sim.propagate();
        assert!(!sim.value(n.find_net("y").unwrap()));
    }

    #[test]
    fn dff_process() {
        let n = elab(
            "entity x is port (clk, d : in std_logic; q : out std_logic); end x;
             architecture r of x is begin
               process (clk) begin
                 if rising_edge(clk) then q <= d; end if;
               end process;
             end r;",
        );
        assert_eq!(n.clocks.len(), 1);
        let (_, ffs) = n.cell_counts();
        assert_eq!(ffs, 1);
        let mut sim = Simulator::new(&n).unwrap();
        let clk = n.clocks[0];
        sim.set_input_by_name("d", true).unwrap();
        sim.tick(clk);
        assert!(sim.value(n.find_net("q").unwrap()));
        sim.set_input_by_name("d", false).unwrap();
        sim.tick(clk);
        assert!(!sim.value(n.find_net("q").unwrap()));
    }

    #[test]
    fn counter_counts() {
        let n = elab(
            "entity c is port (clk, rst : in std_logic;
                               q : out std_logic_vector(3 downto 0)); end c;
             architecture r of c is
               signal cnt : std_logic_vector(3 downto 0);
             begin
               process (clk) begin
                 if rising_edge(clk) then
                   if rst = '1' then
                     cnt <= \"0000\";
                   else
                     cnt <= cnt + 1;
                   end if;
                 end if;
               end process;
               q <= cnt;
             end r;",
        );
        let mut sim = Simulator::new(&n).unwrap();
        let clk = n.clocks[0];
        let value = |sim: &Simulator, n: &Netlist| -> u32 {
            (0..4)
                .map(|i| {
                    let net = n.find_net(&format!("q({i})")).unwrap();
                    (sim.value(net) as u32) << i
                })
                .sum()
        };
        sim.set_input_by_name("rst", true).unwrap();
        sim.tick(clk);
        assert_eq!(value(&sim, &n), 0);
        sim.set_input_by_name("rst", false).unwrap();
        for expect in 1..=10u32 {
            sim.tick(clk);
            assert_eq!(value(&sim, &n), expect % 16, "after {expect} ticks");
        }
    }

    #[test]
    fn enable_holds_value() {
        let n = elab(
            "entity x is port (clk, en, d : in std_logic; q : out std_logic); end x;
             architecture r of x is begin
               process (clk) begin
                 if rising_edge(clk) then
                   if en = '1' then q <= d; end if;
                 end if;
               end process;
             end r;",
        );
        let mut sim = Simulator::new(&n).unwrap();
        let clk = n.clocks[0];
        let q = n.find_net("q").unwrap();
        sim.set_input_by_name("en", true).unwrap();
        sim.set_input_by_name("d", true).unwrap();
        sim.tick(clk);
        assert!(sim.value(q));
        // Disable: q must hold even though d changes.
        sim.set_input_by_name("en", false).unwrap();
        sim.set_input_by_name("d", false).unwrap();
        sim.tick(clk);
        assert!(sim.value(q), "disabled FF must hold");
    }

    #[test]
    fn others_aggregate_fills_target() {
        let n = elab(
            "entity x is port (clk, rst : in std_logic;
                               q : out std_logic_vector(4 downto 0)); end x;
             architecture r of x is
               signal s : std_logic_vector(4 downto 0);
             begin
               process (clk) begin
                 if rising_edge(clk) then
                   if rst = '1' then s <= (others => '1'); else s <= (others => '0'); end if;
                 end if;
               end process;
               q <= s;
             end r;",
        );
        let mut sim = Simulator::new(&n).unwrap();
        let clk = n.clocks[0];
        sim.set_input_by_name("rst", true).unwrap();
        sim.tick(clk);
        for i in 0..5 {
            assert!(
                sim.value(n.find_net(&format!("q({i})")).unwrap()),
                "bit {i} set"
            );
        }
        sim.set_input_by_name("rst", false).unwrap();
        sim.tick(clk);
        for i in 0..5 {
            assert!(
                !sim.value(n.find_net(&format!("q({i})")).unwrap()),
                "bit {i} clear"
            );
        }
    }

    #[test]
    fn down_counter_subtracts() {
        let n = elab(
            "entity d is port (clk : in std_logic;
                               q : out std_logic_vector(3 downto 0)); end d;
             architecture r of d is
               signal cnt : std_logic_vector(3 downto 0);
             begin
               process (clk) begin
                 if rising_edge(clk) then cnt <= cnt - 1; end if;
               end process;
               q <= cnt;
             end r;",
        );
        let mut sim = Simulator::new(&n).unwrap();
        let clk = n.clocks[0];
        let value = |sim: &Simulator| -> u32 {
            (0..4)
                .map(|i| (sim.value(n.find_net(&format!("q({i})")).unwrap()) as u32) << i)
                .sum()
        };
        assert_eq!(value(&sim), 0);
        sim.tick(clk);
        assert_eq!(value(&sim), 15, "0 - 1 wraps to 15");
        sim.tick(clk);
        assert_eq!(value(&sim), 14);
        sim.tick(clk);
        assert_eq!(value(&sim), 13);
    }

    #[test]
    fn vector_subtraction() {
        let n = elab(
            "entity s is port (a, b : in std_logic_vector(3 downto 0);
                               y : out std_logic_vector(3 downto 0)); end s;
             architecture r of s is begin y <= a - b; end r;",
        );
        let mut sim = Simulator::new(&n).unwrap();
        for (a, b) in [(9u32, 4u32), (3, 7), (15, 15)] {
            for i in 0..4 {
                sim.set_input_by_name(&format!("a({i})"), a >> i & 1 == 1)
                    .unwrap();
                sim.set_input_by_name(&format!("b({i})"), b >> i & 1 == 1)
                    .unwrap();
            }
            sim.propagate();
            let y: u32 = (0..4)
                .map(|i| (sim.value(n.find_net(&format!("y({i})")).unwrap()) as u32) << i)
                .sum();
            assert_eq!(y, a.wrapping_sub(b) & 0xF, "{a} - {b}");
        }
    }

    #[test]
    fn case_statement_fsm() {
        // 2-bit sequence controller written with a case statement.
        let n = elab(
            "entity f is port (clk, go : in std_logic;
                               st : out std_logic_vector(1 downto 0)); end f;
             architecture r of f is
               signal s : std_logic_vector(1 downto 0);
             begin
               process (clk) begin
                 if rising_edge(clk) then
                   case s is
                     when \"00\" =>
                       if go = '1' then s <= \"01\"; end if;
                     when \"01\" => s <= \"10\";
                     when \"10\" => s <= \"11\";
                     when others => s <= \"00\";
                   end case;
                 end if;
               end process;
               st <= s;
             end r;",
        );
        let mut sim = Simulator::new(&n).unwrap();
        let clk = n.clocks[0];
        let state = |sim: &Simulator| -> u32 {
            (0..2)
                .map(|i| (sim.value(n.find_net(&format!("st({i})")).unwrap()) as u32) << i)
                .sum()
        };
        // Hold in state 0 until 'go'.
        sim.set_input_by_name("go", false).unwrap();
        sim.tick(clk);
        assert_eq!(state(&sim), 0);
        sim.set_input_by_name("go", true).unwrap();
        sim.tick(clk);
        assert_eq!(state(&sim), 1);
        sim.tick(clk);
        assert_eq!(state(&sim), 2);
        sim.tick(clk);
        assert_eq!(state(&sim), 3);
        sim.tick(clk);
        assert_eq!(state(&sim), 0, "others arm wraps to 00");
    }

    #[test]
    fn concat_orders_bits() {
        let n = elab(
            "entity x is port (a, b : in std_logic;
                               y : out std_logic_vector(1 downto 0)); end x;
             architecture r of x is begin y <= a & b; end r;",
        );
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input_by_name("a", true).unwrap();
        sim.set_input_by_name("b", false).unwrap();
        sim.propagate();
        // a is the MSB: y = "10".
        assert!(sim.value(n.find_net("y(1)").unwrap()));
        assert!(!sim.value(n.find_net("y(0)").unwrap()));
    }
}
