//! VHDL tokenizer. Identifiers are case-folded to lower case (VHDL is
//! case-insensitive); `--` comments run to end of line.

use crate::{Result, VhdlError};

/// A lexical token with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    pub line: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (lower-cased).
    Ident(String),
    /// Integer literal.
    Int(u64),
    /// Bit literal `'0'` / `'1'`.
    BitLit(bool),
    /// String/bit-vector literal `"0101"`.
    VecLit(Vec<bool>),
    LParen,
    RParen,
    Semi,
    Colon,
    Comma,
    /// `<=` (assignment or comparison — the parser disambiguates).
    LessEq,
    /// `=>`
    Arrow,
    Eq,
    /// `/=`
    NotEq,
    Plus,
    Minus,
    Amp,
    Dot,
    /// `'` used in attributes (not bit literals).
    Tick,
}

impl Tok {
    /// Is this the given keyword?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == kw)
    }
}

/// Tokenize VHDL source.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = source.char_indices().peekable();
    let mut line = 1usize;
    let bytes = source.as_bytes();

    while let Some((i, c)) = chars.next() {
        match c {
            '\n' => line += 1,
            c if c.is_whitespace() => {}
            '-' => {
                if matches!(chars.peek(), Some((_, '-'))) {
                    // Comment to end of line.
                    for (_, cc) in chars.by_ref() {
                        if cc == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    out.push(Token {
                        kind: Tok::Minus,
                        line,
                    });
                }
            }
            '(' => out.push(Token {
                kind: Tok::LParen,
                line,
            }),
            ')' => out.push(Token {
                kind: Tok::RParen,
                line,
            }),
            ';' => out.push(Token {
                kind: Tok::Semi,
                line,
            }),
            ':' => out.push(Token {
                kind: Tok::Colon,
                line,
            }),
            ',' => out.push(Token {
                kind: Tok::Comma,
                line,
            }),
            '+' => out.push(Token {
                kind: Tok::Plus,
                line,
            }),
            '&' => out.push(Token {
                kind: Tok::Amp,
                line,
            }),
            '.' => out.push(Token {
                kind: Tok::Dot,
                line,
            }),
            '<' => {
                if matches!(chars.peek(), Some((_, '='))) {
                    chars.next();
                    out.push(Token {
                        kind: Tok::LessEq,
                        line,
                    });
                } else {
                    return Err(VhdlError {
                        line,
                        msg: "expected '<='".into(),
                    });
                }
            }
            '=' => {
                if matches!(chars.peek(), Some((_, '>'))) {
                    chars.next();
                    out.push(Token {
                        kind: Tok::Arrow,
                        line,
                    });
                } else {
                    out.push(Token {
                        kind: Tok::Eq,
                        line,
                    });
                }
            }
            '/' => {
                if matches!(chars.peek(), Some((_, '='))) {
                    chars.next();
                    out.push(Token {
                        kind: Tok::NotEq,
                        line,
                    });
                } else {
                    return Err(VhdlError {
                        line,
                        msg: "unexpected '/'".into(),
                    });
                }
            }
            '\'' => {
                // '0' or '1' bit literal if the pattern is 'x' followed by
                // a closing quote; otherwise an attribute tick.
                let lit = if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    match bytes[i + 1] {
                        b'0' => Some(false),
                        b'1' => Some(true),
                        _ => None,
                    }
                } else {
                    None
                };
                match lit {
                    Some(v) => {
                        chars.next();
                        chars.next();
                        out.push(Token {
                            kind: Tok::BitLit(v),
                            line,
                        });
                    }
                    None => out.push(Token {
                        kind: Tok::Tick,
                        line,
                    }),
                }
            }
            '"' => {
                let mut bits = Vec::new();
                let mut closed = false;
                for (_, cc) in chars.by_ref() {
                    match cc {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '0' => bits.push(false),
                        '1' => bits.push(true),
                        '\n' => {
                            return Err(VhdlError {
                                line,
                                msg: "unterminated string literal".into(),
                            })
                        }
                        other => {
                            return Err(VhdlError {
                                line,
                                msg: format!("unsupported bit value '{other}' in literal"),
                            })
                        }
                    }
                }
                if !closed {
                    return Err(VhdlError {
                        line,
                        msg: "unterminated string literal".into(),
                    });
                }
                out.push(Token {
                    kind: Tok::VecLit(bits),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut val = c.to_digit(10).unwrap() as u64;
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_ascii_digit() {
                        val = val * 10 + d.to_digit(10).unwrap() as u64;
                        chars.next();
                    } else if d == '_' {
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: Tok::Int(val),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                ident.push(c.to_ascii_lowercase());
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        ident.push(d.to_ascii_lowercase());
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: Tok::Ident(ident),
                    line,
                });
            }
            other => {
                return Err(VhdlError {
                    line,
                    msg: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn identifiers_fold_case() {
        assert_eq!(
            kinds("Entity FOO IS"),
            vec![
                Tok::Ident("entity".into()),
                Tok::Ident("foo".into()),
                Tok::Ident("is".into())
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a -- the rest\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn bit_and_vector_literals() {
        assert_eq!(
            kinds("'1' '0' \"10\""),
            vec![
                Tok::BitLit(true),
                Tok::BitLit(false),
                Tok::VecLit(vec![true, false])
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("y <= a = b /= c + 1;"),
            vec![
                Tok::Ident("y".into()),
                Tok::LessEq,
                Tok::Ident("a".into()),
                Tok::Eq,
                Tok::Ident("b".into()),
                Tok::NotEq,
                Tok::Ident("c".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::Semi
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn bad_characters_rejected() {
        assert!(lex("a ? b").is_err());
        assert!(lex("\"01x\"").is_err());
        assert!(lex("\"01").is_err());
    }

    #[test]
    fn numbers_with_underscores() {
        assert_eq!(kinds("1_000"), vec![Tok::Int(1000)]);
    }
}
