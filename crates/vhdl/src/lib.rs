//! # fpga-vhdl
//!
//! VHDL-93 front end of the application-mapping toolset: the paper's
//! "VHDL Parser" tool (syntax and semantic checking against a VHDL-93
//! subset) plus the elaboration step DIVINER builds on.
//!
//! The supported subset is the synthesizable RTL the flow targets:
//!
//! * `entity` with `port` lists of `std_logic` and
//!   `std_logic_vector(M downto L)` signals, directions `in`/`out`;
//! * `architecture` with `signal` declarations;
//! * concurrent signal assignments with the logical operators
//!   (`and or nand nor xor xnor not`), parentheses, bit/vector literals,
//!   indexing, `+` (ripple-carry addition), equality tests, and
//!   `when .. else` selection;
//! * clocked `process` blocks (`rising_edge(clk)`) with `if`/`elsif`/
//!   `else` and sequential assignments, which elaborate to D flip-flops
//!   with multiplexed data paths.
//!
//! ```
//! let src = "
//! entity inv is
//!   port ( a : in std_logic; y : out std_logic );
//! end inv;
//! architecture rtl of inv is
//! begin
//!   y <= not a;
//! end rtl;";
//! let design = fpga_vhdl::parse(src).expect("parses");
//! fpga_vhdl::check(&design).expect("semantically valid");
//! let netlist = fpga_vhdl::elaborate(&design).expect("elaborates");
//! // One NOT gate plus the buffer driving the output port net.
//! assert_eq!(netlist.cells.len(), 2);
//! ```

pub mod ast;
pub mod elab;
pub mod lexer;
pub mod parser;
pub mod sema;

pub use ast::Design;

/// Errors from the VHDL front end, with 1-based source line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VhdlError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for VhdlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for VhdlError {}

pub type Result<T> = std::result::Result<T, VhdlError>;

/// Parse a VHDL source file into a [`Design`] (syntax check).
pub fn parse(source: &str) -> Result<Design> {
    let tokens = lexer::lex(source)?;
    parser::parse_design(&tokens)
}

/// Semantic check (the second half of the "VHDL Parser" tool).
pub fn check(design: &Design) -> Result<()> {
    sema::check(design)
}

/// Elaborate the (checked) design into a gate-level netlist.
pub fn elaborate(design: &Design) -> Result<fpga_netlist::Netlist> {
    sema::check(design)?;
    elab::elaborate(design)
}
