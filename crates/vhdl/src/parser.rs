//! Recursive-descent parser for the VHDL subset.

use crate::ast::*;
use crate::lexer::{Tok, Token};
use crate::{Result, VhdlError};

struct Cursor<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(VhdlError {
            line: self.line(),
            msg: msg.into(),
        })
    }

    fn next(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos).map(|t| &t.kind);
        self.pos += 1;
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected '{kw}', found {:?}", self.peek()))
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn int(&mut self) -> Result<u64> {
        match self.peek() {
            Some(Tok::Int(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            other => self.err(format!("expected integer, found {other:?}")),
        }
    }
}

/// Parse a full design file.
pub fn parse_design(tokens: &[Token]) -> Result<Design> {
    let mut cur = Cursor {
        toks: tokens,
        pos: 0,
    };
    let mut design = Design::default();
    while let Some(tok) = cur.peek() {
        match tok {
            t if t.is_kw("library") => {
                // library ieee, work;
                cur.next();
                loop {
                    cur.ident()?;
                    if !cur.eat(&Tok::Comma) {
                        break;
                    }
                }
                cur.expect(&Tok::Semi, "';'")?;
            }
            t if t.is_kw("use") => {
                cur.next();
                cur.ident()?;
                while cur.eat(&Tok::Dot) {
                    cur.ident()?;
                }
                cur.expect(&Tok::Semi, "';'")?;
            }
            t if t.is_kw("entity") => {
                let e = parse_entity(&mut cur)?;
                design.entities.push(e);
            }
            t if t.is_kw("architecture") => {
                let a = parse_architecture(&mut cur)?;
                design.architectures.push(a);
            }
            other => return cur.err(format!("expected design unit, found {other:?}")),
        }
    }
    Ok(design)
}

fn parse_type(cur: &mut Cursor) -> Result<Ty> {
    let name = cur.ident()?;
    match name.as_str() {
        "std_logic" | "std_ulogic" | "bit" => Ok(Ty::Bit),
        "std_logic_vector" | "std_ulogic_vector" | "bit_vector" | "unsigned" | "signed" => {
            cur.expect(&Tok::LParen, "'('")?;
            let msb = cur.int()? as u32;
            cur.expect_kw("downto")?;
            let lsb = cur.int()? as u32;
            cur.expect(&Tok::RParen, "')'")?;
            if lsb > msb {
                return cur.err("ascending ranges ('to') are not supported");
            }
            Ok(Ty::Vector { msb, lsb })
        }
        other => cur.err(format!("unsupported type '{other}'")),
    }
}

fn parse_entity(cur: &mut Cursor) -> Result<Entity> {
    let line = cur.line();
    cur.expect_kw("entity")?;
    let name = cur.ident()?;
    cur.expect_kw("is")?;
    let mut ports = Vec::new();
    if cur.eat_kw("port") {
        cur.expect(&Tok::LParen, "'('")?;
        loop {
            let pline = cur.line();
            let mut names = vec![cur.ident()?];
            while cur.eat(&Tok::Comma) {
                names.push(cur.ident()?);
            }
            cur.expect(&Tok::Colon, "':'")?;
            let dir = if cur.eat_kw("in") {
                Dir::In
            } else if cur.eat_kw("out") {
                Dir::Out
            } else {
                return cur.err("expected 'in' or 'out'");
            };
            let ty = parse_type(cur)?;
            for n in names {
                ports.push(Port {
                    name: n,
                    dir,
                    ty,
                    line: pline,
                });
            }
            if !cur.eat(&Tok::Semi) {
                break;
            }
            // A ');' after the last port: peek for ')'.
            if cur.peek() == Some(&Tok::RParen) {
                break;
            }
        }
        cur.expect(&Tok::RParen, "')' after port list")?;
        cur.expect(&Tok::Semi, "';' after port clause")?;
    }
    cur.expect_kw("end")?;
    cur.eat_kw("entity");
    // Optional repeated name.
    if matches!(cur.peek(), Some(Tok::Ident(_))) {
        cur.ident()?;
    }
    cur.expect(&Tok::Semi, "';' after entity")?;
    Ok(Entity { name, ports, line })
}

fn parse_architecture(cur: &mut Cursor) -> Result<Architecture> {
    let line = cur.line();
    cur.expect_kw("architecture")?;
    let name = cur.ident()?;
    cur.expect_kw("of")?;
    let entity = cur.ident()?;
    cur.expect_kw("is")?;
    let mut signals = Vec::new();
    while cur.eat_kw("signal") {
        let sline = cur.line();
        let mut names = vec![cur.ident()?];
        while cur.eat(&Tok::Comma) {
            names.push(cur.ident()?);
        }
        cur.expect(&Tok::Colon, "':'")?;
        let ty = parse_type(cur)?;
        // Optional default value is ignored for synthesis.
        if cur.eat(&Tok::Colon) {
            return cur.err("unexpected ':'");
        }
        cur.expect(&Tok::Semi, "';' after signal declaration")?;
        for n in names {
            signals.push(SignalDecl {
                name: n,
                ty,
                line: sline,
            });
        }
    }
    cur.expect_kw("begin")?;
    let mut stmts = Vec::new();
    while !cur.peek().is_some_and(|t| t.is_kw("end")) {
        if cur.peek().is_none() {
            return cur.err("unterminated architecture body");
        }
        stmts.push(parse_conc_stmt(cur)?);
    }
    cur.expect_kw("end")?;
    cur.eat_kw("architecture");
    if matches!(cur.peek(), Some(Tok::Ident(_))) {
        cur.ident()?;
    }
    cur.expect(&Tok::Semi, "';' after architecture")?;
    Ok(Architecture {
        name,
        entity,
        signals,
        stmts,
        line,
    })
}

fn parse_conc_stmt(cur: &mut Cursor) -> Result<ConcStmt> {
    // Optional label before 'process'.
    let save = cur.pos;
    if matches!(cur.peek(), Some(Tok::Ident(_))) {
        let _label = cur.ident()?;
        if cur.eat(&Tok::Colon) {
            if cur.peek().is_some_and(|t| t.is_kw("process")) {
                return Ok(ConcStmt::Process(parse_process(cur)?));
            }
            return cur.err("only process statements may be labelled");
        }
        cur.pos = save;
    }
    if cur.peek().is_some_and(|t| t.is_kw("process")) {
        return Ok(ConcStmt::Process(parse_process(cur)?));
    }
    // Signal assignment.
    let line = cur.line();
    let target = parse_target(cur)?;
    cur.expect(&Tok::LessEq, "'<='")?;
    let first = parse_expr(cur)?;
    if cur.eat_kw("when") {
        // v1 when c1 else v2 [when c2 else v3 ...];
        let mut arms = Vec::new();
        let mut value = first;
        loop {
            let cond = parse_expr(cur)?;
            cur.expect_kw("else")?;
            arms.push((value, cond));
            let next = parse_expr(cur)?;
            if cur.eat_kw("when") {
                value = next;
            } else {
                cur.expect(&Tok::Semi, "';' after conditional assignment")?;
                return Ok(ConcStmt::CondAssign {
                    target,
                    arms,
                    default: next,
                    line,
                });
            }
        }
    }
    cur.expect(&Tok::Semi, "';' after assignment")?;
    Ok(ConcStmt::Assign {
        target,
        expr: first,
        line,
    })
}

fn parse_target(cur: &mut Cursor) -> Result<Target> {
    let name = cur.ident()?;
    if cur.eat(&Tok::LParen) {
        let idx = cur.int()? as u32;
        cur.expect(&Tok::RParen, "')'")?;
        Ok(Target::Index(name, idx))
    } else {
        Ok(Target::Sig(name))
    }
}

fn parse_process(cur: &mut Cursor) -> Result<Process> {
    let line = cur.line();
    cur.expect_kw("process")?;
    let mut sensitivity = Vec::new();
    if cur.eat(&Tok::LParen) {
        loop {
            sensitivity.push(cur.ident()?);
            if !cur.eat(&Tok::Comma) {
                break;
            }
        }
        cur.expect(&Tok::RParen, "')'")?;
    }
    cur.eat_kw("is");
    cur.expect_kw("begin")?;
    let body = parse_seq_body(cur, &["end"])?;
    cur.expect_kw("end")?;
    cur.expect_kw("process")?;
    if matches!(cur.peek(), Some(Tok::Ident(_))) {
        cur.ident()?;
    }
    cur.expect(&Tok::Semi, "';' after process")?;
    Ok(Process {
        sensitivity,
        body,
        line,
    })
}

/// Parse sequential statements until one of the given keywords is next.
fn parse_seq_body(cur: &mut Cursor, stops: &[&str]) -> Result<Vec<SeqStmt>> {
    let mut body = Vec::new();
    loop {
        match cur.peek() {
            None => return cur.err("unterminated statement body"),
            Some(t) if stops.iter().any(|s| t.is_kw(s)) => return Ok(body),
            Some(t) if t.is_kw("if") => body.push(parse_if(cur)?),
            Some(t) if t.is_kw("case") => body.push(parse_case(cur)?),
            _ => {
                let line = cur.line();
                let target = parse_target(cur)?;
                cur.expect(&Tok::LessEq, "'<='")?;
                let expr = parse_expr(cur)?;
                cur.expect(&Tok::Semi, "';' after assignment")?;
                body.push(SeqStmt::Assign { target, expr, line });
            }
        }
    }
}

fn parse_if(cur: &mut Cursor) -> Result<SeqStmt> {
    let line = cur.line();
    cur.expect_kw("if")?;
    let cond = parse_expr(cur)?;
    cur.expect_kw("then")?;
    let then_body = parse_seq_body(cur, &["elsif", "else", "end"])?;
    let mut elsifs = Vec::new();
    let mut else_body = Vec::new();
    loop {
        if cur.eat_kw("elsif") {
            let c = parse_expr(cur)?;
            cur.expect_kw("then")?;
            let b = parse_seq_body(cur, &["elsif", "else", "end"])?;
            elsifs.push((c, b));
        } else if cur.eat_kw("else") {
            else_body = parse_seq_body(cur, &["end"])?;
        } else {
            break;
        }
    }
    cur.expect_kw("end")?;
    cur.expect_kw("if")?;
    cur.expect(&Tok::Semi, "';' after end if")?;
    Ok(SeqStmt::If {
        cond,
        then_body,
        elsifs,
        else_body,
        line,
    })
}

/// `case <expr> is when <literal> => ... [when others => ...] end case;`
/// Desugared at parse time into an if/elsif/else chain of equality tests,
/// so semantic analysis and elaboration see only the core constructs.
fn parse_case(cur: &mut Cursor) -> Result<SeqStmt> {
    let line = cur.line();
    cur.expect_kw("case")?;
    let subject = parse_expr(cur)?;
    cur.expect_kw("is")?;
    let mut arms: Vec<(Option<Expr>, Vec<SeqStmt>)> = Vec::new();
    let mut saw_others = false;
    while cur.eat_kw("when") {
        let choice = if cur.eat_kw("others") {
            saw_others = true;
            None
        } else {
            Some(parse_expr(cur)?)
        };
        cur.expect(&Tok::Arrow, "'=>'")?;
        let body = parse_seq_body(cur, &["when", "end"])?;
        arms.push((choice, body));
        if saw_others {
            break;
        }
    }
    cur.expect_kw("end")?;
    cur.expect_kw("case")?;
    cur.expect(&Tok::Semi, "';' after end case")?;
    if arms.is_empty() {
        return cur.err("case statement needs at least one 'when' arm");
    }
    // Desugar: first literal arm becomes the if, later literal arms become
    // elsifs, 'others' (if any) the else.
    let mut lits = Vec::new();
    let mut others_body = Vec::new();
    for (choice, body) in arms {
        match choice {
            Some(lit) => lits.push((
                Expr::Bin(BinOp::Eq, Box::new(subject.clone()), Box::new(lit)),
                body,
            )),
            None => others_body = body,
        }
    }
    if lits.is_empty() {
        // Only 'others': the body executes unconditionally.
        return Ok(SeqStmt::If {
            cond: Expr::Bit(true),
            then_body: others_body,
            elsifs: Vec::new(),
            else_body: Vec::new(),
            line,
        });
    }
    let (first_cond, first_body) = lits.remove(0);
    Ok(SeqStmt::If {
        cond: first_cond,
        then_body: first_body,
        elsifs: lits,
        else_body: others_body,
        line,
    })
}

/// Expression grammar (loosest to tightest):
/// logical (and/or/nand/nor/xor/xnor, non-mixing without parens relaxed to
/// left-assoc) -> relational (= /=) -> additive (+ &) -> unary (not) ->
/// primary.
fn parse_expr(cur: &mut Cursor) -> Result<Expr> {
    parse_logical(cur)
}

fn logical_op(t: &Tok) -> Option<BinOp> {
    for (kw, op) in [
        ("and", BinOp::And),
        ("or", BinOp::Or),
        ("nand", BinOp::Nand),
        ("nor", BinOp::Nor),
        ("xor", BinOp::Xor),
        ("xnor", BinOp::Xnor),
    ] {
        if t.is_kw(kw) {
            return Some(op);
        }
    }
    None
}

fn parse_logical(cur: &mut Cursor) -> Result<Expr> {
    let mut lhs = parse_relational(cur)?;
    while let Some(op) = cur.peek().and_then(logical_op) {
        cur.next();
        let rhs = parse_relational(cur)?;
        lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_relational(cur: &mut Cursor) -> Result<Expr> {
    let lhs = parse_additive(cur)?;
    if cur.eat(&Tok::Eq) {
        let rhs = parse_additive(cur)?;
        return Ok(Expr::Bin(BinOp::Eq, Box::new(lhs), Box::new(rhs)));
    }
    if cur.eat(&Tok::NotEq) {
        let rhs = parse_additive(cur)?;
        return Ok(Expr::Bin(BinOp::Neq, Box::new(lhs), Box::new(rhs)));
    }
    Ok(lhs)
}

fn parse_additive(cur: &mut Cursor) -> Result<Expr> {
    let mut lhs = parse_unary(cur)?;
    loop {
        if cur.eat(&Tok::Plus) {
            let rhs = parse_unary(cur)?;
            lhs = Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs));
        } else if cur.eat(&Tok::Minus) {
            let rhs = parse_unary(cur)?;
            lhs = Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs));
        } else if cur.eat(&Tok::Amp) {
            let rhs = parse_unary(cur)?;
            lhs = Expr::Bin(BinOp::Concat, Box::new(lhs), Box::new(rhs));
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_unary(cur: &mut Cursor) -> Result<Expr> {
    if cur.eat_kw("not") {
        let e = parse_unary(cur)?;
        return Ok(Expr::Not(Box::new(e)));
    }
    parse_primary(cur)
}

fn parse_primary(cur: &mut Cursor) -> Result<Expr> {
    match cur.peek().cloned() {
        Some(Tok::LParen) => {
            cur.next();
            // `(others => '0')` aggregate or a parenthesized expression.
            if cur.eat_kw("others") {
                cur.expect(&Tok::Arrow, "'=>'")?;
                let bit = match cur.next().cloned() {
                    Some(Tok::BitLit(b)) => b,
                    other => {
                        return cur.err(format!(
                            "expected '0' or '1' after others =>, found {other:?}"
                        ))
                    }
                };
                cur.expect(&Tok::RParen, "')'")?;
                return Ok(Expr::Others(bit));
            }
            let e = parse_expr(cur)?;
            cur.expect(&Tok::RParen, "')'")?;
            Ok(e)
        }
        Some(Tok::BitLit(b)) => {
            cur.next();
            Ok(Expr::Bit(b))
        }
        Some(Tok::VecLit(v)) => {
            cur.next();
            Ok(Expr::Vec(v))
        }
        Some(Tok::Int(v)) => {
            cur.next();
            Ok(Expr::Int(v))
        }
        Some(Tok::Ident(name)) => {
            cur.next();
            if name == "rising_edge" {
                cur.expect(&Tok::LParen, "'('")?;
                let clk = cur.ident()?;
                cur.expect(&Tok::RParen, "')'")?;
                return Ok(Expr::RisingEdge(clk));
            }
            if cur.eat(&Tok::LParen) {
                let idx = cur.int()? as u32;
                cur.expect(&Tok::RParen, "')'")?;
                return Ok(Expr::Index(name, idx));
            }
            Ok(Expr::Ref(name))
        }
        other => cur.err(format!("expected expression, found {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Result<Design> {
        parse_design(&lex(src).unwrap())
    }

    const COUNTER: &str = "
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity counter is
  port ( clk : in std_logic;
         rst : in std_logic;
         q   : out std_logic_vector(3 downto 0) );
end counter;

architecture rtl of counter is
  signal cnt : std_logic_vector(3 downto 0);
begin
  main : process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        cnt <= \"0000\";
      else
        cnt <= cnt + 1;
      end if;
    end if;
  end process;
  q <= cnt;
end rtl;
";

    #[test]
    fn parses_counter() {
        let d = parse(COUNTER).unwrap();
        assert_eq!(d.entities.len(), 1);
        assert_eq!(d.architectures.len(), 1);
        let e = &d.entities[0];
        assert_eq!(e.name, "counter");
        assert_eq!(e.ports.len(), 3);
        assert_eq!(e.ports[2].ty, Ty::Vector { msb: 3, lsb: 0 });
        let a = &d.architectures[0];
        assert_eq!(a.signals.len(), 1);
        assert_eq!(a.stmts.len(), 2);
        assert!(matches!(a.stmts[0], ConcStmt::Process(_)));
        let (top_e, _) = d.top().unwrap();
        assert_eq!(top_e.name, "counter");
    }

    #[test]
    fn parses_when_else_chain() {
        let src = "
entity m is
  port ( s, a, b, c : in std_logic; y : out std_logic );
end m;
architecture rtl of m is
begin
  y <= a when s = '1' else b when c = '1' else '0';
end rtl;";
        let d = parse(src).unwrap();
        match &d.architectures[0].stmts[0] {
            ConcStmt::CondAssign { arms, .. } => assert_eq!(arms.len(), 2),
            other => panic!("expected CondAssign, got {other:?}"),
        }
    }

    #[test]
    fn parses_indexed_targets_and_operators() {
        let src = "
entity g is
  port ( a : in std_logic_vector(1 downto 0); y : out std_logic_vector(1 downto 0) );
end g;
architecture rtl of g is
begin
  y(0) <= a(0) nand a(1);
  y(1) <= not (a(0) xor a(1));
end rtl;";
        let d = parse(src).unwrap();
        assert_eq!(d.architectures[0].stmts.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("entity x is end;").is_ok());
        assert!(parse("entity x port end;").is_err());
        assert!(parse("architecture a of b is begin y <= ; end a;").is_err());
        assert!(parse("begin end").is_err());
    }

    #[test]
    fn error_lines_are_useful() {
        let src = "entity x is\nport ( a : in std_logic );\nend x;\narchitecture r of x is\nbegin\n  y <== a;\nend r;";
        // '<==' lexes as '<=' '=', the parser chokes on '=' at line 6.
        let err = parse(src).unwrap_err();
        assert_eq!(err.line, 6);
    }

    #[test]
    fn multiple_port_names_share_type() {
        let src = "entity x is port ( a, b, c : in std_logic; y : out std_logic ); end x;";
        let d = parse(src).unwrap();
        assert_eq!(d.entities[0].ports.len(), 4);
        assert!(d.entities[0].ports[0].dir == Dir::In);
    }
}
