//! Packing design rules: `PK001`, cluster exceeds architecture limits.
//!
//! `fpga_pack::validate` errors out on the first violation; this pass
//! reports every over-limit cluster so a bad packer run is diagnosed in
//! one shot.

use std::collections::HashSet;

use fpga_netlist::ir::NetId;
use fpga_pack::Clustering;

use crate::diag::{Diagnostic, Severity};

const STAGE: &str = "pack";

fn deny(subject: String, message: String) -> Diagnostic {
    Diagnostic::new("PK001", Severity::Deny, STAGE, subject, message)
}

/// Run all packing rules.
pub fn lint_clustering(c: &Clustering) -> Vec<Diagnostic> {
    let arch = &c.arch;
    let mut out = Vec::new();
    let mut owner: Vec<Option<usize>> = vec![None; c.bles.len()];
    for (ci, cluster) in c.clusters.iter().enumerate() {
        let subject = format!("cluster {ci}");
        if cluster.bles.len() > arch.cluster_size {
            out.push(deny(
                subject.clone(),
                format!(
                    "cluster {ci} holds {} BLEs but the architecture allows N = {}",
                    cluster.bles.len(),
                    arch.cluster_size
                ),
            ));
        }
        if cluster.inputs.len() > arch.inputs {
            out.push(deny(
                subject.clone(),
                format!(
                    "cluster {ci} uses {} distinct inputs but the architecture allows I = {}",
                    cluster.inputs.len(),
                    arch.inputs
                ),
            ));
        }
        let mut clocks: HashSet<NetId> = HashSet::new();
        for &b in &cluster.bles {
            let Some(ble) = c.bles.get(b.0 as usize) else {
                out.push(deny(
                    subject.clone(),
                    format!("cluster {ci} references BLE {} which does not exist", b.0),
                ));
                continue;
            };
            if ble.inputs.len() > arch.lut_k {
                out.push(deny(
                    format!("ble '{}'", ble.name),
                    format!(
                        "BLE '{}' in cluster {ci} has {} inputs but the architecture allows K = {}",
                        ble.name,
                        ble.inputs.len(),
                        arch.lut_k
                    ),
                ));
            }
            if let Some(clk) = ble.clock {
                clocks.insert(clk);
            }
            match owner[b.0 as usize] {
                None => owner[b.0 as usize] = Some(ci),
                Some(first) => out.push(deny(
                    format!("ble '{}'", ble.name),
                    format!(
                        "BLE '{}' is packed into both cluster {first} and cluster {ci}",
                        ble.name
                    ),
                )),
            }
        }
        if clocks.len() > arch.clocks {
            let names: Vec<&str> = clocks.iter().map(|&n| c.netlist.net_name(n)).collect();
            let mut names = names;
            names.sort_unstable();
            out.push(
                deny(
                    subject,
                    format!(
                        "cluster {ci} needs {} clocks but the architecture provides {}",
                        clocks.len(),
                        arch.clocks
                    ),
                )
                .with_note(format!("clocks: {}", names.join(", "))),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_arch::ClbArch;
    use fpga_netlist::ir::{CellKind, Netlist};
    use fpga_pack::{Ble, BleId, Cluster};

    /// Hand-build a clustering: the packer itself refuses to produce an
    /// illegal one, which is exactly why the lint exists.
    fn tiny_clustering(bles_in_cluster: usize) -> Clustering {
        let mut nl = Netlist::new("t");
        let mut bles = Vec::new();
        let mut ids = Vec::new();
        let mut inputs = Vec::new();
        for i in 0..bles_in_cluster {
            let a = nl.net(&format!("a{i}"));
            let y = nl.net(&format!("y{i}"));
            nl.add_input(a);
            nl.add_output(y);
            nl.add_cell(
                &format!("lut{i}"),
                CellKind::Lut { k: 1, truth: 0b01 },
                vec![a],
                y,
            );
            bles.push(Ble {
                name: format!("ble{i}"),
                lut: Some(fpga_netlist::ir::CellId(i as u32)),
                ff: None,
                inputs: vec![a],
                output: y,
                clock: None,
            });
            ids.push(BleId(i as u32));
            inputs.push(a);
        }
        Clustering {
            netlist: nl,
            arch: ClbArch::paper_default(),
            bles,
            clusters: vec![Cluster {
                bles: ids,
                inputs,
                clock: None,
            }],
        }
    }

    #[test]
    fn legal_clustering_is_clean() {
        let c = tiny_clustering(3);
        assert!(fpga_pack::validate(&c).is_ok());
        assert!(lint_clustering(&c).is_empty());
    }

    #[test]
    fn over_capacity_cluster_reports_pk001() {
        // N = 5 for the paper architecture; 6 BLEs exceed it.
        let c = tiny_clustering(6);
        let diags = lint_clustering(&c);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "PK001" && d.message.contains("N = 5")),
            "{diags:?}"
        );
        assert!(diags.iter().all(|d| d.severity == Severity::Deny));
    }

    #[test]
    fn too_many_inputs_reports_pk001() {
        let mut c = tiny_clustering(4);
        // Inflate the cluster's distinct-input list past I = 12.
        let extra: Vec<_> = (0..13).map(|i| c.netlist.net(&format!("x{i}"))).collect();
        c.clusters[0].inputs = extra;
        let diags = lint_clustering(&c);
        assert!(
            diags.iter().any(|d| d.message.contains("I = 12")),
            "{diags:?}"
        );
    }

    #[test]
    fn wide_ble_and_double_packing_report_pk001() {
        let mut c = tiny_clustering(2);
        // Widen BLE 0 past K = 4.
        let wide: Vec<_> = (0..5).map(|i| c.netlist.net(&format!("w{i}"))).collect();
        c.bles[0].inputs = wide;
        // Pack BLE 1 twice.
        let dup = c.clusters[0].clone();
        c.clusters.push(dup);
        let diags = lint_clustering(&c);
        assert!(
            diags.iter().any(|d| d.message.contains("K = 4")),
            "{diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.message.contains("both cluster")),
            "{diags:?}"
        );
    }

    #[test]
    fn clock_conflict_reports_pk001() {
        let mut c = tiny_clustering(2);
        let clk_a = c.netlist.net("clk_a");
        let clk_b = c.netlist.net("clk_b");
        c.bles[0].clock = Some(clk_a);
        c.bles[1].clock = Some(clk_b);
        let diags = lint_clustering(&c);
        let d = diags.iter().find(|d| d.message.contains("clocks")).unwrap();
        assert!(d.notes[0].contains("clk_a"), "{:?}", d.notes);
    }
}
