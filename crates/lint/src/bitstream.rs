//! Bitstream design rules: `BS001` — configuration frames inconsistent
//! with the routed design they claim to implement (wrong geometry, or a
//! routed switch whose configuration bit is not set).

use fpga_arch::Device;
use fpga_bitstream::Bitstream;
use fpga_netlist::ir::Netlist;
use fpga_route::rrgraph::RrGraph;
use fpga_route::RouteResult;

use crate::diag::{Diagnostic, Severity};
use crate::route::rr_name;

const STAGE: &str = "bitstream";

fn deny(subject: &str, message: String) -> Diagnostic {
    Diagnostic::new("BS001", Severity::Deny, STAGE, subject, message)
}

/// Run all bitstream rules against the routed design.
pub fn lint_bitstream(
    nl: &Netlist,
    device: &Device,
    g: &RrGraph,
    r: &RouteResult,
    bs: &Bitstream,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    if (bs.width, bs.height) != (device.width, device.height) {
        out.push(deny(
            "frame header",
            format!(
                "bitstream is for a {}x{} grid but the design was placed on {}x{}",
                bs.width, bs.height, device.width, device.height
            ),
        ));
    }
    if bs.channel_width != r.channel_width {
        out.push(deny(
            "frame header",
            format!(
                "bitstream encodes channel width {} but the design routed at {}",
                bs.channel_width, r.channel_width
            ),
        ));
    }
    let clb = &device.arch.clb;
    if (bs.lut_k, bs.cluster_size, bs.clb_inputs) != (clb.lut_k, clb.cluster_size, clb.inputs) {
        out.push(deny(
            "frame header",
            format!(
                "bitstream CLB shape (K={}, N={}, I={}) does not match the architecture \
                 (K={}, N={}, I={})",
                bs.lut_k, bs.cluster_size, bs.clb_inputs, clb.lut_k, clb.cluster_size, clb.inputs
            ),
        ));
    }

    // Every wire-to-wire hop a routed net takes must have its switch-box
    // bit set; a cleared bit means the fabric will not realize the route.
    for net in &r.nets {
        for &(node, parent) in &net.tree {
            let Some(parent) = parent else { continue };
            let (a, b) = (g.kind(parent), g.kind(node));
            if !(a.is_wire() && b.is_wire()) {
                continue;
            }
            if !bs.sb_switches.contains(&(a, b)) && !bs.sb_switches.contains(&(b, a)) {
                out.push(
                    deny(
                        &rr_name(b),
                        format!(
                            "routed switch {} -> {} has no closed switch-box bit",
                            rr_name(a),
                            rr_name(b)
                        ),
                    )
                    .with_note(format!("carried net: '{}'", nl.net_name(net.net))),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_arch::Architecture;
    use fpga_place::{AnnealingPlacer, PlaceConfig, PlaceEngine};
    use fpga_route::{PathFinderRouter, RouteConfig, RouteEngine};

    fn full_stack() -> (Netlist, Device, RrGraph, RouteResult, Bitstream) {
        use fpga_netlist::ir::{CellKind, Netlist};
        let mut n = Netlist::new("two_bits");
        let clk = n.net("clk");
        n.add_clock(clk);
        for i in 0..2 {
            let a = n.net(&format!("a{i}"));
            let d = n.net(&format!("d{i}"));
            let q = n.net(&format!("q{i}"));
            n.add_input(a);
            n.add_output(q);
            n.add_cell(
                &format!("lut{i}"),
                CellKind::Lut { k: 1, truth: 0b01 },
                vec![a],
                d,
            );
            n.add_cell(
                &format!("ff{i}"),
                CellKind::Dff {
                    clock: clk,
                    init: false,
                },
                vec![d],
                q,
            );
        }
        let arch = Architecture::paper_default();
        let clustering = fpga_pack::pack(&n, &arch.clb).unwrap();
        let device = Device::sized_for(
            arch,
            clustering.clusters.len(),
            n.inputs.len() + n.outputs.len() + 1,
        );
        let placement = AnnealingPlacer::new(PlaceConfig::new().seed(1).inner_num(1.0))
            .place(&clustering, device)
            .unwrap();
        let g = RrGraph::build(&placement.device, 12);
        let r = PathFinderRouter::new(RouteConfig::new())
            .route(&clustering, &placement, &g)
            .unwrap();
        let bs = fpga_bitstream::generate(&clustering, &placement, &r, &g).unwrap();
        let device = placement.device.clone();
        (clustering.netlist.clone(), device, g, r, bs)
    }

    #[test]
    fn generated_bitstream_is_clean() {
        let (nl, device, g, r, bs) = full_stack();
        let diags = lint_bitstream(&nl, &device, &g, &r, &bs);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn geometry_mismatch_reports_bs001() {
        let (nl, device, g, r, mut bs) = full_stack();
        bs.width += 1;
        bs.channel_width += 2;
        bs.lut_k = 6;
        let diags = lint_bitstream(&nl, &device, &g, &r, &bs);
        assert!(
            diags.iter().any(|d| d.message.contains("grid")),
            "{diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.message.contains("channel width")),
            "{diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.message.contains("CLB shape")),
            "{diags:?}"
        );
    }

    #[test]
    fn cleared_switch_bit_reports_bs001() {
        let (nl, device, g, r, mut bs) = full_stack();
        // Find a wire-to-wire hop some net takes and clear its bit.
        let hop = r
            .nets
            .iter()
            .flat_map(|net| net.tree.iter())
            .find_map(|&(node, parent)| {
                let p = parent?;
                let (a, b) = (g.kind(p), g.kind(node));
                (a.is_wire() && b.is_wire()).then_some((a, b))
            });
        let Some((a, b)) = hop else {
            return; // design so small no switch box is crossed
        };
        bs.sb_switches.remove(&(a, b));
        bs.sb_switches.remove(&(b, a));
        let diags = lint_bitstream(&nl, &device, &g, &r, &bs);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "BS001" && d.message.contains("switch-box")),
            "{diags:?}"
        );
    }
}
