//! Placement design rules: `PL001` — overlapping, out-of-bounds, or
//! missing block placements.

use std::collections::HashMap;

use fpga_arch::device::BlockKind;
use fpga_pack::{ClusterId, Clustering};
use fpga_place::{BlockRef, Placement, Slot};

use crate::diag::{Diagnostic, Severity};

const STAGE: &str = "place";

fn deny(subject: String, message: String) -> Diagnostic {
    Diagnostic::new("PL001", Severity::Deny, STAGE, subject, message)
}

fn block_name(c: &Clustering, b: BlockRef) -> String {
    match b {
        BlockRef::Cluster(id) => format!("cluster {}", id.0),
        BlockRef::InputPad(n) => format!("input pad '{}'", c.netlist.net_name(n)),
        BlockRef::OutputPad(n) => format!("output pad '{}'", c.netlist.net_name(n)),
    }
}

/// Run all placement rules.
pub fn lint_placement(c: &Clustering, p: &Placement) -> Vec<Diagnostic> {
    let device = &p.device;
    let mut out = Vec::new();

    for ci in 0..c.clusters.len() {
        let id = ClusterId(ci as u32);
        if !p.slots.contains_key(&BlockRef::Cluster(id)) {
            out.push(deny(
                format!("cluster {ci}"),
                format!("cluster {ci} has no placed location"),
            ));
        }
    }

    let mut occupied: HashMap<Slot, BlockRef> = HashMap::new();
    // Deterministic report order regardless of hash-map iteration.
    let mut blocks: Vec<(&BlockRef, &Slot)> = p.slots.iter().collect();
    blocks.sort_by_key(|(_, s)| **s);
    for (&block, &slot) in blocks {
        let subject = block_name(c, block);
        let at = format!("({}, {})", slot.loc.x, slot.loc.y);
        match (device.block_at(slot.loc), block.is_io()) {
            (BlockKind::Clb, false) => {
                if slot.sub != 0 {
                    out.push(deny(
                        subject.clone(),
                        format!(
                            "{subject} uses sub-slot {} of single-cluster CLB tile {at}",
                            slot.sub
                        ),
                    ));
                }
            }
            (BlockKind::Io, true) => {
                let cap = device.arch.io_per_tile;
                if slot.sub as usize >= cap {
                    out.push(deny(
                        subject.clone(),
                        format!(
                            "{subject} uses pad {} of IO tile {at}, which holds {cap} pads",
                            slot.sub
                        ),
                    ));
                }
            }
            (BlockKind::Empty, _) => out.push(deny(
                subject.clone(),
                format!("{subject} is placed outside the fabric at {at}"),
            )),
            (kind, _) => out.push(deny(
                subject.clone(),
                format!("{subject} is placed on a {kind:?} tile at {at}"),
            )),
        }
        if let Some(&first) = occupied.get(&slot) {
            out.push(deny(
                subject.clone(),
                format!(
                    "{subject} overlaps {} at {at} sub-slot {}",
                    block_name(c, first),
                    slot.sub
                ),
            ));
        } else {
            occupied.insert(slot, block);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_arch::device::GridLoc;
    use fpga_arch::Architecture;
    use fpga_place::{AnnealingPlacer, PlaceConfig, PlaceEngine};

    fn placed() -> (Clustering, Placement) {
        let nl = fpga_circuits_stub();
        let arch = Architecture::paper_default();
        let clustering = fpga_pack::pack(&nl, &arch.clb).unwrap();
        let device = fpga_arch::Device::sized_for(
            arch,
            clustering.clusters.len(),
            nl.inputs.len() + nl.outputs.len() + 1,
        );
        let placement = AnnealingPlacer::new(PlaceConfig::new().seed(1).inner_num(1.0))
            .place(&clustering, device)
            .unwrap();
        (clustering, placement)
    }

    /// A small mapped netlist (a couple of LUT+FF bits) without pulling
    /// in the circuits crate.
    fn fpga_circuits_stub() -> fpga_netlist::ir::Netlist {
        use fpga_netlist::ir::{CellKind, Netlist};
        let mut n = Netlist::new("two_bits");
        let clk = n.net("clk");
        n.add_clock(clk);
        for i in 0..2 {
            let a = n.net(&format!("a{i}"));
            let d = n.net(&format!("d{i}"));
            let q = n.net(&format!("q{i}"));
            n.add_input(a);
            n.add_output(q);
            n.add_cell(
                &format!("lut{i}"),
                CellKind::Lut { k: 1, truth: 0b01 },
                vec![a],
                d,
            );
            n.add_cell(
                &format!("ff{i}"),
                CellKind::Dff {
                    clock: clk,
                    init: false,
                },
                vec![d],
                q,
            );
        }
        n
    }

    #[test]
    fn real_placement_is_clean() {
        let (c, p) = placed();
        assert!(lint_placement(&c, &p).is_empty());
    }

    #[test]
    fn overlap_reports_pl001() {
        let (c, mut p) = placed();
        // Move every cluster onto the first cluster's slot.
        let target = *p.slots.get(&BlockRef::Cluster(ClusterId(0))).unwrap();
        for (_, slot) in p.slots.iter_mut().filter(|(b, _)| !b.is_io()) {
            *slot = target;
        }
        let diags = lint_placement(&c, &p);
        if c.clusters.len() > 1 {
            assert!(
                diags.iter().any(|d| d.message.contains("overlaps")),
                "{diags:?}"
            );
        }
    }

    #[test]
    fn out_of_bounds_and_wrong_tile_report_pl001() {
        let (c, mut p) = placed();
        let block = BlockRef::Cluster(ClusterId(0));
        // A corner is Empty; (0, y) mid-edge is an IO tile.
        p.slots.insert(
            block,
            Slot {
                loc: GridLoc::new(0, 0),
                sub: 0,
            },
        );
        let diags = lint_placement(&c, &p);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("outside the fabric")),
            "{diags:?}"
        );

        p.slots.insert(
            block,
            Slot {
                loc: GridLoc::new(0, 1),
                sub: 0,
            },
        );
        let diags = lint_placement(&c, &p);
        assert!(
            diags.iter().any(|d| d.message.contains("Io tile")),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_cluster_reports_pl001() {
        let (c, mut p) = placed();
        p.slots.remove(&BlockRef::Cluster(ClusterId(0)));
        let diags = lint_placement(&c, &p);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("no placed location")),
            "{diags:?}"
        );
    }

    #[test]
    fn io_pad_past_tile_capacity_reports_pl001() {
        let (c, mut p) = placed();
        let io = *p.slots.keys().find(|b| b.is_io()).expect("some pad exists");
        let slot = p.slots[&io];
        p.slots.insert(
            io,
            Slot {
                loc: slot.loc,
                sub: p.device.arch.io_per_tile as u32 + 1,
            },
        );
        let diags = lint_placement(&c, &p);
        assert!(
            diags.iter().any(|d| d.message.contains("pads")),
            "{diags:?}"
        );
    }
}
