//! Routing design rules: `RT001` resource overuse (two nets shorted on
//! one wire or input pin) and `RT002` disconnected routed nets (broken
//! route trees, missing sinks, edges the RR graph does not have).

use std::collections::{HashMap, HashSet};

use fpga_netlist::ir::{NetId, Netlist};
use fpga_route::rrgraph::{RrGraph, RrKind, RrNodeId};
use fpga_route::RouteResult;

use crate::diag::{Diagnostic, Severity};

const STAGE: &str = "route";

/// Human-readable routing-resource name.
pub fn rr_name(kind: RrKind) -> String {
    match kind {
        RrKind::Opin { x, y, pin } => format!("opin({x},{y}).{pin}"),
        RrKind::Ipin { x, y, pin } => format!("ipin({x},{y}).{pin}"),
        RrKind::Chanx { x, y, t } => format!("chanx({x},{y}).t{t}"),
        RrKind::Chany { x, y, t } => format!("chany({x},{y}).t{t}"),
    }
}

/// Run all routing rules.
pub fn lint_routing(nl: &Netlist, g: &RrGraph, r: &RouteResult) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    overused_resources(nl, g, r, &mut out);
    disconnected_nets(nl, g, r, &mut out);
    out
}

/// RT001: a wire segment or input pin carrying two different nets is a
/// short — pass-transistor switches have no arbitration. Output pins are
/// exempt only in being per-net by construction, so any sharing at all
/// is flagged.
fn overused_resources(nl: &Netlist, g: &RrGraph, r: &RouteResult, out: &mut Vec<Diagnostic>) {
    let mut users: HashMap<RrNodeId, Vec<NetId>> = HashMap::new();
    for net in &r.nets {
        let mut seen: HashSet<RrNodeId> = HashSet::new();
        for &(node, _) in &net.tree {
            if seen.insert(node) {
                users.entry(node).or_default().push(net.net);
            }
        }
    }
    let mut shorted: Vec<(&RrNodeId, &Vec<NetId>)> =
        users.iter().filter(|(_, nets)| nets.len() > 1).collect();
    shorted.sort_by_key(|(node, _)| node.0);
    for (&node, nets) in shorted {
        let mut d = Diagnostic::new(
            "RT001",
            Severity::Deny,
            STAGE,
            rr_name(g.kind(node)),
            format!(
                "routing resource {} is used by {} nets",
                rr_name(g.kind(node)),
                nets.len()
            ),
        );
        for &n in nets {
            d = d.with_note(format!("used by net '{}'", nl.net_name(n)));
        }
        out.push(d);
    }
}

/// RT002: each routed net must be one tree rooted at its source, with
/// every sink present and every parent edge realizable in the RR graph.
fn disconnected_nets(nl: &Netlist, g: &RrGraph, r: &RouteResult, out: &mut Vec<Diagnostic>) {
    for net in &r.nets {
        let subject = format!("net '{}'", nl.net_name(net.net));
        let mut problems: Vec<String> = Vec::new();
        let in_tree: HashSet<RrNodeId> = net.tree.iter().map(|&(n, _)| n).collect();

        let roots = net.tree.iter().filter(|(_, p)| p.is_none()).count();
        if roots != 1 {
            problems.push(format!("route tree has {roots} roots (expected 1)"));
        }
        if !net
            .tree
            .iter()
            .any(|&(n, p)| n == net.source && p.is_none())
        {
            problems.push(format!(
                "source {} is not the tree root",
                rr_name(g.kind(net.source))
            ));
        }
        for &sink in &net.sinks {
            if !in_tree.contains(&sink) {
                problems.push(format!(
                    "sink {} is not reached by the route",
                    rr_name(g.kind(sink))
                ));
            }
        }
        for &(node, parent) in &net.tree {
            let Some(parent) = parent else { continue };
            if !in_tree.contains(&parent) {
                problems.push(format!(
                    "node {} hangs off {}, which is not in the tree",
                    rr_name(g.kind(node)),
                    rr_name(g.kind(parent))
                ));
                continue;
            }
            if !g.edges[parent.0 as usize].contains(&node) {
                problems.push(format!(
                    "no RR-graph switch from {} to {}",
                    rr_name(g.kind(parent)),
                    rr_name(g.kind(node))
                ));
            }
        }

        if !problems.is_empty() {
            let mut d = Diagnostic::new(
                "RT002",
                Severity::Deny,
                STAGE,
                subject.clone(),
                format!("{subject} is not fully routed"),
            );
            for p in problems {
                d = d.with_note(p);
            }
            out.push(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_arch::{Architecture, Device};
    use fpga_place::{AnnealingPlacer, PlaceConfig, PlaceEngine};
    use fpga_route::{PathFinderRouter, RouteConfig, RouteEngine};

    fn routed() -> (Netlist, RrGraph, RouteResult) {
        use fpga_netlist::ir::{CellKind, Netlist};
        let mut n = Netlist::new("two_bits");
        let clk = n.net("clk");
        n.add_clock(clk);
        for i in 0..2 {
            let a = n.net(&format!("a{i}"));
            let d = n.net(&format!("d{i}"));
            let q = n.net(&format!("q{i}"));
            n.add_input(a);
            n.add_output(q);
            n.add_cell(
                &format!("lut{i}"),
                CellKind::Lut { k: 1, truth: 0b01 },
                vec![a],
                d,
            );
            n.add_cell(
                &format!("ff{i}"),
                CellKind::Dff {
                    clock: clk,
                    init: false,
                },
                vec![d],
                q,
            );
        }
        let arch = Architecture::paper_default();
        let clustering = fpga_pack::pack(&n, &arch.clb).unwrap();
        let device = Device::sized_for(
            arch,
            clustering.clusters.len(),
            n.inputs.len() + n.outputs.len() + 1,
        );
        let placement = AnnealingPlacer::new(PlaceConfig::new().seed(1).inner_num(1.0))
            .place(&clustering, device)
            .unwrap();
        let g = RrGraph::build(&placement.device, 12);
        let r = PathFinderRouter::new(RouteConfig::new())
            .route(&clustering, &placement, &g)
            .unwrap();
        (clustering.netlist.clone(), g, r)
    }

    #[test]
    fn real_route_is_clean() {
        let (nl, g, r) = routed();
        assert!(!r.nets.is_empty());
        let diags = lint_routing(&nl, &g, &r);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn shared_wire_reports_rt001() {
        let (nl, g, mut r) = routed();
        assert!(r.nets.len() >= 2, "need two nets to short");
        // Graft net 0's first wire node into net 1's tree.
        let wire = r.nets[0]
            .tree
            .iter()
            .map(|&(n, _)| n)
            .find(|&n| g.kind(n).is_wire())
            .expect("net 0 uses a wire");
        let root = r.nets[1].tree[0].0;
        r.nets[1].tree.push((wire, Some(root)));
        let diags = lint_routing(&nl, &g, &r);
        let d = diags.iter().find(|d| d.code == "RT001").unwrap();
        assert_eq!(d.notes.len(), 2, "{d:?}");
    }

    #[test]
    fn missing_sink_reports_rt002() {
        let (nl, g, mut r) = routed();
        // Drop everything but the root from net 0's tree.
        r.nets[0].tree.truncate(1);
        let diags = lint_routing(&nl, &g, &r);
        let d = diags.iter().find(|d| d.code == "RT002").unwrap();
        assert!(
            d.notes.iter().any(|n| n.contains("not reached")),
            "{:?}",
            d.notes
        );
    }

    #[test]
    fn phantom_edge_reports_rt002() {
        let (nl, g, mut r) = routed();
        // Re-parent a leaf onto a node the graph has no switch from.
        let tree_len = r.nets[0].tree.len();
        assert!(tree_len > 2);
        let distant = r.nets[0].tree[tree_len - 1].0;
        let source = r.nets[0].tree[0].0;
        if g.edges[source.0 as usize].contains(&distant) {
            return; // adjacent by luck; nothing to break
        }
        r.nets[0].tree[tree_len - 1].1 = Some(source);
        let diags = lint_routing(&nl, &g, &r);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "RT002" && d.notes.iter().any(|n| n.contains("no RR-graph"))),
            "{diags:?}"
        );
    }

    #[test]
    fn detached_parent_reports_rt002() {
        let (nl, g, mut r) = routed();
        // Point a node at a parent that is not in the tree at all.
        let outsider = RrNodeId(
            (0..g.node_count() as u32)
                .find(|&i| !r.nets[0].tree.iter().any(|&(n, _)| n.0 == i))
                .unwrap(),
        );
        let last = r.nets[0].tree.len() - 1;
        r.nets[0].tree[last].1 = Some(outsider);
        let diags = lint_routing(&nl, &g, &r);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "RT002" && d.notes.iter().any(|n| n.contains("not in the tree"))),
            "{diags:?}"
        );
    }
}
