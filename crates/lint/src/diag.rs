//! The diagnostics framework: severities, rule catalogue, the
//! [`Diagnostic`] record every pass emits, and the thread-safe
//! [`DiagSink`] the pipeline threads through its stage gates.
//!
//! Diagnostics are plain data. They serialize to/from `serde_json::Value`
//! with the same explicit field-by-field discipline as the flow server's
//! wire protocol, so they can ride protocol events unchanged and a newer
//! daemon can add fields without breaking older clients.

use std::sync::Mutex;

use serde_json::{json, Value};

/// How bad a finding is. Ordering matters: `Deny > Warn > Info`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: harmless, worth knowing.
    Info,
    /// Suspicious but not fatal; the flow proceeds.
    Warn,
    /// A design-rule violation; under `LintMode::Deny` it fails the job.
    Deny,
}

impl Severity {
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }

    pub fn parse(text: &str) -> Option<Severity> {
        match text {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How much the pipeline cares about lint findings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LintMode {
    /// No passes run; today's behavior, byte for byte.
    #[default]
    Off,
    /// Passes run and report; the flow always proceeds.
    Warn,
    /// Passes run; any `Severity::Deny` finding fails the job.
    Deny,
}

impl LintMode {
    pub fn name(self) -> &'static str {
        match self {
            LintMode::Off => "off",
            LintMode::Warn => "warn",
            LintMode::Deny => "deny",
        }
    }

    pub fn parse(text: &str) -> Option<LintMode> {
        match text {
            "off" => Some(LintMode::Off),
            "warn" => Some(LintMode::Warn),
            "deny" => Some(LintMode::Deny),
            _ => None,
        }
    }

    /// Whether passes run at all under this mode.
    pub fn enabled(self) -> bool {
        self != LintMode::Off
    }
}

/// One finding from one pass.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable rule code (`NL001`, `PK001`, ...). Scripts and metrics key
    /// on this; it never changes meaning across versions.
    pub code: String,
    pub severity: Severity,
    /// The flow stage whose output the finding is about (`netlist`,
    /// `pack`, `place`, `route`, `bitstream`).
    pub stage: String,
    /// The design object at fault: a net, cell, cluster, block, or
    /// routing-resource name.
    pub subject: String,
    /// One-line human explanation.
    pub message: String,
    /// Supporting detail (cycle paths, driver lists, ...).
    pub notes: Vec<String>,
}

impl Diagnostic {
    pub fn new(
        code: &str,
        severity: Severity,
        stage: &str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code: code.to_string(),
            severity,
            stage: stage.to_string(),
            subject: subject.into(),
            message: message.into(),
            notes: Vec::new(),
        }
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Serialize for the wire / reports. Field-by-field, like the proto.
    pub fn to_value(&self) -> Value {
        json!({
            "code": self.code,
            "severity": self.severity.name(),
            "stage": self.stage,
            "subject": self.subject,
            "message": self.message,
            "notes": self.notes,
        })
    }

    /// Parse a wire value back. Unknown extra fields are ignored (a newer
    /// emitter may add some); missing required fields are an error.
    pub fn from_value(v: &Value) -> Result<Diagnostic, String> {
        let text = |field: &str| -> Result<String, String> {
            v.get(field)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("diagnostic missing '{field}'"))
        };
        let severity_name = text("severity")?;
        let severity = Severity::parse(&severity_name)
            .ok_or_else(|| format!("unknown severity '{severity_name}'"))?;
        let notes = match v.get("notes") {
            None | Some(Value::Null) => Vec::new(),
            Some(Value::Array(items)) => items
                .iter()
                .filter_map(Value::as_str)
                .map(str::to_string)
                .collect(),
            Some(other) => return Err(format!("diagnostic notes not a list: {other}")),
        };
        Ok(Diagnostic {
            code: text("code")?,
            severity,
            stage: text("stage")?,
            subject: text("subject")?,
            message: text("message")?,
            notes,
        })
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {}: {} ({})",
            self.severity, self.code, self.stage, self.message, self.subject
        )?;
        for note in &self.notes {
            write!(f, "\n  note: {note}")?;
        }
        Ok(())
    }
}

/// Serialize a batch of diagnostics.
pub fn diagnostics_to_value(diags: &[Diagnostic]) -> Value {
    Value::Array(diags.iter().map(Diagnostic::to_value).collect())
}

/// Parse a batch back from the wire. `Null` means none.
pub fn diagnostics_from_value(v: &Value) -> Result<Vec<Diagnostic>, String> {
    match v {
        Value::Null => Ok(Vec::new()),
        Value::Array(items) => items.iter().map(Diagnostic::from_value).collect(),
        other => Err(format!("diagnostics not a list: {other}")),
    }
}

/// Highest severity in a batch, if any.
pub fn worst(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

/// One-line summary of a batch: `"3 findings (1 deny, 2 warn)"`.
pub fn summarize(diags: &[Diagnostic]) -> String {
    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count();
    let (deny, warn, info) = (
        count(Severity::Deny),
        count(Severity::Warn),
        count(Severity::Info),
    );
    if diags.is_empty() {
        return "no findings".to_string();
    }
    let mut parts = Vec::new();
    if deny > 0 {
        parts.push(format!("{deny} deny"));
    }
    if warn > 0 {
        parts.push(format!("{warn} warn"));
    }
    if info > 0 {
        parts.push(format!("{info} info"));
    }
    format!(
        "{} finding{} ({})",
        diags.len(),
        if diags.len() == 1 { "" } else { "s" },
        parts.join(", ")
    )
}

/// A thread-safe collector the pipeline threads through its lint gates,
/// following the [`TraceLog`](../../flow/src/trace.rs) borrowed-hook
/// idiom: stage gates push through a shared reference, the driver drains
/// once at the end.
#[derive(Debug, Default)]
pub struct DiagSink {
    diags: Mutex<Vec<Diagnostic>>,
}

impl DiagSink {
    pub fn new() -> Self {
        DiagSink::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Diagnostic>> {
        // Every mutation keeps the vector valid between statements, so a
        // poisoned lock still holds usable data.
        self.diags
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn push(&self, d: Diagnostic) {
        self.lock().push(d);
    }

    pub fn extend(&self, batch: impl IntoIterator<Item = Diagnostic>) {
        self.lock().extend(batch);
    }

    /// Snapshot without draining.
    pub fn snapshot(&self) -> Vec<Diagnostic> {
        self.lock().clone()
    }

    /// Take everything collected so far.
    pub fn drain(&self) -> Vec<Diagnostic> {
        std::mem::take(&mut *self.lock())
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Highest severity collected so far, if any.
    pub fn worst(&self) -> Option<Severity> {
        worst(&self.lock())
    }
}

/// One rule in the catalogue.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    pub code: &'static str,
    /// The stage family the rule checks.
    pub stage: &'static str,
    /// One-line description, printed by `--help` / `--rules`.
    pub summary: &'static str,
}

/// The full rule catalogue, in stage order. Codes are append-only: a
/// rule's meaning never changes, retired rules keep their slot reserved.
pub const RULES: [Rule; 11] = [
    Rule {
        code: "NL001",
        stage: "netlist",
        summary: "combinational loop (cycle through non-sequential cells)",
    },
    Rule {
        code: "NL002",
        stage: "netlist",
        summary: "multiply-driven net (two drivers, or a cell driving a primary input)",
    },
    Rule {
        code: "NL003",
        stage: "netlist",
        summary: "undriven or dangling net (used-but-undriven denies; unused nets warn/info)",
    },
    Rule {
        code: "PK001",
        stage: "pack",
        summary: "cluster exceeds architecture limits (N BLEs, I inputs, K LUT inputs, clocks)",
    },
    Rule {
        code: "PL001",
        stage: "place",
        summary: "illegal placement (overlap, out of bounds, wrong tile kind, unplaced block)",
    },
    Rule {
        code: "RT001",
        stage: "route",
        summary: "routing-resource overuse: one wire or input pin shorted between nets",
    },
    Rule {
        code: "RT002",
        stage: "route",
        summary: "disconnected routed net (broken tree, missing sink, or phantom edge)",
    },
    Rule {
        code: "BS001",
        stage: "bitstream",
        summary: "bitstream inconsistent with the routed design (geometry or missing switches)",
    },
    Rule {
        code: "EQ001",
        stage: "verify",
        summary: "stage artifact not equivalent to the netlist (counterexample attached)",
    },
    Rule {
        code: "EQ002",
        stage: "verify",
        summary: "bitstream-decoded fabric not equivalent to the netlist (counterexample attached)",
    },
    Rule {
        code: "EQ003",
        stage: "verify",
        summary: "unverifiable cone (view extraction or replay failed; equivalence unknown)",
    },
];

/// Look up a rule by code.
pub fn rule(code: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.code == code)
}

/// The catalogue as `--help` text: one aligned line per rule.
pub fn catalogue_text() -> String {
    let mut out = String::from("rules:\n");
    for r in &RULES {
        out.push_str(&format!("  {}  [{:<9}] {}\n", r.code, r.stage, r.summary));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_round_trips() {
        assert!(Severity::Deny > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
        for s in [Severity::Info, Severity::Warn, Severity::Deny] {
            assert_eq!(Severity::parse(s.name()), Some(s));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn lint_mode_parses_and_defaults_off() {
        assert_eq!(LintMode::default(), LintMode::Off);
        for m in [LintMode::Off, LintMode::Warn, LintMode::Deny] {
            assert_eq!(LintMode::parse(m.name()), Some(m));
        }
        assert!(!LintMode::Off.enabled());
        assert!(LintMode::Deny.enabled());
    }

    #[test]
    fn diagnostic_round_trips_through_value() {
        let d = Diagnostic::new("NL002", Severity::Deny, "netlist", "net 'x'", "two drivers")
            .with_note("driven by 'g1'")
            .with_note("driven by 'g2'");
        let back = Diagnostic::from_value(&d.to_value()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn diagnostic_parse_rejects_missing_fields() {
        let v = serde_json::json!({"code": "NL001", "severity": "deny"});
        assert!(Diagnostic::from_value(&v).is_err());
        let v = serde_json::json!({
            "code": "NL001", "severity": "someday", "stage": "netlist",
            "subject": "s", "message": "m"
        });
        assert!(Diagnostic::from_value(&v).is_err());
    }

    #[test]
    fn batch_round_trip_and_worst() {
        let diags = vec![
            Diagnostic::new("NL003", Severity::Info, "netlist", "a", "dangling"),
            Diagnostic::new("NL001", Severity::Deny, "netlist", "b", "loop"),
        ];
        let back = diagnostics_from_value(&diagnostics_to_value(&diags)).unwrap();
        assert_eq!(back, diags);
        assert_eq!(worst(&diags), Some(Severity::Deny));
        assert_eq!(worst(&[]), None);
        assert!(summarize(&diags).contains("1 deny"));
    }

    #[test]
    fn sink_collects_and_drains() {
        let sink = DiagSink::new();
        assert!(sink.is_empty());
        sink.push(Diagnostic::new(
            "PK001",
            Severity::Deny,
            "pack",
            "cluster 0",
            "too many BLEs",
        ));
        sink.extend(vec![Diagnostic::new(
            "NL003",
            Severity::Warn,
            "netlist",
            "n",
            "unused",
        )]);
        assert_eq!(sink.worst(), Some(Severity::Deny));
        assert_eq!(sink.snapshot().len(), 2);
        assert_eq!(sink.drain().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn catalogue_is_complete_and_unique() {
        let mut codes: Vec<&str> = RULES.iter().map(|r| r.code).collect();
        codes.dedup();
        assert_eq!(codes.len(), RULES.len());
        assert!(rule("NL001").is_some());
        assert!(rule("XX999").is_none());
        let text = catalogue_text();
        for r in &RULES {
            assert!(text.contains(r.code), "{text}");
        }
    }
}
