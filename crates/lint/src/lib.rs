//! # fpga-lint
//!
//! Design-rule static analysis for the flow: pure passes over every
//! staged IR, emitting structured [`Diagnostic`]s with stable rule codes.
//!
//! The framework's stages silently assume well-formed inputs at every
//! hand-off — exactly the gap real flows close with per-stage checkers.
//! Each pass here is a pure function from an IR (plus the
//! architecture/device where needed) to a list of findings; nothing in
//! this crate mutates a design or touches the pipeline. The `fpga-flow`
//! pipeline runs the passes at stage boundaries when
//! `FlowOptions.lint` is `warn` or `deny`, the flow server exposes them
//! through the `lint` protocol verb, and the standalone `fpga-lint`
//! binary (in `fpga-flow`, which owns the stage drivers) runs them
//! offline.
//!
//! Rule codes are append-only and never change meaning:
//!
//! | code  | stage     | finding |
//! |-------|-----------|---------|
//! | NL001 | netlist   | combinational loop |
//! | NL002 | netlist   | multiply-driven net |
//! | NL003 | netlist   | undriven / dangling net |
//! | PK001 | pack      | cluster exceeds N/K/I/clock limits |
//! | PL001 | place     | overlapping or out-of-bounds placement |
//! | RT001 | route     | routing-resource overuse (short) |
//! | RT002 | route     | disconnected routed net |
//! | BS001 | bitstream | bitstream inconsistent with routed design |
//! | EQ001 | verify    | stage artifact not equivalent to the netlist |
//! | EQ002 | verify    | bitstream-decoded fabric not equivalent to the netlist |
//! | EQ003 | verify    | unverifiable cone (equivalence unknown) |
//!
//! The EQ rules are emitted by the `fpga-verify` equivalence engine (the
//! checks live there, not in this crate) but share the catalogue, the
//! severity policy, and every reporting surface with the structural
//! rules. EQ001/EQ002 findings carry a replayable counterexample in
//! their note.

pub mod bitstream;
pub mod diag;
pub mod netlist;
pub mod pack;
pub mod place;
pub mod route;

pub use bitstream::lint_bitstream;
pub use diag::{
    catalogue_text, diagnostics_from_value, diagnostics_to_value, rule, summarize, worst, DiagSink,
    Diagnostic, LintMode, Rule, Severity, RULES,
};
pub use netlist::lint_netlist;
pub use pack::lint_clustering;
pub use place::lint_placement;
pub use route::{lint_routing, rr_name};
