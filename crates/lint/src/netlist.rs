//! Netlist design rules: combinational loops (`NL001`), multiply-driven
//! nets (`NL002`), undriven/dangling nets (`NL003`).
//!
//! Unlike [`Netlist::validate`], which stops at the first structural
//! error, these passes sweep the whole netlist and report every finding,
//! so one lint run shows the complete damage.

use std::collections::HashSet;

use fpga_netlist::ir::{CellId, CellKind, Netlist};

use crate::diag::{Diagnostic, Severity};

const STAGE: &str = "netlist";

/// Run all netlist rules.
pub fn lint_netlist(nl: &Netlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    combinational_loops(nl, &mut out);
    multiply_driven(nl, &mut out);
    undriven_and_dangling(nl, &mut out);
    out
}

/// NL001: DFS over combinational fanin. Sequential elements break cycles
/// (a DFF's output is a fresh timing startpoint), so edges only connect
/// non-FF cells. Every distinct cycle is reported once, with its path.
fn combinational_loops(nl: &Netlist, out: &mut Vec<Diagnostic>) {
    let drivers = nl.drivers();
    let n = nl.cells.len();
    // fanin[i] = combinational cells driving cell i's inputs.
    let mut fanin: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, c) in nl.cells.iter().enumerate() {
        if c.kind.is_ff() {
            continue;
        }
        for &input in &c.inputs {
            if let Some(drv) = drivers[input.index()] {
                if !nl.cells[drv.index()].kind.is_ff() {
                    fanin[i].push(drv.index());
                }
            }
        }
    }

    // Iterative three-color DFS; a gray-node hit closes a cycle, which is
    // read straight off the path stack.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    let mut reported: HashSet<Vec<usize>> = HashSet::new();
    for root in 0..n {
        if color[root] != WHITE || nl.cells[root].kind.is_ff() {
            continue;
        }
        // (cell, next fanin edge to explore)
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = GRAY;
        while let Some(top) = stack.last_mut() {
            let cell = top.0;
            if top.1 < fanin[cell].len() {
                let next = fanin[cell][top.1];
                top.1 += 1;
                match color[next] {
                    WHITE => {
                        color[next] = GRAY;
                        stack.push((next, 0));
                    }
                    GRAY => {
                        let start = stack
                            .iter()
                            .position(|&(c, _)| c == next)
                            .expect("gray cell is on the path");
                        let cycle: Vec<usize> = stack[start..].iter().map(|&(c, _)| c).collect();
                        // Canonical form: rotate so the smallest id leads,
                        // deduplicating rediscoveries from other roots.
                        let min_pos = cycle
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &c)| c)
                            .map(|(i, _)| i)
                            .expect("cycle is nonempty");
                        let mut canon = cycle.clone();
                        canon.rotate_left(min_pos);
                        if reported.insert(canon.clone()) {
                            out.push(describe_cycle(nl, &canon));
                        }
                    }
                    _ => {}
                }
            } else {
                color[cell] = BLACK;
                stack.pop();
            }
        }
    }
}

fn describe_cycle(nl: &Netlist, cycle: &[usize]) -> Diagnostic {
    let name = |i: usize| nl.cells[i].name.clone();
    let subject = format!("cell '{}'", name(cycle[0]));
    let message = if cycle.len() == 1 {
        format!("cell '{}' drives its own input", name(cycle[0]))
    } else {
        format!("combinational loop through {} cells", cycle.len())
    };
    // The DFS walked fanin edges, so the stack order is sink-to-source;
    // print the loop in signal-flow order (source feeds the next cell).
    let mut path: Vec<String> = cycle.iter().rev().map(|&i| name(i)).collect();
    path.push(path[0].clone());
    Diagnostic::new("NL001", Severity::Deny, STAGE, subject, message)
        .with_note(format!("path: {}", path.join(" -> ")))
}

/// NL002: a net with two drivers, or a cell driving a primary input
/// (outside pads already drive those).
fn multiply_driven(nl: &Netlist, out: &mut Vec<Diagnostic>) {
    let mut driving: Vec<Vec<CellId>> = vec![Vec::new(); nl.nets.len()];
    for (i, c) in nl.cells.iter().enumerate() {
        driving[c.output.index()].push(CellId(i as u32));
    }
    for (i, cells) in driving.iter().enumerate() {
        let id = fpga_netlist::ir::NetId(i as u32);
        let net = format!("net '{}'", nl.net_name(id));
        let is_input = nl.inputs.contains(&id);
        if cells.len() > 1 {
            let mut d = Diagnostic::new(
                "NL002",
                Severity::Deny,
                STAGE,
                net.clone(),
                format!("{net} has {} drivers", cells.len()),
            );
            for c in cells {
                d = d.with_note(format!("driven by cell '{}'", nl.cells[c.index()].name));
            }
            out.push(d);
        } else if is_input && cells.len() == 1 {
            out.push(
                Diagnostic::new(
                    "NL002",
                    Severity::Deny,
                    STAGE,
                    net.clone(),
                    format!("primary input {net} is also driven by a cell"),
                )
                .with_note(format!(
                    "driven by cell '{}'",
                    nl.cells[cells[0].index()].name
                )),
            );
        }
    }
}

/// NL003, tiered by blast radius: a net something *reads* but nothing
/// drives is broken logic (deny); a driven net nothing reads is dead
/// logic (warn); a net that is neither driven nor read is leftover
/// interning (info).
fn undriven_and_dangling(nl: &Netlist, out: &mut Vec<Diagnostic>) {
    let drivers = nl.drivers();
    let sinks = nl.sinks();
    for (i, _) in nl.nets.iter().enumerate() {
        let id = fpga_netlist::ir::NetId(i as u32);
        let net = format!("net '{}'", nl.net_name(id));
        let driven = drivers[i].is_some() || nl.inputs.contains(&id);
        let read = !sinks[i].is_empty() || nl.outputs.contains(&id);
        match (driven, read) {
            (true, true) => {}
            (false, true) => out.push(Diagnostic::new(
                "NL003",
                Severity::Deny,
                STAGE,
                net.clone(),
                format!("{net} is read but never driven"),
            )),
            (true, false) => {
                let message = if nl.inputs.contains(&id) {
                    format!("primary input {net} is never read")
                } else {
                    format!("{net} is driven but never read")
                };
                out.push(Diagnostic::new(
                    "NL003",
                    Severity::Warn,
                    STAGE,
                    net,
                    message,
                ));
            }
            (false, false) => out.push(Diagnostic::new(
                "NL003",
                Severity::Info,
                STAGE,
                net.clone(),
                format!("{net} is dangling (no driver, no reader)"),
            )),
        }
    }
    // A DFF clocked by a net no clock tree serves deserves its own call-out.
    for c in &nl.cells {
        if let CellKind::Dff { clock, .. } = c.kind {
            let driven = drivers[clock.index()].is_some() || nl.inputs.contains(&clock);
            if driven && !nl.clocks.contains(&clock) {
                out.push(Diagnostic::new(
                    "NL003",
                    Severity::Warn,
                    STAGE,
                    format!("cell '{}'", c.name),
                    format!(
                        "flip-flop '{}' is clocked by '{}', which is not a declared clock",
                        c.name,
                        nl.net_name(clock)
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_netlist::ir::CellKind;

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    /// a & b -> w -> ff(clk) -> q: clean.
    fn clean() -> Netlist {
        let mut n = Netlist::new("clean");
        let a = n.net("a");
        let b = n.net("b");
        let clk = n.net("clk");
        let w = n.net("w");
        let q = n.net("q");
        n.add_input(a);
        n.add_input(b);
        n.add_clock(clk);
        n.add_output(q);
        n.add_cell("g1", CellKind::And, vec![a, b], w);
        n.add_cell(
            "ff1",
            CellKind::Dff {
                clock: clk,
                init: false,
            },
            vec![w],
            q,
        );
        n
    }

    #[test]
    fn clean_netlist_has_no_findings() {
        assert!(lint_netlist(&clean()).is_empty());
    }

    #[test]
    fn two_cell_loop_reports_nl001_with_path() {
        let mut n = Netlist::new("loop");
        let x = n.net("x");
        let y = n.net("y");
        n.add_output(x);
        n.add_cell("g1", CellKind::Not, vec![x], y);
        n.add_cell("g2", CellKind::Not, vec![y], x);
        let diags = lint_netlist(&n);
        let loops: Vec<_> = diags.iter().filter(|d| d.code == "NL001").collect();
        assert_eq!(loops.len(), 1, "{diags:?}");
        assert_eq!(loops[0].severity, Severity::Deny);
        assert!(loops[0].notes[0].contains("g1"), "{:?}", loops[0].notes);
        assert!(loops[0].notes[0].contains("g2"));
    }

    #[test]
    fn self_driving_cell_reports_single_cell_loop() {
        let mut n = Netlist::new("selfloop");
        let x = n.net("x");
        n.add_output(x);
        n.add_cell("g", CellKind::Buf, vec![x], x);
        let diags = lint_netlist(&n);
        let d = diags.iter().find(|d| d.code == "NL001").unwrap();
        assert!(d.message.contains("drives its own input"), "{}", d.message);
    }

    #[test]
    fn ff_in_the_path_breaks_the_loop() {
        let mut n = Netlist::new("counter_bit");
        let clk = n.net("clk");
        let q = n.net("q");
        let d = n.net("d");
        n.add_clock(clk);
        n.add_output(q);
        n.add_cell("inv", CellKind::Not, vec![q], d);
        n.add_cell(
            "ff",
            CellKind::Dff {
                clock: clk,
                init: false,
            },
            vec![d],
            q,
        );
        assert!(!codes(&lint_netlist(&n)).contains(&"NL001"));
    }

    #[test]
    fn two_distinct_loops_both_reported() {
        let mut n = Netlist::new("twoloops");
        let a = n.net("a");
        let b = n.net("b");
        let c = n.net("c");
        let d = n.net("d");
        n.add_output(a);
        n.add_output(c);
        n.add_cell("g1", CellKind::Not, vec![a], b);
        n.add_cell("g2", CellKind::Not, vec![b], a);
        n.add_cell("g3", CellKind::Not, vec![c], d);
        n.add_cell("g4", CellKind::Not, vec![d], c);
        let diags = lint_netlist(&n);
        assert_eq!(codes(&diags).iter().filter(|c| **c == "NL001").count(), 2);
    }

    #[test]
    fn multiply_driven_net_reports_nl002_with_both_drivers() {
        let mut n = clean();
        let a = n.find_net("a").unwrap();
        let w = n.find_net("w").unwrap();
        n.add_cell("g2", CellKind::Not, vec![a], w);
        let diags = lint_netlist(&n);
        let d = diags.iter().find(|d| d.code == "NL002").unwrap();
        assert_eq!(d.severity, Severity::Deny);
        assert_eq!(d.notes.len(), 2, "{:?}", d.notes);
    }

    #[test]
    fn cell_driving_primary_input_reports_nl002() {
        let mut n = clean();
        let a = n.find_net("a").unwrap();
        let b = n.find_net("b").unwrap();
        n.add_cell("bad", CellKind::Not, vec![b], a);
        let diags = lint_netlist(&n);
        let d = diags.iter().find(|d| d.code == "NL002").unwrap();
        assert!(d.message.contains("primary input"), "{}", d.message);
    }

    #[test]
    fn undriven_read_net_is_deny_unused_net_is_warn_dangling_is_info() {
        let mut n = clean();
        let ghost = n.net("ghost");
        let dead = n.net("dead");
        let limbo = n.net("limbo");
        let y = n.net("y");
        n.add_output(y);
        let b = n.find_net("b").unwrap();
        n.add_cell("g2", CellKind::And, vec![ghost, b], y);
        n.add_cell("g3", CellKind::Not, vec![b], dead);
        let _ = limbo; // interned, never wired
        let diags = lint_netlist(&n);
        let find = |name: &str| {
            diags
                .iter()
                .find(|d| d.code == "NL003" && d.subject.contains(name))
                .unwrap_or_else(|| panic!("no NL003 for {name}: {diags:?}"))
        };
        assert_eq!(find("ghost").severity, Severity::Deny);
        assert_eq!(find("dead").severity, Severity::Warn);
        assert_eq!(find("limbo").severity, Severity::Info);
    }

    #[test]
    fn undeclared_clock_net_warns() {
        let mut n = Netlist::new("softclock");
        let c = n.net("c");
        let d = n.net("d");
        let q = n.net("q");
        n.add_input(c); // an input, but not registered as a clock
        n.add_input(d);
        n.add_output(q);
        n.add_cell(
            "ff",
            CellKind::Dff {
                clock: c,
                init: false,
            },
            vec![d],
            q,
        );
        let diags = lint_netlist(&n);
        assert!(diags
            .iter()
            .any(|d| d.code == "NL003" && d.message.contains("not a declared clock")));
    }
}
