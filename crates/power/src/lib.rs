//! # fpga-power
//!
//! PowerModel: the flow's power estimator (after Poon/Yan/Wilton's
//! flexible FPGA power model, reference [14] of the paper). Combines:
//!
//! * **switching activity** — Monte-Carlo logic simulation of the mapped
//!   netlist (`fpga_netlist::sim::activity_estimate`);
//! * **capacitance** — the per-structure capacitances extracted from the
//!   transistor-level cell designs (`fpga_cells::caps::ClbCaps`) and the
//!   routing capacitance of the actual routed trees;
//! * **the platform's clocking strategy** — double-edge-triggered FFs run
//!   the clock network at half frequency for the same data rate (§3.1),
//!   and clock gating scales the clock power by the enabled fraction.
//!
//! Reported components follow the tool in the paper: dynamic, short-
//! circuit, and leakage power.

use fpga_cells::caps::ClbCaps;
use fpga_cells::tech::Tech;
use fpga_netlist::sim::activity_estimate;
use fpga_pack::Clustering;
use fpga_route::rrgraph::RrGraph;
use fpga_route::RouteResult;

/// Estimation options.
#[derive(Clone, Debug)]
pub struct PowerOptions {
    /// Data rate (effective cycle frequency), Hz.
    pub frequency: f64,
    /// Monte-Carlo cycles for activity estimation.
    pub activity_cycles: usize,
    pub seed: u64,
    /// Clock frequency relative to the data rate: 0.5 for the platform's
    /// double-edge-triggered FFs, 1.0 for a single-edge baseline.
    pub clock_ratio: f64,
    /// Fraction of clock-gated cycles where a CLB's clock is enabled
    /// (1.0 = gating disabled / always active).
    pub clock_enable_fraction: f64,
    /// Short-circuit power as a fraction of dynamic power.
    pub sc_fraction: f64,
    /// Leakage per transistor (W).
    pub leak_per_tx: f64,
}

impl Default for PowerOptions {
    fn default() -> Self {
        PowerOptions {
            frequency: 100e6,
            activity_cycles: 1000,
            seed: 42,
            clock_ratio: 0.5, // DETFF platform
            clock_enable_fraction: 1.0,
            sc_fraction: 0.10,
            leak_per_tx: 0.05e-9,
        }
    }
}

/// Power report (watts).
#[derive(Clone, Copy, Debug, Default)]
pub struct PowerReport {
    pub logic_dynamic: f64,
    pub routing_dynamic: f64,
    pub clock_dynamic: f64,
    pub short_circuit: f64,
    pub leakage: f64,
}

impl PowerReport {
    pub fn dynamic(&self) -> f64 {
        self.logic_dynamic + self.routing_dynamic + self.clock_dynamic
    }

    pub fn total(&self) -> f64 {
        self.dynamic() + self.short_circuit + self.leakage
    }

    /// Formatted per-component table (mW).
    pub fn table(&self) -> String {
        let mw = 1e3;
        format!(
            "logic    {:8.4} mW\nrouting  {:8.4} mW\nclock    {:8.4} mW\nshort-ckt{:8.4} mW\nleakage  {:8.4} mW\nTOTAL    {:8.4} mW\n",
            self.logic_dynamic * mw,
            self.routing_dynamic * mw,
            self.clock_dynamic * mw,
            self.short_circuit * mw,
            self.leakage * mw,
            self.total() * mw
        )
    }

    /// Exact binary form (IEEE-754 bit patterns, never float text) for
    /// the flow server's durable artifact store.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = fpga_netlist::ByteWriter::new();
        w.f64(self.logic_dynamic);
        w.f64(self.routing_dynamic);
        w.f64(self.clock_dynamic);
        w.f64(self.short_circuit);
        w.f64(self.leakage);
        w.into_bytes()
    }

    /// Inverse of [`PowerReport::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> fpga_netlist::CodecResult<PowerReport> {
        let mut r = fpga_netlist::ByteReader::new(bytes);
        let report = PowerReport {
            logic_dynamic: r.f64()?,
            routing_dynamic: r.f64()?,
            clock_dynamic: r.f64()?,
            short_circuit: r.f64()?,
            leakage: r.f64()?,
        };
        r.finish()?;
        Ok(report)
    }
}

/// Estimate power for a packed + routed design.
///
/// `routing` may be `None` for a pre-route estimate (placement-level
/// wirelength is then approximated from the clustering's external nets).
pub fn estimate(
    clustering: &Clustering,
    routing: Option<(&RouteResult, &RrGraph)>,
    tech: &Tech,
    caps: &ClbCaps,
    opts: &PowerOptions,
) -> Result<PowerReport, String> {
    let nl = &clustering.netlist;
    let (_, density) =
        activity_estimate(nl, opts.activity_cycles, opts.seed).map_err(|e| e.to_string())?;
    let v2 = tech.vdd * tech.vdd;
    let f = opts.frequency;

    // The capacitance summary is extracted for the reference CLB
    // (K = 4, N = 5, 17:1 crossbar). Scale the architecture-dependent
    // pieces for ablations over K and N: the crossbar mux width grows
    // with I + N, the LUT pass tree with 2^K - 1, and the local clock
    // network with the cluster size.
    let arch = &clustering.arch;
    // Mux width scales superlinearly (wider muxes also need deeper
    // select trees); the LUT pass tree scales sublinearly (shared
    // levels dominate). Exponents calibrated against the §3.1 design
    // exploration.
    let xbar_scale = (arch.crossbar_mux_width() as f64 / 17.0).powf(1.3);
    let lut_tree_scale = (((1usize << arch.lut_k) - 1) as f64 / 15.0).powf(0.75);
    let c_lut_input = caps.lut_input * xbar_scale;
    let c_lut_internal = caps.lut_internal * lut_tree_scale;
    let c_clock_network = caps.clock_network * arch.cluster_size as f64 / 5.0;

    // --- Logic power: LUT + FF internals and cluster-local wiring.
    let mut logic = 0.0;
    for (bi, ble) in clustering.bles.iter().enumerate() {
        let _ = bi;
        let out_density = density[ble.output.index()];
        if let Some(lut) = ble.lut {
            let cell = &nl.cells[lut.index()];
            // Inputs switch the crossbar + LUT select lines.
            for &inp in &cell.inputs {
                logic += 0.5 * f * v2 * density[inp.index()] * c_lut_input;
            }
            logic += 0.5 * f * v2 * out_density * c_lut_internal;
        }
        if ble.ff.is_some() {
            logic += 0.5 * f * v2 * out_density * caps.ff_internal;
        }
        logic += 0.5 * f * v2 * out_density * caps.ble_output;
    }

    // --- Routing power: capacitance of routed trees x driver activity.
    let mut routing_p = 0.0;
    match routing {
        Some((result, _graph)) => {
            for net in &result.nets {
                let d = density[net.net.index()];
                let segments = net.wirelength(_graph) as f64;
                let cap = segments * (caps.wire_per_tile + 2.0 * caps.switch_junction)
                    + net.sinks.len() as f64 * c_lut_input.max(caps.io_pad * 0.2);
                routing_p += 0.5 * f * v2 * d * cap;
            }
        }
        None => {
            // Pre-route estimate: one tile of wire per external net terminal.
            for net in clustering.external_nets() {
                if nl.clocks.contains(&net) {
                    continue;
                }
                let d = density[net.index()];
                let fanout = clustering
                    .clusters
                    .iter()
                    .filter(|c| c.inputs.contains(&net))
                    .count()
                    .max(1);
                let cap = (fanout as f64 + 1.0) * (caps.wire_per_tile + 2.0 * caps.switch_junction);
                routing_p += 0.5 * f * v2 * d * cap;
            }
        }
    }
    // Primary IO loads.
    for &po in &nl.outputs {
        routing_p += 0.5 * f * v2 * density[po.index()] * caps.io_pad;
    }

    // --- Clock power: the spine plus each cluster's local network. The
    // clock toggles twice per period, hence f (not f/2); DETFFs halve the
    // clock frequency (clock_ratio), and gating scales by enabled time.
    let f_clk = f * opts.clock_ratio;
    let n_clusters = clustering
        .clusters
        .iter()
        .filter(|c| c.clock.is_some())
        .count() as f64;
    let spine_cap = n_clusters * caps.wire_per_tile * 0.5;
    let local_cap = n_clusters * c_clock_network
        + clustering.bles.iter().filter(|b| b.ff.is_some()).count() as f64 * caps.ff_clock_pin;
    let clock = f_clk * v2 * (spine_cap + local_cap * opts.clock_enable_fraction);

    // --- Leakage: transistor census.
    let tx_per_ble = 16 * 2 /* LUT cells */ + 30 /* LUT mux+restore */ + 24 /* DETFF */ + 8;
    let tx_per_cluster_overhead =
        clustering.arch.crossbar_mux_width() * clustering.arch.lut_k * 2 + 40;
    let tx_count =
        clustering.bles.len() * tx_per_ble + clustering.clusters.len() * tx_per_cluster_overhead;
    let leakage = tx_count as f64 * opts.leak_per_tx;

    let dynamic = logic + routing_p + clock;
    Ok(PowerReport {
        logic_dynamic: logic,
        routing_dynamic: routing_p,
        clock_dynamic: clock,
        short_circuit: dynamic * opts.sc_fraction,
        leakage,
    })
}

/// The DETFF clock-power advantage: ratio of clock power between a
/// single-edge-triggered baseline and the platform's DET clocking, all
/// else equal.
pub fn det_clock_saving(
    clustering: &Clustering,
    tech: &Tech,
    caps: &ClbCaps,
    opts: &PowerOptions,
) -> Result<f64, String> {
    let det = estimate(clustering, None, tech, caps, opts)?;
    let mut set_opts = opts.clone();
    set_opts.clock_ratio = 1.0;
    let set = estimate(clustering, None, tech, caps, &set_opts)?;
    if set.clock_dynamic == 0.0 {
        return Ok(0.0);
    }
    Ok(1.0 - det.clock_dynamic / set.clock_dynamic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_arch::ClbArch;
    use fpga_netlist::ir::{CellKind as CK, Netlist};

    fn clustering(n: usize) -> Clustering {
        let mut nl = Netlist::new("p");
        let clk = nl.net("clk");
        nl.add_clock(clk);
        let a = nl.net("a");
        nl.add_input(a);
        let mut prev = a;
        for i in 0..n {
            let d = nl.net(&format!("d{i}"));
            let q = nl.net(&format!("q{i}"));
            nl.add_cell(
                &format!("l{i}"),
                CK::Lut {
                    k: 2,
                    truth: 0b0110,
                },
                vec![prev, a],
                d,
            );
            nl.add_cell(
                &format!("f{i}"),
                CK::Dff {
                    clock: clk,
                    init: false,
                },
                vec![d],
                q,
            );
            prev = q;
        }
        nl.add_output(prev);
        fpga_pack::pack(&nl, &ClbArch::paper_default()).unwrap()
    }

    #[test]
    fn report_components_positive_and_scaled() {
        let c = clustering(20);
        let tech = Tech::stm018();
        let caps = ClbCaps::from_designs(&tech);
        let r = estimate(&c, None, &tech, &caps, &PowerOptions::default()).unwrap();
        assert!(r.logic_dynamic > 0.0);
        assert!(r.routing_dynamic > 0.0);
        assert!(r.clock_dynamic > 0.0);
        assert!(r.short_circuit > 0.0);
        assert!(r.leakage > 0.0);
        // Plausible magnitude for a tiny design at 100 MHz in 0.18 µm:
        // microwatts to a few milliwatts.
        assert!(r.total() > 1e-7 && r.total() < 20e-3, "total {}", r.total());
        let t = r.table();
        assert!(t.contains("TOTAL"));
    }

    #[test]
    fn power_scales_with_frequency() {
        let c = clustering(12);
        let tech = Tech::stm018();
        let caps = ClbCaps::from_designs(&tech);
        let o1 = PowerOptions {
            frequency: 50e6,
            ..PowerOptions::default()
        };
        let o2 = PowerOptions {
            frequency: 200e6,
            ..PowerOptions::default()
        };
        let p1 = estimate(&c, None, &tech, &caps, &o1).unwrap().dynamic();
        let p2 = estimate(&c, None, &tech, &caps, &o2).unwrap().dynamic();
        assert!(
            (p2 / p1 - 4.0).abs() < 0.01,
            "dynamic power linear in f: {}",
            p2 / p1
        );
    }

    #[test]
    fn det_clocking_halves_clock_power() {
        let c = clustering(12);
        let tech = Tech::stm018();
        let caps = ClbCaps::from_designs(&tech);
        let saving = det_clock_saving(&c, &tech, &caps, &PowerOptions::default()).unwrap();
        assert!(
            (saving - 0.5).abs() < 1e-9,
            "DETFF halves clock power, got {saving}"
        );
    }

    #[test]
    fn clock_gating_scales_clock_power() {
        let c = clustering(12);
        let tech = Tech::stm018();
        let caps = ClbCaps::from_designs(&tech);
        let gated = PowerOptions {
            clock_enable_fraction: 0.3,
            ..PowerOptions::default()
        };
        let full = estimate(&c, None, &tech, &caps, &PowerOptions::default()).unwrap();
        let g = estimate(&c, None, &tech, &caps, &gated).unwrap();
        assert!(g.clock_dynamic < full.clock_dynamic);
        assert!(g.clock_dynamic > 0.2 * full.clock_dynamic);
    }

    #[test]
    fn routed_design_power_uses_wirelength() {
        use fpga_arch::device::Device;
        use fpga_arch::Architecture;
        use fpga_place::{AnnealingPlacer, PlaceConfig, PlaceEngine};
        use fpga_route::rrgraph::RrGraph;
        use fpga_route::{PathFinderRouter, RouteConfig, RouteEngine};
        let c = clustering(15);
        let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 4);
        let p = AnnealingPlacer::new(PlaceConfig::new().seed(1).inner_num(1.5))
            .place(&c, device)
            .unwrap();
        let g = RrGraph::build(&p.device, 10);
        let r = PathFinderRouter::new(RouteConfig::new())
            .route(&c, &p, &g)
            .unwrap();
        let tech = Tech::stm018();
        let caps = ClbCaps::from_designs(&tech);
        let rep = estimate(&c, Some((&r, &g)), &tech, &caps, &PowerOptions::default()).unwrap();
        assert!(rep.routing_dynamic > 0.0);
    }
}
