//! Measurement helpers shared by the experiment harnesses: energy/delay
//! extraction from transient results and the figure-of-merit products the
//! paper reports (energy·delay, energy·delay·area).

use crate::mna::TranResult;
use crate::units::{to_fj, to_ps};
use crate::wave::{worst_delay, Edge, Waveform};
use crate::NodeId;

/// An (energy, delay) measurement with the derived products, in the units
/// the paper uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyDelay {
    /// Total supply energy (fJ).
    pub energy_fj: f64,
    /// Worst-case propagation delay (ps).
    pub delay_ps: f64,
}

impl EnergyDelay {
    /// Energy-delay product in fJ·ps (the unit of Table 1 is fJ·ps scaled;
    /// only relative comparisons matter).
    pub fn edp(&self) -> f64 {
        self.energy_fj * self.delay_ps
    }
}

/// Energy, delay and area with the triple product used in Figures 8–10.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyDelayArea {
    pub energy_fj: f64,
    pub delay_ps: f64,
    /// Area in units of minimum-width transistor areas.
    pub area_min_tx: f64,
}

impl EnergyDelayArea {
    /// The energy·delay·area product (arbitrary consistent units).
    pub fn eda(&self) -> f64 {
        self.energy_fj * self.delay_ps * self.area_min_tx
    }
}

/// Extract supply energy (fJ) and worst clock-to-output delay (ps) from a
/// transient run of a clocked cell.
///
/// * `clk` — the clock node (both edges are considered: these are DET FFs),
/// * `out` — the output node,
/// * `threshold` — measurement threshold, typically VDD/2,
/// * `window` — maximum plausible propagation delay; arrivals later than
///   this are treated as responses to a later edge.
pub fn clocked_cell_measure(
    res: &TranResult,
    clk: NodeId,
    out: NodeId,
    threshold: f64,
    window: f64,
) -> EnergyDelay {
    let energy_fj = to_fj(res.supply_energy());
    let delay = worst_delay(
        res.voltage(clk),
        Edge::Any,
        res.voltage(out),
        threshold,
        window,
    )
    .unwrap_or(0.0);
    EnergyDelay {
        energy_fj,
        delay_ps: to_ps(delay),
    }
}

/// Count rail-to-rail transitions of a node (crossings of `threshold`).
pub fn transition_count(wave: &Waveform, threshold: f64) -> usize {
    wave.crossings(threshold, Edge::Any).len()
}

/// Average power (W) over the simulated interval given total energy (J).
pub fn average_power(energy_j: f64, span_s: f64) -> f64 {
    if span_s <= 0.0 {
        0.0
    } else {
        energy_j / span_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edp_and_eda_products() {
        let ed = EnergyDelay {
            energy_fj: 10.0,
            delay_ps: 100.0,
        };
        assert!((ed.edp() - 1000.0).abs() < 1e-12);
        let eda = EnergyDelayArea {
            energy_fj: 2.0,
            delay_ps: 3.0,
            area_min_tx: 4.0,
        };
        assert!((eda.eda() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn transition_counting() {
        let w = Waveform::from_series(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0.0, 1.8, 0.0, 1.8, 1.8]);
        assert_eq!(transition_count(&w, 0.9), 3);
    }

    #[test]
    fn average_power_guards_zero_span() {
        assert_eq!(average_power(1.0, 0.0), 0.0);
        assert!((average_power(2e-15, 1e-9) - 2e-6).abs() < 1e-20);
    }
}
