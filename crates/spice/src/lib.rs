//! # fpga-spice
//!
//! Circuit-simulation substrate for the FPGA platform experiments of the
//! paper *"An Integrated FPGA Design Framework"* (IPPS 2004).
//!
//! The paper's circuit results (Tables 1–3, Figures 8–10) were obtained with
//! Cadence simulations in an STM 0.18 µm design kit. Neither is available
//! here, so this crate provides two engines that reproduce the physics that
//! drives the paper's *relative* conclusions:
//!
//! * [`mna`] — a transistor-level transient simulator based on Modified
//!   Nodal Analysis with a Level-1 (square-law) MOSFET model, Newton–Raphson
//!   iteration, and backward-Euler/trapezoidal integration. Used for the
//!   flip-flop and clock-gating experiments (Tables 1–3) where the internal
//!   switching of latches matters.
//! * [`switchlevel`] — a deterministic switch-level RC engine (Elmore delay,
//!   CV² energy) used for the large interconnect sizing sweeps of
//!   Figures 8–10, where thousands of configurations are evaluated.
//!
//! Both engines share the [`circuit`] netlist representation and the
//! [`wave`] waveform/measurement utilities.
//!
//! ## Example: RC charge
//!
//! ```
//! use fpga_spice::circuit::{Circuit, Stimulus};
//! use fpga_spice::mna::{Tran, TranOpts};
//!
//! let mut c = Circuit::new();
//! let vin = c.node("in");
//! c.vsource("V1", vin, Circuit::GND, Stimulus::dc(1.8));
//! let out = c.node("out");
//! c.resistor("R1", vin, out, 1e3);
//! c.capacitor("C1", out, Circuit::GND, 1e-12);
//! let res = Tran::new(TranOpts::new(10e-12, 20e-9)).run(&c).unwrap();
//! let v_end = res.voltage(out).last_value();
//! assert!((v_end - 1.8).abs() < 1e-3); // fully charged after 20 RC
//! ```

pub mod circuit;
pub mod linalg;
pub mod measure;
pub mod mna;
pub mod mosfet;
pub mod switchlevel;
pub mod units;
pub mod wave;

pub use circuit::{Circuit, DeviceKind, NodeId, Stimulus};
pub use mna::{Tran, TranOpts, TranResult};
pub use mosfet::{MosModel, MosType};
pub use wave::Waveform;

/// Errors produced by the simulation engines.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// Newton–Raphson failed to converge at the given time point.
    NoConvergence {
        time: f64,
        worst_node: String,
        residual: f64,
    },
    /// The MNA matrix was singular (typically a floating node or a loop of
    /// voltage sources).
    SingularMatrix { time: f64 },
    /// A device referenced a node that does not exist in the circuit.
    BadNode { device: String },
    /// Invalid analysis or device parameter.
    BadParameter(String),
}

impl std::fmt::Display for SpiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpiceError::NoConvergence {
                time,
                worst_node,
                residual,
            } => write!(
                f,
                "transient analysis failed to converge at t={time:.3e}s \
                 (worst node '{worst_node}', residual {residual:.3e})"
            ),
            SpiceError::SingularMatrix { time } => {
                write!(f, "singular MNA matrix at t={time:.3e}s (floating node?)")
            }
            SpiceError::BadNode { device } => {
                write!(f, "device '{device}' references an unknown node")
            }
            SpiceError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
        }
    }
}

impl std::error::Error for SpiceError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, SpiceError>;
