//! Transistor-level circuit netlist shared by both simulation engines.
//!
//! A [`Circuit`] is a flat bag of devices connected to named nodes. Node 0
//! is ground. The builder methods return device indices so experiment
//! harnesses can refer back to particular elements (e.g. the VDD source
//! whose current is integrated for energy).

use crate::mosfet::{MosModel, MosType};
use crate::units::{L_MIN, W_MIN};

/// Index of a circuit node. `NodeId(0)` is ground.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
    #[inline]
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Index of a device within its circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DeviceId(pub u32);

/// Independent-source waveform description.
#[derive(Clone, Debug, PartialEq)]
pub enum Stimulus {
    /// Constant voltage.
    Dc(f64),
    /// Periodic pulse: starts at `v1`, after `delay` ramps to `v2` over
    /// `rise`, stays for `width`, ramps back over `fall`, repeats with
    /// `period` (0 disables repetition).
    Pulse {
        v1: f64,
        v2: f64,
        delay: f64,
        rise: f64,
        fall: f64,
        width: f64,
        period: f64,
    },
    /// Piecewise-linear: (time, value) points, held constant outside.
    Pwl(Vec<(f64, f64)>),
}

impl Stimulus {
    pub fn dc(v: f64) -> Self {
        Stimulus::Dc(v)
    }

    /// A square-ish clock from 0 to `vdd` with the given period, 50 % duty
    /// cycle and `edge` rise/fall time, starting low.
    pub fn clock(vdd: f64, period: f64, edge: f64, delay: f64) -> Self {
        Stimulus::Pulse {
            v1: 0.0,
            v2: vdd,
            delay,
            rise: edge,
            fall: edge,
            width: period / 2.0 - edge,
            period,
        }
    }

    /// Build a PWL from a bit pattern: each bit occupies `bit_time`, with
    /// `edge` transition time, levels 0/`vdd`. Useful to reproduce the
    /// Fig. 4 input sequences.
    pub fn bits(pattern: &[u8], vdd: f64, bit_time: f64, edge: f64) -> Self {
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(pattern.len() * 2 + 1);
        let lvl = |b: u8| if b != 0 { vdd } else { 0.0 };
        let first = pattern.first().copied().unwrap_or(0);
        pts.push((0.0, lvl(first)));
        for i in 1..pattern.len() {
            if pattern[i] != pattern[i - 1] {
                let t = i as f64 * bit_time;
                pts.push((t, lvl(pattern[i - 1])));
                pts.push((t + edge, lvl(pattern[i])));
            }
        }
        Stimulus::Pwl(pts)
    }

    /// Evaluate the stimulus at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Stimulus::Dc(v) => *v,
            Stimulus::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let mut tt = t - delay;
                if *period > 0.0 {
                    tt %= period;
                }
                if tt < *rise {
                    v1 + (v2 - v1) * tt / rise.max(1e-18)
                } else if tt < rise + width {
                    *v2
                } else if tt < rise + width + fall {
                    v2 + (v1 - v2) * (tt - rise - width) / fall.max(1e-18)
                } else {
                    *v1
                }
            }
            Stimulus::Pwl(pts) => {
                if pts.is_empty() {
                    return 0.0;
                }
                if t <= pts[0].0 {
                    return pts[0].1;
                }
                if t >= pts[pts.len() - 1].0 {
                    return pts[pts.len() - 1].1;
                }
                let idx = pts.partition_point(|&(pt, _)| pt <= t);
                let (t0, v0) = pts[idx - 1];
                let (t1, v1) = pts[idx];
                v0 + (v1 - v0) * (t - t0) / (t1 - t0)
            }
        }
    }
}

/// The device zoo.
#[derive(Clone, Debug, PartialEq)]
pub enum DeviceKind {
    Resistor {
        p: NodeId,
        n: NodeId,
        ohms: f64,
    },
    Capacitor {
        p: NodeId,
        n: NodeId,
        farads: f64,
    },
    VSource {
        p: NodeId,
        n: NodeId,
        stim: Stimulus,
    },
    Mosfet {
        d: NodeId,
        g: NodeId,
        s: NodeId,
        model: MosModel,
        w: f64,
        l: f64,
    },
}

/// One device instance.
#[derive(Clone, Debug)]
pub struct Device {
    pub name: String,
    pub kind: DeviceKind,
}

/// A flat transistor-level circuit.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    pub devices: Vec<Device>,
    /// Optional initial conditions: (node, volts) applied at t = 0.
    pub initial_conditions: Vec<(NodeId, f64)>,
}

impl Circuit {
    /// The ground node.
    pub const GND: NodeId = NodeId(0);

    pub fn new() -> Self {
        Circuit {
            node_names: vec!["gnd".to_string()],
            devices: Vec::new(),
            initial_conditions: Vec::new(),
        }
    }

    /// Create (or fetch, by exact name match) a named node.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(idx) = self.node_names.iter().position(|n| n == name) {
            return NodeId(idx as u32);
        }
        self.node_names.push(name.to_string());
        NodeId((self.node_names.len() - 1) as u32)
    }

    /// Create a fresh anonymous node with a unique generated name.
    pub fn fresh_node(&mut self, prefix: &str) -> NodeId {
        let name = format!("{prefix}${}", self.node_names.len());
        self.node_names.push(name);
        NodeId((self.node_names.len() - 1) as u32)
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.index()]
    }

    /// Look up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }

    /// Set the initial (t = 0) voltage of a node.
    pub fn ic(&mut self, node: NodeId, volts: f64) {
        self.initial_conditions.push((node, volts));
    }

    pub fn resistor(&mut self, name: &str, p: NodeId, n: NodeId, ohms: f64) -> DeviceId {
        self.push(name, DeviceKind::Resistor { p, n, ohms })
    }

    pub fn capacitor(&mut self, name: &str, p: NodeId, n: NodeId, farads: f64) -> DeviceId {
        self.push(name, DeviceKind::Capacitor { p, n, farads })
    }

    pub fn vsource(&mut self, name: &str, p: NodeId, n: NodeId, stim: Stimulus) -> DeviceId {
        self.push(name, DeviceKind::VSource { p, n, stim })
    }

    /// Add a MOSFET with explicit geometry (metres).
    #[allow(clippy::too_many_arguments)] // terminal list mirrors the schematic
    pub fn mosfet(
        &mut self,
        name: &str,
        t: MosType,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        w: f64,
        l: f64,
    ) -> DeviceId {
        self.push(
            name,
            DeviceKind::Mosfet {
                d,
                g,
                s,
                model: MosModel::for_type(t),
                w,
                l,
            },
        )
    }

    /// Add a MOSFET sized as a multiple of the minimum contacted width at
    /// minimum length — the sizing convention used throughout the paper.
    pub fn mosfet_x(
        &mut self,
        name: &str,
        t: MosType,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        w_mult: f64,
    ) -> DeviceId {
        self.mosfet(name, t, d, g, s, w_mult * W_MIN, L_MIN)
    }

    fn push(&mut self, name: &str, kind: DeviceKind) -> DeviceId {
        self.devices.push(Device {
            name: name.to_string(),
            kind,
        });
        DeviceId((self.devices.len() - 1) as u32)
    }

    /// Total gate + junction + explicit capacitance hanging on each node.
    /// Used by the switch-level engine and for sanity checks.
    pub fn node_capacitance(&self) -> Vec<f64> {
        let mut c = vec![0.0; self.node_count()];
        for dev in &self.devices {
            match &dev.kind {
                DeviceKind::Capacitor { p, n, farads } => {
                    c[p.index()] += farads;
                    c[n.index()] += farads;
                }
                DeviceKind::Mosfet {
                    d,
                    g,
                    s,
                    model,
                    w,
                    l,
                } => {
                    c[g.index()] += model.cgate(*w, *l);
                    c[d.index()] += model.cjunction(*w);
                    c[s.index()] += model.cjunction(*w);
                }
                _ => {}
            }
        }
        c
    }

    /// Count devices of each broad class: (resistors, capacitors, sources,
    /// mosfets).
    pub fn device_census(&self) -> (usize, usize, usize, usize) {
        let mut r = 0;
        let mut c = 0;
        let mut v = 0;
        let mut m = 0;
        for d in &self.devices {
            match d.kind {
                DeviceKind::Resistor { .. } => r += 1,
                DeviceKind::Capacitor { .. } => c += 1,
                DeviceKind::VSource { .. } => v += 1,
                DeviceKind::Mosfet { .. } => m += 1,
            }
        }
        (r, c, v, m)
    }

    /// Total transistor gate area (W x L summed), a proxy for silicon area
    /// used in the energy-delay-area explorations.
    pub fn transistor_area(&self) -> f64 {
        self.devices
            .iter()
            .filter_map(|d| match d.kind {
                DeviceKind::Mosfet { w, l, .. } => Some(w * l),
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_interning() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_ne!(a, b);
        assert_eq!(c.node("a"), a);
        assert_eq!(c.node_count(), 3); // gnd, a, b
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("b"), Some(b));
        assert_eq!(c.find_node("zzz"), None);
    }

    #[test]
    fn fresh_nodes_are_unique() {
        let mut c = Circuit::new();
        let x = c.fresh_node("n");
        let y = c.fresh_node("n");
        assert_ne!(x, y);
    }

    #[test]
    fn pulse_stimulus_shape() {
        let s = Stimulus::Pulse {
            v1: 0.0,
            v2: 1.8,
            delay: 1e-9,
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: 0.9e-9,
            period: 2e-9,
        };
        assert_eq!(s.value_at(0.0), 0.0);
        assert!((s.value_at(1.05e-9) - 0.9).abs() < 1e-9); // mid-rise
        assert_eq!(s.value_at(1.5e-9), 1.8); // plateau
        assert_eq!(s.value_at(2.5e-9), 0.0); // back low
        assert_eq!(s.value_at(3.5e-9), 1.8); // next period plateau
    }

    #[test]
    fn clock_starts_low_and_toggles() {
        let s = Stimulus::clock(1.8, 2e-9, 50e-12, 0.0);
        assert_eq!(s.value_at(0.0), 0.0);
        assert_eq!(s.value_at(0.5e-9), 1.8);
        assert!(s.value_at(1.5e-9) < 0.1);
    }

    #[test]
    fn bits_stimulus() {
        let s = Stimulus::bits(&[0, 1, 1, 0], 1.8, 1e-9, 0.1e-9);
        assert_eq!(s.value_at(0.5e-9), 0.0);
        assert_eq!(s.value_at(1.5e-9), 1.8);
        assert_eq!(s.value_at(2.5e-9), 1.8);
        assert_eq!(s.value_at(3.5e-9), 0.0);
    }

    #[test]
    fn pwl_holds_endpoints() {
        let s = Stimulus::Pwl(vec![(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(s.value_at(0.0), 2.0);
        assert_eq!(s.value_at(2.0), 3.0);
        assert_eq!(s.value_at(9.0), 4.0);
    }

    #[test]
    fn census_and_area() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let a = c.node("a");
        let y = c.node("y");
        c.vsource("V1", vdd, Circuit::GND, Stimulus::dc(1.8));
        c.mosfet_x("MP", MosType::Pmos, y, a, vdd, 2.0);
        c.mosfet_x("MN", MosType::Nmos, y, a, Circuit::GND, 1.0);
        c.capacitor("CL", y, Circuit::GND, 1e-15);
        let (r, cc, v, m) = c.device_census();
        assert_eq!((r, cc, v, m), (0, 1, 1, 2));
        assert!(c.transistor_area() > 0.0);
        let caps = c.node_capacitance();
        assert!(caps[a.index()] > 0.0, "gate load on input");
        assert!(caps[y.index()] > 1e-15, "junctions + explicit load");
    }
}
