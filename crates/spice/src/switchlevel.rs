//! Switch-level RC engine: Elmore delay and CV² energy on RC trees.
//!
//! The interconnect sizing sweeps of Figures 8–10 evaluate hundreds of
//! (switch width, wire geometry, wire length) combinations. At that scale a
//! full transient run per point is wasteful: once the routing switches are
//! reduced to their on-resistance and parasitic capacitance, a driven net is
//! an RC tree, for which the Elmore metric gives the 50 % delay and the total
//! switched capacitance gives the transition energy. This is the same
//! abstraction VPR-class tools use for interconnect, and it was validated
//! against the [`crate::mna`] engine (see `tests/mna_vs_switchlevel.rs` at
//! the workspace root).

/// Index of a node in an [`RcTree`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RcNodeId(pub u32);

#[derive(Clone, Debug)]
struct RcNode {
    cap: f64,
    /// Parent node and the resistance of the edge to it; `None` for root.
    up: Option<(u32, f64)>,
}

/// A rooted RC tree. The root is the driver's output (with the driver's
/// output resistance modelled as the first edge).
#[derive(Clone, Debug, Default)]
pub struct RcTree {
    nodes: Vec<RcNode>,
}

impl RcTree {
    /// Create a tree with a root node of the given capacitance.
    pub fn with_root(cap: f64) -> Self {
        RcTree {
            nodes: vec![RcNode { cap, up: None }],
        }
    }

    /// Root node id.
    pub fn root(&self) -> RcNodeId {
        RcNodeId(0)
    }

    /// Add a node with capacitance `cap`, attached to `parent` through
    /// resistance `r` (ohms).
    pub fn add(&mut self, parent: RcNodeId, r: f64, cap: f64) -> RcNodeId {
        assert!(
            (parent.0 as usize) < self.nodes.len(),
            "parent out of range"
        );
        self.nodes.push(RcNode {
            cap,
            up: Some((parent.0, r)),
        });
        RcNodeId((self.nodes.len() - 1) as u32)
    }

    /// Add extra capacitance to an existing node (fan-in loads, parasitics).
    pub fn add_cap(&mut self, node: RcNodeId, cap: f64) {
        self.nodes[node.0 as usize].cap += cap;
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total capacitance of the tree (F).
    pub fn total_cap(&self) -> f64 {
        self.nodes.iter().map(|n| n.cap).sum()
    }

    /// Downstream capacitance seen through each node (the node's own cap
    /// plus everything below it).
    fn downstream_caps(&self) -> Vec<f64> {
        let n = self.nodes.len();
        let mut cdown: Vec<f64> = self.nodes.iter().map(|nd| nd.cap).collect();
        // Children always have larger indices than parents (construction
        // order), so a reverse sweep accumulates subtrees.
        for i in (1..n).rev() {
            if let Some((p, _)) = self.nodes[i].up {
                cdown[p as usize] += cdown[i];
            }
        }
        cdown
    }

    /// Elmore delay (seconds) from the root to `sink`:
    /// `sum over edges e on the path of R_e * Cdown_e`.
    pub fn elmore_delay(&self, sink: RcNodeId) -> f64 {
        let cdown = self.downstream_caps();
        let mut t = 0.0;
        let mut cur = sink.0 as usize;
        while let Some((p, r)) = self.nodes[cur].up {
            t += r * cdown[cur];
            cur = p as usize;
        }
        t
    }

    /// Worst Elmore delay over all leaves.
    pub fn max_elmore_delay(&self) -> f64 {
        let cdown = self.downstream_caps();
        // Per-node delay computed incrementally root -> leaves.
        let n = self.nodes.len();
        let mut delay = vec![0.0; n];
        let mut worst = 0.0f64;
        for i in 1..n {
            let (p, r) = self.nodes[i].up.unwrap();
            delay[i] = delay[p as usize] + r * cdown[i];
            worst = worst.max(delay[i]);
        }
        worst
    }

    /// Energy drawn from the supply for one full output transition of the
    /// driver (a rail-to-rail swing of every node): `Ctotal * Vdd^2` for the
    /// charging half-cycle. `sc_fraction` adds a short-circuit allowance
    /// (typically 0.05–0.15 in this process class).
    pub fn transition_energy(&self, vdd: f64, sc_fraction: f64) -> f64 {
        self.total_cap() * vdd * vdd * (1.0 + sc_fraction)
    }
}

/// A π-model segment chain for a distributed wire: splits the wire into
/// `sections` RC sections and appends them to the tree, returning the node
/// at the far end.
pub fn append_wire(
    tree: &mut RcTree,
    from: RcNodeId,
    total_r: f64,
    total_c: f64,
    sections: usize,
) -> RcNodeId {
    assert!(sections > 0);
    let rs = total_r / sections as f64;
    let cs = total_c / sections as f64;
    // First section: half cap at the near node.
    tree.add_cap(from, cs / 2.0);
    let mut cur = from;
    for i in 0..sections {
        let c = if i + 1 == sections { cs / 2.0 } else { cs };
        cur = tree.add(cur, rs, c);
    }
    tree.add_cap(cur, 0.0);
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rc_elmore() {
        let mut t = RcTree::with_root(0.0);
        let sink = t.add(t.root(), 1e3, 1e-12);
        assert!((t.elmore_delay(sink) - 1e-9).abs() < 1e-15);
        assert!((t.max_elmore_delay() - 1e-9).abs() < 1e-15);
    }

    #[test]
    fn ladder_elmore_sums_downstream() {
        // R1=1k -> C1=1p -> R2=1k -> C2=1p.
        // Elmore(sink) = R1*(C1+C2) + R2*C2 = 2n + 1n = 3 ns.
        let mut t = RcTree::with_root(0.0);
        let n1 = t.add(t.root(), 1e3, 1e-12);
        let n2 = t.add(n1, 1e3, 1e-12);
        assert!((t.elmore_delay(n2) - 3e-9).abs() < 1e-15);
    }

    #[test]
    fn branch_caps_count_once() {
        // Root -> R -> node with two branch caps; delay to either leaf sees
        // the shared resistance times all downstream cap.
        let mut t = RcTree::with_root(0.0);
        let mid = t.add(t.root(), 1e3, 0.0);
        let a = t.add(mid, 1e3, 1e-12);
        let b = t.add(mid, 2e3, 1e-12);
        let da = t.elmore_delay(a);
        let db = t.elmore_delay(b);
        // Shared edge: 1k * 2p = 2ns. Then private edges.
        assert!((da - (2e-9 + 1e-9)).abs() < 1e-15);
        assert!((db - (2e-9 + 2e-9)).abs() < 1e-15);
        assert!((t.max_elmore_delay() - db).abs() < 1e-15);
    }

    #[test]
    fn wire_splitting_approaches_distributed_limit() {
        // A distributed RC line has delay ~0.5*R*C; a 1-section lumped model
        // overestimates at R*C. More sections converge to ~0.5 RC.
        let r = 10e3;
        let c = 1e-12;
        let one = {
            let mut t = RcTree::with_root(0.0);
            let root = t.root();
            let s = append_wire(&mut t, root, r, c, 1);
            t.elmore_delay(s)
        };
        let many = {
            let mut t = RcTree::with_root(0.0);
            let root = t.root();
            let s = append_wire(&mut t, root, r, c, 32);
            t.elmore_delay(s)
        };
        assert!(one > many);
        let rc = r * c;
        assert!(
            (many - 0.5 * rc).abs() < 0.05 * rc,
            "many = {many}, rc/2 = {}",
            0.5 * rc
        );
        // Total capacitance is preserved by the splitting.
        let mut t = RcTree::with_root(0.0);
        let root = t.root();
        append_wire(&mut t, root, r, c, 7);
        assert!((t.total_cap() - c).abs() < 1e-18);
    }

    #[test]
    fn transition_energy_is_cv2() {
        let mut t = RcTree::with_root(1e-15);
        t.add(t.root(), 1e3, 3e-15);
        let e = t.transition_energy(1.8, 0.0);
        assert!((e - 4e-15 * 1.8 * 1.8).abs() < 1e-20);
        let esc = t.transition_energy(1.8, 0.1);
        assert!(esc > e);
    }
}
