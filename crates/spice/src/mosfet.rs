//! Level-1 (square-law) MOSFET model with channel-length modulation.
//!
//! The experiments in the paper compare circuit alternatives built in the
//! same process, so the absolute accuracy of a BSIM-class model is not
//! needed — what matters is that drive current scales with W/L, that gate
//! and junction capacitance scale with geometry, and that the device turns
//! on and off at a realistic threshold. The Level-1 model captures exactly
//! those effects and keeps the Newton iteration well-behaved.

use serde::{Deserialize, Serialize};

use crate::units;

/// Transistor polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosType {
    Nmos,
    Pmos,
}

/// Device model card for one polarity in the 0.18 µm-class process.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MosModel {
    pub kind: MosType,
    /// Zero-bias threshold voltage (V). Positive for NMOS, negative for PMOS.
    pub vt0: f64,
    /// Transconductance parameter k' = µ·Cox (A/V²).
    pub kp: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
    /// Gate-oxide capacitance per area (F/m²).
    pub cox: f64,
    /// Gate-drain/source overlap capacitance per metre of width (F/m).
    pub cov: f64,
    /// Source/drain junction capacitance per metre of width (F/m).
    pub cj: f64,
    /// Subthreshold leakage per metre of width at Vgs = 0 (A/m).
    pub ileak: f64,
}

impl MosModel {
    /// NMOS card calibrated to a 0.18 µm-class process (VDD = 1.8 V).
    pub fn nmos_018() -> Self {
        MosModel {
            kind: MosType::Nmos,
            vt0: 0.45,
            kp: 3.0e-4,
            lambda: 0.10,
            cox: 8.5e-3,   // 8.5 fF/µm²
            cov: 3.0e-10,  // 0.30 fF/µm
            cj: 9.0e-10,   // 0.90 fF/µm
            ileak: 2.0e-4, // ~56 pA at minimum width
        }
    }

    /// PMOS card: ~2.5x lower mobility than NMOS, as in 0.18 µm CMOS.
    pub fn pmos_018() -> Self {
        MosModel {
            kind: MosType::Pmos,
            vt0: -0.45,
            kp: 1.2e-4,
            lambda: 0.10,
            cox: 8.5e-3,
            cov: 3.0e-10,
            cj: 9.0e-10,
            ileak: 1.0e-4,
        }
    }

    /// Model card for the polarity.
    pub fn for_type(t: MosType) -> Self {
        match t {
            MosType::Nmos => Self::nmos_018(),
            MosType::Pmos => Self::pmos_018(),
        }
    }
}

/// Operating region of the device at a bias point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MosRegion {
    Cutoff,
    Linear,
    Saturation,
}

/// Evaluated large-signal state of a MOSFET at a bias point:
/// drain current plus the small-signal conductances the Newton
/// iteration needs for its companion model.
#[derive(Clone, Copy, Debug, Default)]
pub struct MosEval {
    /// Drain current flowing D -> S for NMOS conventions (A).
    pub ids: f64,
    /// dIds/dVgs (S).
    pub gm: f64,
    /// dIds/dVds (S).
    pub gds: f64,
    /// Operating region (diagnostics).
    pub region_linear: bool,
}

impl MosModel {
    /// Operating region at the bias point, using NMOS-referred voltages.
    pub fn region(&self, vgs: f64, vds: f64) -> MosRegion {
        let (vgs, vds, vt) = self.refer(vgs, vds);
        let vov = vgs - vt;
        if vov <= 0.0 {
            MosRegion::Cutoff
        } else if vds < vov {
            MosRegion::Linear
        } else {
            MosRegion::Saturation
        }
    }

    /// Map device voltages to NMOS-referred quantities. For PMOS we flip
    /// signs so a single set of equations serves both polarities.
    #[inline]
    fn refer(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        match self.kind {
            MosType::Nmos => (vgs, vds, self.vt0),
            MosType::Pmos => (-vgs, -vds, -self.vt0),
        }
    }

    /// Evaluate drain current and derivatives at `(vgs, vds)` for a device
    /// of width `w` and length `l` (metres). `vds` may be negative: the
    /// model treats the more positive terminal as the drain internally
    /// (MOSFETs are symmetric), which keeps pass transistors well-defined.
    pub fn eval(&self, vgs_in: f64, vds_in: f64, w: f64, l: f64) -> MosEval {
        let sign = match self.kind {
            MosType::Nmos => 1.0,
            MosType::Pmos => -1.0,
        };
        // NMOS-referred terminal voltages.
        let mut vgs = sign * vgs_in;
        let mut vds = sign * vds_in;
        // Source/drain swap for reverse conduction (vds < 0): measure the
        // gate from the true source (the lower terminal).
        let swapped = vds < 0.0;
        if swapped {
            vgs -= vds; // vgd becomes the effective vgs
            vds = -vds;
        }
        let beta = self.kp * w / l;
        let vt = match self.kind {
            MosType::Nmos => self.vt0,
            MosType::Pmos => -self.vt0, // NMOS-referred magnitude
        };
        let vov = vgs - vt;
        let (mut ids, mut gm, mut gds);
        if vov <= 0.0 {
            // Smooth cutoff: tiny exponential-ish leakage keeps the Jacobian
            // non-zero which helps NR escape the cutoff region.
            let g0 = 1e-12 * w / l.max(1e-9);
            ids = g0 * vds;
            gm = 0.0;
            gds = g0;
        } else if vds < vov {
            // Linear (triode) region.
            let clm = 1.0 + self.lambda * vds;
            ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
            gm = beta * vds * clm;
            gds = beta * (vov - vds) * clm + beta * (vov * vds - 0.5 * vds * vds) * self.lambda;
        } else {
            // Saturation.
            let clm = 1.0 + self.lambda * vds;
            ids = 0.5 * beta * vov * vov * clm;
            gm = beta * vov * clm;
            gds = 0.5 * beta * vov * vov * self.lambda;
        }
        // Undo the source/drain swap with the exact chain rule:
        // ids_orig = -f(vgs - vds, -vds), so
        //   d ids/d vgs = -gm_eff,
        //   d ids/d vds = gm_eff + gds_eff.
        if swapped {
            ids = -ids;
            let gm_eff = gm;
            let gds_eff = gds;
            gm = -gm_eff;
            gds = gm_eff + gds_eff;
        }
        // Refer back to device polarity. The sign cancels in derivatives
        // (both current and controlling voltages flip together).
        MosEval {
            ids: sign * ids,
            gm,
            gds: gds.max(1e-12),
            region_linear: vds < vov,
        }
    }

    /// Gate capacitance of a `w` x `l` device: intrinsic channel plus both
    /// overlaps (F). Treated as a constant (bias-independent) capacitance,
    /// which is the standard simplification for energy-trend studies.
    pub fn cgate(&self, w: f64, l: f64) -> f64 {
        self.cox * w * l + 2.0 * self.cov * w
    }

    /// Junction (drain or source) capacitance for width `w` (F).
    pub fn cjunction(&self, w: f64) -> f64 {
        self.cj * w
    }

    /// Effective switch on-resistance of the device when fully on, used by
    /// the switch-level engine. A pass transistor passing a rising signal
    /// loses gate drive as its source rises (body effect + Vgs collapse),
    /// so the effective large-signal resistance is several times the small-
    /// signal triode value; the 3.5x factor calibrates a minimum-width pass
    /// device to the ~5-6 kΩ typical of 0.18 µm FPGAs.
    pub fn ron(&self, w: f64, l: f64) -> f64 {
        let vov = units::VDD - self.vt0.abs();
        let beta = self.kp * w / l;
        let r_triode = 1.0 / (beta * vov);
        3.5 * r_triode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{L_MIN, VDD, W_MIN};

    #[test]
    fn nmos_regions() {
        let m = MosModel::nmos_018();
        assert_eq!(m.region(0.0, 1.0), MosRegion::Cutoff);
        assert_eq!(m.region(1.8, 0.1), MosRegion::Linear);
        assert_eq!(m.region(1.0, 1.8), MosRegion::Saturation);
    }

    #[test]
    fn pmos_regions_mirror_nmos() {
        let m = MosModel::pmos_018();
        assert_eq!(m.region(0.0, -1.0), MosRegion::Cutoff);
        assert_eq!(m.region(-1.8, -0.1), MosRegion::Linear);
        assert_eq!(m.region(-1.0, -1.8), MosRegion::Saturation);
    }

    #[test]
    fn current_scales_with_width() {
        let m = MosModel::nmos_018();
        let i1 = m.eval(VDD, VDD, W_MIN, L_MIN).ids;
        let i4 = m.eval(VDD, VDD, 4.0 * W_MIN, L_MIN).ids;
        assert!(i1 > 0.0);
        assert!((i4 / i1 - 4.0).abs() < 0.01, "ratio {}", i4 / i1);
    }

    #[test]
    fn saturation_current_magnitude_is_plausible() {
        // A minimum NMOS in 0.18 µm drives on the order of 100-300 µA/µm.
        let m = MosModel::nmos_018();
        let i = m.eval(VDD, VDD, 1e-6, L_MIN).ids; // 1 µm wide
        assert!(i > 5e-5 && i < 5e-3, "Idsat = {i} A/µm-class device");
    }

    #[test]
    fn pmos_current_is_negative_and_weaker() {
        let n = MosModel::nmos_018();
        let p = MosModel::pmos_018();
        let idn = n.eval(VDD, VDD, W_MIN, L_MIN).ids;
        let idp = p.eval(-VDD, -VDD, W_MIN, L_MIN).ids;
        assert!(idp < 0.0);
        assert!(idn > idp.abs(), "NMOS should out-drive PMOS at equal W");
    }

    #[test]
    fn reverse_conduction_is_antisymmetric_in_sign() {
        let m = MosModel::nmos_018();
        let fwd = m.eval(VDD, 0.3, W_MIN, L_MIN).ids;
        let rev = m.eval(VDD, -0.3, W_MIN, L_MIN).ids;
        assert!(fwd > 0.0);
        assert!(rev < 0.0, "reverse vds must conduct backwards: {rev}");
    }

    #[test]
    fn capacitances_scale_with_geometry() {
        let m = MosModel::nmos_018();
        let c1 = m.cgate(W_MIN, L_MIN);
        let c2 = m.cgate(2.0 * W_MIN, L_MIN);
        assert!(c2 > 1.9 * c1 && c2 < 2.1 * c1);
        assert!(m.cjunction(2.0 * W_MIN) > m.cjunction(W_MIN));
        // A minimum device has a gate cap in the low fF range.
        assert!(c1 > 0.1e-15 && c1 < 5e-15, "cgate = {c1}");
    }

    #[test]
    fn ron_decreases_with_width() {
        let m = MosModel::nmos_018();
        let r1 = m.ron(W_MIN, L_MIN);
        let r10 = m.ron(10.0 * W_MIN, L_MIN);
        assert!((r1 / r10 - 10.0).abs() < 0.2);
        // Minimum-width pass device is several kΩ in this class of process.
        assert!(r1 > 1e3 && r1 < 50e3, "ron = {r1}");
    }

    #[test]
    fn gds_positive_and_derivatives_finite() {
        let m = MosModel::nmos_018();
        for &vgs in &[0.0, 0.3, 0.6, 1.0, 1.8] {
            for &vds in &[-1.8, -0.5, 0.0, 0.5, 1.8] {
                let e = m.eval(vgs, vds, W_MIN, L_MIN);
                assert!(e.gm.is_finite());
                assert!(e.gds > 0.0);
            }
        }
    }

    #[test]
    fn derivatives_match_finite_differences() {
        // The companion-model derivatives must agree with numeric ones,
        // including in the swapped (vds < 0) regime — NR stability depends
        // on it.
        let m = MosModel::nmos_018();
        let h = 1e-6;
        for &vgs in &[0.3, 0.8, 1.3, 1.8] {
            for &vds in &[-1.5, -0.4, 0.2, 0.9, 1.8] {
                let e = m.eval(vgs, vds, W_MIN, L_MIN);
                let dgm = (m.eval(vgs + h, vds, W_MIN, L_MIN).ids
                    - m.eval(vgs - h, vds, W_MIN, L_MIN).ids)
                    / (2.0 * h);
                let dgds = (m.eval(vgs, vds + h, W_MIN, L_MIN).ids
                    - m.eval(vgs, vds - h, W_MIN, L_MIN).ids)
                    / (2.0 * h);
                let scale = dgm.abs().max(dgds.abs()).max(1e-6);
                assert!(
                    (e.gm - dgm).abs() / scale < 0.05,
                    "gm mismatch at vgs={vgs}, vds={vds}: {} vs {}",
                    e.gm,
                    dgm
                );
                assert!(
                    (e.gds - dgds).abs() / scale < 0.05,
                    "gds mismatch at vgs={vgs}, vds={vds}: {} vs {}",
                    e.gds,
                    dgds
                );
            }
        }
    }
}
