//! Transient analysis by Modified Nodal Analysis.
//!
//! Each timestep solves the nonlinear circuit equations with Newton–Raphson
//! iteration. Devices contribute linearized "companion" stamps:
//!
//! * resistors: constant conductance,
//! * capacitors: backward-Euler companion `geq = C/dt`, `Ieq = geq * v_prev`,
//! * voltage sources: an extra branch unknown (the source current),
//! * MOSFETs: `Ids` linearized via `gm`/`gds` at the current NR estimate.
//!
//! A small `gmin` conductance to ground on every node keeps otherwise
//! floating nodes (e.g. dynamic latch internals while all access devices
//! are off) well conditioned. Two robustness measures matter for the
//! bistable latch circuits this crate simulates: NR steps are damped with a
//! limit that tightens as iterations accumulate (breaking limit cycles
//! around the metastable point), and a timestep that still fails to
//! converge is retried as a sequence of shorter sub-steps.

use crate::circuit::{Circuit, DeviceKind, NodeId};
use crate::linalg::{LuSolver, Mat};
use crate::wave::Waveform;
use crate::{Result, SpiceError};

/// Transient analysis options.
#[derive(Clone, Debug)]
pub struct TranOpts {
    /// Fixed timestep (s).
    pub dt: f64,
    /// Stop time (s).
    pub t_stop: f64,
    /// NR convergence tolerance on node voltages (V).
    pub vtol: f64,
    /// Maximum NR iterations per timestep.
    pub max_iters: usize,
    /// Minimum conductance from every node to ground (S).
    pub gmin: f64,
    /// Largest voltage update applied per NR iteration (V); the effective
    /// limit shrinks as iterations accumulate to damp limit cycles.
    pub vstep_limit: f64,
    /// Store every `decimate`-th point in waveforms (1 = all).
    pub decimate: usize,
    /// Maximum sub-division of a non-converging step (power of two).
    pub max_substeps: usize,
}

impl TranOpts {
    pub fn new(dt: f64, t_stop: f64) -> Self {
        TranOpts {
            dt,
            t_stop,
            vtol: 1e-6,
            max_iters: 120,
            gmin: 1e-9,
            vstep_limit: 0.5,
            decimate: 1,
            max_substeps: 64,
        }
    }
}

/// Result of a transient run: one waveform per node plus one current
/// waveform per voltage source.
#[derive(Clone, Debug)]
pub struct TranResult {
    node_waves: Vec<Waveform>,
    /// (device index within circuit, current waveform) for each V source.
    source_currents: Vec<(usize, Waveform)>,
    /// Total energy delivered by each V source over the run (J), indexed
    /// like `source_currents`.
    source_energy: Vec<f64>,
    /// Instantaneous power delivered by each V source (W), same axis as
    /// the current waveforms. Enables windowed energy measurements that
    /// exclude the initial charge-up transient.
    source_power: Vec<Waveform>,
}

impl TranResult {
    /// Voltage waveform of a node.
    pub fn voltage(&self, n: NodeId) -> &Waveform {
        &self.node_waves[n.index()]
    }

    /// Current waveform of the `k`-th voltage source in the circuit
    /// (ordered by device insertion). Positive current flows out of the
    /// positive terminal through the external circuit.
    pub fn source_current(&self, k: usize) -> &Waveform {
        &self.source_currents[k].1
    }

    /// Energy delivered by the `k`-th voltage source over the whole run (J).
    pub fn source_energy(&self, k: usize) -> f64 {
        self.source_energy[k]
    }

    /// Energy delivered by all sources over the run (J). For the cell
    /// experiments this is the paper's "total energy consumed during the
    /// application of the input sequence".
    pub fn supply_energy(&self) -> f64 {
        self.source_energy.iter().sum()
    }

    /// Energy delivered by the `k`-th source within `[t0, t1]` (J).
    pub fn source_energy_between(&self, k: usize, t0: f64, t1: f64) -> f64 {
        self.source_power[k].integral_between(t0, t1)
    }

    /// Energy delivered by all sources within `[t0, t1]` (J). Use this to
    /// exclude the t = 0 charge-up of internal node capacitances from
    /// steady-state energy measurements.
    pub fn supply_energy_between(&self, t0: f64, t1: f64) -> f64 {
        (0..self.source_power.len())
            .map(|k| self.source_energy_between(k, t0, t1))
            .sum()
    }

    pub fn node_count(&self) -> usize {
        self.node_waves.len()
    }
}

/// Workspace for one NR solve, reused across timesteps.
struct Solver<'c> {
    circuit: &'c Circuit,
    opts: TranOpts,
    n_nodes: usize,
    sources: Vec<usize>,
    g: Mat,
    rhs: Vec<f64>,
    lu: LuSolver,
    x_new: Vec<f64>,
    /// Per-node MOSFET parasitic capacitance (gate + junction), stamped as
    /// grounded-capacitor companions. This is what loads internal nodes,
    /// gives logic gates their delay, and accounts for the parasitic part
    /// of the switching energy.
    node_device_cap: Vec<f64>,
}

impl<'c> Solver<'c> {
    fn new(circuit: &'c Circuit, opts: TranOpts) -> Self {
        let n_nodes = circuit.node_count();
        let sources: Vec<usize> = circuit
            .devices
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d.kind, DeviceKind::VSource { .. }))
            .map(|(i, _)| i)
            .collect();
        let n_unknowns = (n_nodes - 1) + sources.len();
        let mut node_device_cap = vec![0.0; n_nodes];
        for dev in &circuit.devices {
            if let DeviceKind::Mosfet {
                d,
                g,
                s,
                model,
                w,
                l,
            } = &dev.kind
            {
                node_device_cap[g.index()] += model.cgate(*w, *l);
                node_device_cap[d.index()] += model.cjunction(*w);
                node_device_cap[s.index()] += model.cjunction(*w);
            }
        }
        Solver {
            circuit,
            opts,
            n_nodes,
            sources,
            g: Mat::zeros(n_unknowns),
            rhs: vec![0.0; n_unknowns],
            lu: LuSolver::new(n_unknowns),
            x_new: vec![0.0; n_unknowns],
            node_device_cap,
        }
    }

    /// Solve the circuit at time `t` with companion state `v_prev` over a
    /// step of `dt`. `v` holds the initial guess on entry and the solution
    /// on success; `i_src` receives the source branch currents.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    // Solver state is threaded explicitly; loops index parallel per-node
    // arrays (v, v_prev, rhs) by node id.
    fn solve_point(
        &mut self,
        t: f64,
        dt: f64,
        v_prev: &[f64],
        v: &mut [f64],
        i_src: &mut [f64],
    ) -> Result<()> {
        let o = &self.opts;
        let n_nodes = self.n_nodes;
        let mut worst = f64::INFINITY;
        let mut worst_node = 0usize;
        for iter in 0..o.max_iters {
            self.g.clear();
            self.rhs.iter_mut().for_each(|r| *r = 0.0);

            for k in 1..n_nodes {
                self.g.add(k - 1, k - 1, o.gmin);
                // MOSFET parasitic capacitance companion (backward Euler).
                let cpar = self.node_device_cap[k];
                if cpar > 0.0 {
                    let geq = cpar / dt;
                    self.g.add(k - 1, k - 1, geq);
                    self.rhs[k - 1] += geq * v_prev[k];
                }
            }

            let mut src_idx = 0usize;
            for dev in &self.circuit.devices {
                match &dev.kind {
                    DeviceKind::Resistor { p, n, ohms } => {
                        let gc = 1.0 / ohms.max(1e-6);
                        stamp_conductance(&mut self.g, *p, *n, gc);
                    }
                    DeviceKind::Capacitor { p, n, farads } => {
                        let geq = farads / dt;
                        let v_prev_pn = v_prev[p.index()] - v_prev[n.index()];
                        let ieq = geq * v_prev_pn;
                        stamp_conductance(&mut self.g, *p, *n, geq);
                        stamp_current(&mut self.rhs, *p, *n, ieq);
                    }
                    DeviceKind::VSource { p, n, stim } => {
                        let row = (n_nodes - 1) + src_idx;
                        let e = stim.value_at(t);
                        if !p.is_ground() {
                            self.g.add(row, p.index() - 1, 1.0);
                            self.g.add(p.index() - 1, row, 1.0);
                        }
                        if !n.is_ground() {
                            self.g.add(row, n.index() - 1, -1.0);
                            self.g.add(n.index() - 1, row, -1.0);
                        }
                        self.rhs[row] = e;
                        src_idx += 1;
                    }
                    DeviceKind::Mosfet {
                        d,
                        g: gate,
                        s,
                        model,
                        w,
                        l,
                    } => {
                        let vg = v[gate.index()];
                        let vd = v[d.index()];
                        let vs = v[s.index()];
                        let ev = model.eval(vg - vs, vd - vs, *w, *l);
                        let ieq = ev.ids - ev.gm * (vg - vs) - ev.gds * (vd - vs);
                        stamp_conductance(&mut self.g, *d, *s, ev.gds);
                        stamp_vccs(&mut self.g, *d, *s, *gate, *s, ev.gm);
                        stamp_current(&mut self.rhs, *d, *s, -ieq);
                    }
                }
            }

            if !self.lu.factorize(&self.g) {
                return Err(SpiceError::SingularMatrix { time: t });
            }
            self.lu.solve(&self.rhs, &mut self.x_new);

            // Damped update; the limit tightens with the iteration count to
            // break oscillation around bistable operating points.
            let limit = o.vstep_limit / (1.0 + iter as f64 / 8.0);
            worst = 0.0;
            for k in 1..n_nodes {
                let dv = self.x_new[k - 1] - v[k];
                if dv.abs() > worst {
                    worst = dv.abs();
                    worst_node = k;
                }
                v[k] += dv.clamp(-limit, limit);
            }
            for (j, cur) in i_src.iter_mut().enumerate() {
                *cur = self.x_new[(n_nodes - 1) + j];
            }
            if worst < o.vtol {
                return Ok(());
            }
        }
        Err(SpiceError::NoConvergence {
            time: t,
            worst_node: self
                .circuit
                .node_name(NodeId(worst_node as u32))
                .to_string(),
            residual: worst,
        })
    }

    /// Advance from `t0` to `t0 + dt`, sub-dividing on non-convergence.
    #[allow(clippy::too_many_arguments, clippy::ptr_arg)]
    // Solver state is threaded explicitly; v/v_prev stay Vec so advance can
    // clone them for sub-step retries.
    fn advance(
        &mut self,
        t0: f64,
        dt: f64,
        v_prev: &mut Vec<f64>,
        v: &mut Vec<f64>,
        i_src: &mut [f64],
    ) -> Result<()> {
        let mut n_sub = 1usize;
        loop {
            // Try n_sub equal sub-steps starting from the accepted state.
            let sub_dt = dt / n_sub as f64;
            let mut v_try = v_prev.clone();
            let mut v_companion = v_prev.clone();
            let mut ok = true;
            let mut err = None;
            for s in 1..=n_sub {
                let t = t0 + sub_dt * s as f64;
                match self.solve_point(t, sub_dt, &v_companion, &mut v_try, i_src) {
                    Ok(()) => v_companion.copy_from_slice(&v_try),
                    Err(e) => {
                        ok = false;
                        err = Some(e);
                        break;
                    }
                }
            }
            if ok {
                v.copy_from_slice(&v_try);
                v_prev.copy_from_slice(&v_try);
                return Ok(());
            }
            n_sub *= 2;
            if n_sub > self.opts.max_substeps {
                return Err(err.unwrap());
            }
        }
    }
}

/// The transient engine.
pub struct Tran {
    opts: TranOpts,
}

impl Tran {
    pub fn new(opts: TranOpts) -> Self {
        Tran { opts }
    }

    /// Run the analysis on `circuit`.
    pub fn run(&self, circuit: &Circuit) -> Result<TranResult> {
        let o = self.opts.clone();
        if o.dt <= 0.0 || o.t_stop <= 0.0 {
            return Err(SpiceError::BadParameter(
                "dt and t_stop must be positive".into(),
            ));
        }
        let mut solver = Solver::new(circuit, o.clone());
        let n_nodes = solver.n_nodes;
        let n_sources = solver.sources.len();

        let mut v = vec![0.0; n_nodes];
        for &(node, volts) in &circuit.initial_conditions {
            v[node.index()] = volts;
        }
        let mut v_prev = v.clone();
        let mut i_src = vec![0.0; n_sources];

        let steps = (o.t_stop / o.dt).ceil() as usize;
        let cap = steps / o.decimate + 2;
        let mut node_waves: Vec<Waveform> =
            (0..n_nodes).map(|_| Waveform::with_capacity(cap)).collect();
        let mut src_waves: Vec<Waveform> = (0..n_sources)
            .map(|_| Waveform::with_capacity(cap))
            .collect();
        let mut src_power_waves: Vec<Waveform> = (0..n_sources)
            .map(|_| Waveform::with_capacity(cap))
            .collect();
        let mut src_energy = vec![0.0; n_sources];
        let mut prev_src_power = vec![0.0; n_sources];

        for (k, w) in node_waves.iter_mut().enumerate() {
            w.push(0.0, v[k]);
        }
        for w in src_waves.iter_mut() {
            w.push(0.0, 0.0);
        }
        for w in src_power_waves.iter_mut() {
            w.push(0.0, 0.0);
        }

        for step in 1..=steps {
            let t0 = (step - 1) as f64 * o.dt;
            let t = step as f64 * o.dt;
            solver.advance(t0, o.dt, &mut v_prev, &mut v, &mut i_src)?;

            // Accumulate per-source energy (trapezoidal in power).
            let mut src_idx = 0usize;
            for dev in &circuit.devices {
                if let DeviceKind::VSource { p, n, .. } = &dev.kind {
                    // MNA convention: the branch current unknown flows from
                    // p through the source to n; the source delivers
                    // -i_branch out of its positive terminal.
                    let i_out = -i_src[src_idx];
                    let vp = if p.is_ground() { 0.0 } else { v[p.index()] };
                    let vn = if n.is_ground() { 0.0 } else { v[n.index()] };
                    let power = (vp - vn) * i_out;
                    src_energy[src_idx] += 0.5 * (power + prev_src_power[src_idx]) * o.dt;
                    prev_src_power[src_idx] = power;
                    if step % o.decimate == 0 || step == steps {
                        src_waves[src_idx].push(t, i_out);
                        src_power_waves[src_idx].push(t, power);
                    }
                    src_idx += 1;
                }
            }
            if step % o.decimate == 0 || step == steps {
                for (k, w) in node_waves.iter_mut().enumerate() {
                    w.push(t, v[k]);
                }
            }
        }

        Ok(TranResult {
            node_waves,
            source_currents: solver.sources.iter().copied().zip(src_waves).collect(),
            source_energy: src_energy,
            source_power: src_power_waves,
        })
    }
}

/// Stamp a conductance between nodes `p` and `n` (ground rows skipped).
#[inline]
fn stamp_conductance(g: &mut Mat, p: NodeId, n: NodeId, gc: f64) {
    if !p.is_ground() {
        g.add(p.index() - 1, p.index() - 1, gc);
    }
    if !n.is_ground() {
        g.add(n.index() - 1, n.index() - 1, gc);
    }
    if !p.is_ground() && !n.is_ground() {
        g.add(p.index() - 1, n.index() - 1, -gc);
        g.add(n.index() - 1, p.index() - 1, -gc);
    }
}

/// Stamp a current source of `i` amps flowing *into* node `p` and out of
/// node `n` (i.e. from n to p through the device).
#[inline]
fn stamp_current(rhs: &mut [f64], p: NodeId, n: NodeId, i: f64) {
    if !p.is_ground() {
        rhs[p.index() - 1] += i;
    }
    if !n.is_ground() {
        rhs[n.index() - 1] -= i;
    }
}

/// Stamp a voltage-controlled current source: current `gm * (V(cp)-V(cn))`
/// flows from `p` to `n`.
#[inline]
fn stamp_vccs(g: &mut Mat, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gm: f64) {
    for (row, sign_r) in [(p, 1.0), (n, -1.0)] {
        if row.is_ground() {
            continue;
        }
        for (col, sign_c) in [(cp, 1.0), (cn, -1.0)] {
            if col.is_ground() {
                continue;
            }
            g.add(row.index() - 1, col.index() - 1, sign_r * sign_c * gm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Stimulus;
    use crate::mosfet::MosType;
    use crate::units::VDD;

    fn rc_circuit(r: f64, c: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GND, Stimulus::dc(1.0));
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GND, c);
        (ckt, out)
    }

    #[test]
    fn rc_charging_matches_analytic() {
        let (ckt, out) = rc_circuit(1e3, 1e-12); // tau = 1 ns
        let res = Tran::new(TranOpts::new(5e-12, 5e-9)).run(&ckt).unwrap();
        let w = res.voltage(out);
        let v_tau = w.sample(1e-9);
        assert!((v_tau - 0.632).abs() < 0.01, "v(tau) = {v_tau}");
        let v_end = w.last_value();
        assert!((v_end - 1.0).abs() < 1e-2, "v(end) = {v_end}");
    }

    #[test]
    fn rc_charge_energy_is_cv2() {
        // Charging a cap through a resistor draws E = C*V^2 from the source
        // (half stored, half dissipated).
        let (ckt, _) = rc_circuit(1e3, 1e-12);
        let res = Tran::new(TranOpts::new(5e-12, 20e-9)).run(&ckt).unwrap();
        let e = res.supply_energy();
        let expect = 1e-12 * 1.0 * 1.0;
        assert!(
            (e - expect).abs() / expect < 0.05,
            "E = {e}, expect {expect}"
        );
    }

    #[test]
    fn inverter_inverts() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let y = ckt.node("y");
        ckt.vsource("VDD", vdd, Circuit::GND, Stimulus::dc(VDD));
        ckt.vsource(
            "VIN",
            a,
            Circuit::GND,
            Stimulus::clock(VDD, 4e-9, 100e-12, 0.2e-9),
        );
        ckt.mosfet_x("MP", MosType::Pmos, y, a, vdd, 2.0);
        ckt.mosfet_x("MN", MosType::Nmos, y, a, Circuit::GND, 1.0);
        ckt.capacitor("CL", y, Circuit::GND, 5e-15);
        let res = Tran::new(TranOpts::new(2e-12, 8e-9)).run(&ckt).unwrap();
        let vy = res.voltage(y);
        assert!(
            vy.sample(1.5e-9) < 0.2,
            "out low while in high: {}",
            vy.sample(1.5e-9)
        );
        assert!(vy.sample(3.5e-9) > VDD - 0.2, "out high while in low");
    }

    #[test]
    fn inverter_consumes_energy_per_transition() {
        // Energy per full output cycle must be close to Ctotal * VDD^2.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let y = ckt.node("y");
        ckt.vsource("VDD", vdd, Circuit::GND, Stimulus::dc(VDD));
        ckt.vsource(
            "VIN",
            a,
            Circuit::GND,
            Stimulus::clock(VDD, 4e-9, 100e-12, 0.2e-9),
        );
        ckt.mosfet_x("MP", MosType::Pmos, y, a, vdd, 2.0);
        ckt.mosfet_x("MN", MosType::Nmos, y, a, Circuit::GND, 1.0);
        let cl = 10e-15;
        ckt.capacitor("CL", y, Circuit::GND, cl);
        let res = Tran::new(TranOpts::new(2e-12, 8e-9)).run(&ckt).unwrap();
        let e = res.source_energy(0); // VDD source only
        let floor = 2.0 * cl * VDD * VDD;
        assert!(e > 0.8 * floor, "E = {e:.3e} vs floor {floor:.3e}");
        assert!(e < 4.0 * floor, "E = {e:.3e} vs floor {floor:.3e}");
    }

    #[test]
    fn bistable_latch_holds_state() {
        // Cross-coupled inverter pair with an initial condition: the NR
        // loop must settle on the chosen stable point, not oscillate.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let q = ckt.node("q");
        let qb = ckt.node("qb");
        ckt.vsource("VDD", vdd, Circuit::GND, Stimulus::dc(VDD));
        ckt.mosfet_x("MP1", MosType::Pmos, q, qb, vdd, 2.0);
        ckt.mosfet_x("MN1", MosType::Nmos, q, qb, Circuit::GND, 1.0);
        ckt.mosfet_x("MP2", MosType::Pmos, qb, q, vdd, 2.0);
        ckt.mosfet_x("MN2", MosType::Nmos, qb, q, Circuit::GND, 1.0);
        ckt.capacitor("CQ", q, Circuit::GND, 1e-15);
        ckt.capacitor("CQB", qb, Circuit::GND, 1e-15);
        ckt.ic(q, 1.2);
        ckt.ic(qb, 0.3);
        let res = Tran::new(TranOpts::new(2e-12, 3e-9)).run(&ckt).unwrap();
        assert!(res.voltage(q).last_value() > VDD - 0.1);
        assert!(res.voltage(qb).last_value() < 0.1);
    }

    #[test]
    fn source_current_waveform_has_samples() {
        let (ckt, _) = rc_circuit(1e3, 1e-12);
        let res = Tran::new(TranOpts::new(5e-12, 1e-9)).run(&ckt).unwrap();
        assert!(res.source_current(0).len() > 100);
        assert_eq!(res.node_count(), 3);
    }

    #[test]
    fn bad_params_rejected() {
        let (ckt, _) = rc_circuit(1e3, 1e-12);
        assert!(Tran::new(TranOpts::new(0.0, 1e-9)).run(&ckt).is_err());
        assert!(Tran::new(TranOpts::new(1e-12, -1.0)).run(&ckt).is_err());
    }

    #[test]
    fn initial_conditions_respected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.capacitor("C1", a, Circuit::GND, 1e-12);
        ckt.resistor("R1", a, Circuit::GND, 1e3);
        ckt.ic(a, 1.5);
        let res = Tran::new(TranOpts::new(5e-12, 5e-9)).run(&ckt).unwrap();
        let w = res.voltage(a);
        assert!((w.sample(0.0) - 1.5).abs() < 1e-6);
        assert!(w.sample(1e-9) < 0.6);
        assert!(w.last_value() < 0.02);
    }
}
