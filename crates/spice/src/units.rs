//! Physical constants and unit helpers used across the simulation substrate.
//!
//! All internal quantities are SI: volts, amperes, seconds, farads, ohms,
//! metres. The helpers here exist so that call sites can speak the units the
//! paper uses (fJ, ps, µm) without sprinkling powers of ten around.

/// Nominal supply voltage of the 0.18 µm-class process (volts).
pub const VDD: f64 = 1.8;

/// Minimum drawn transistor length of the process (metres). 0.18 µm.
pub const L_MIN: f64 = 0.18e-6;

/// Minimum *contacted* transistor width (metres). The paper quotes 0.28 µm
/// as the minimum contactable width in the STM 0.18 µm process (§3.3.2).
pub const W_MIN: f64 = 0.28e-6;

/// Convert femtojoules to joules.
#[inline]
pub fn fj(x: f64) -> f64 {
    x * 1e-15
}

/// Convert joules to femtojoules.
#[inline]
pub fn to_fj(x: f64) -> f64 {
    x * 1e15
}

/// Convert picoseconds to seconds.
#[inline]
pub fn ps(x: f64) -> f64 {
    x * 1e-12
}

/// Convert seconds to picoseconds.
#[inline]
pub fn to_ps(x: f64) -> f64 {
    x * 1e12
}

/// Convert nanoseconds to seconds.
#[inline]
pub fn ns(x: f64) -> f64 {
    x * 1e-9
}

/// Convert femtofarads to farads.
#[inline]
pub fn ff(x: f64) -> f64 {
    x * 1e-15
}

/// Convert farads to femtofarads.
#[inline]
pub fn to_ff(x: f64) -> f64 {
    x * 1e15
}

/// Convert micrometres to metres.
#[inline]
pub fn um(x: f64) -> f64 {
    x * 1e-6
}

/// Convert metres to micrometres.
#[inline]
pub fn to_um(x: f64) -> f64 {
    x * 1e6
}

/// Convert square micrometres to square metres.
#[inline]
pub fn um2(x: f64) -> f64 {
    x * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert!((to_fj(fj(42.0)) - 42.0).abs() < 1e-12);
        assert!((to_ps(ps(17.5)) - 17.5).abs() < 1e-12);
        assert!((to_ff(ff(3.25)) - 3.25).abs() < 1e-12);
        assert!((to_um(um(0.28)) - 0.28).abs() < 1e-12);
    }

    #[test]
    fn process_constants_are_018um_class() {
        assert!((L_MIN - 0.18e-6).abs() < 1e-12);
        // Relationship checks computed through function calls so the
        // compiler cannot fold them away.
        assert!(um(to_um(W_MIN)) > um(to_um(L_MIN)));
        assert!((1.0..2.5).contains(&VDD));
    }
}
