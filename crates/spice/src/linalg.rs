//! Small dense linear algebra: just enough for MNA systems.
//!
//! Circuits in this framework are cell-sized (tens to a few hundred nodes),
//! so a dense LU factorization with partial pivoting is both simpler and
//! faster than a sparse solver would be at this scale. The matrix storage is
//! row-major in a single flat allocation so repeated solves inside the
//! Newton loop reuse memory.

/// Dense row-major matrix.
#[derive(Clone, Debug)]
pub struct Mat {
    n: usize,
    a: Vec<f64>,
}

impl Mat {
    /// Create an `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Mat {
            n,
            a: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reset all entries to zero without reallocating.
    pub fn clear(&mut self) {
        self.a.iter_mut().for_each(|x| *x = 0.0);
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.n + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * self.n + c] = v;
    }

    /// Add `v` to entry `(r, c)` — the MNA "stamp" primitive.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * self.n + c] += v;
    }

    /// Multiply `self * x` into `out`.
    #[allow(clippy::needless_range_loop)] // r indexes both the matrix rows and out
    pub fn mul_vec(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        for r in 0..self.n {
            let row = &self.a[r * self.n..(r + 1) * self.n];
            let mut acc = 0.0;
            for (aij, xj) in row.iter().zip(x.iter()) {
                acc += aij * xj;
            }
            out[r] = acc;
        }
    }
}

/// LU factorization with partial pivoting, reusing workspace across solves.
pub struct LuSolver {
    lu: Mat,
    perm: Vec<usize>,
}

impl LuSolver {
    pub fn new(n: usize) -> Self {
        LuSolver {
            lu: Mat::zeros(n),
            perm: vec![0; n],
        }
    }

    /// Factorize `a` in place (into internal storage). Returns `false` when
    /// the matrix is numerically singular.
    pub fn factorize(&mut self, a: &Mat) -> bool {
        let n = a.n;
        self.lu.a.copy_from_slice(&a.a);
        self.lu.n = n;
        if self.perm.len() != n {
            self.perm = vec![0; n];
        }
        let lu = &mut self.lu.a;
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        for k in 0..n {
            // Partial pivot: find the largest |a[i][k]| for i >= k.
            let mut piv = k;
            let mut max = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > max {
                    max = v;
                    piv = i;
                }
            }
            if max < 1e-300 {
                return false;
            }
            if piv != k {
                self.perm.swap(piv, k);
                for j in 0..n {
                    lu.swap(piv * n + j, k * n + j);
                }
            }
            let diag = lu[k * n + k];
            for i in (k + 1)..n {
                let m = lu[i * n + k] / diag;
                lu[i * n + k] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        lu[i * n + j] -= m * lu[k * n + j];
                    }
                }
            }
        }
        true
    }

    /// Solve `A x = b` using the factorization from the last
    /// [`factorize`](Self::factorize) call. `x` receives the solution.
    pub fn solve(&self, b: &[f64], x: &mut [f64]) {
        let n = self.lu.n;
        debug_assert_eq!(b.len(), n);
        debug_assert_eq!(x.len(), n);
        let lu = &self.lu.a;
        // Forward substitution with permutation applied.
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for j in 0..i {
                acc -= lu[i * n + j] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= lu[i * n + j] * x[j];
            }
            x[i] = acc / lu[i * n + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn solve_dense(a: &Mat, b: &[f64]) -> Option<Vec<f64>> {
        let mut s = LuSolver::new(a.n());
        if !s.factorize(a) {
            return None;
        }
        let mut x = vec![0.0; a.n()];
        s.solve(b, &mut x);
        Some(x)
    }

    #[test]
    fn solves_identity() {
        let mut a = Mat::zeros(3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let x = solve_dense(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_2x2_requiring_pivot() {
        // First pivot is zero, forcing a row swap.
        let mut a = Mat::zeros(2);
        a.set(0, 0, 0.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 1.0);
        let x = solve_dense(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let mut a = Mat::zeros(2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 4.0);
        assert!(solve_dense(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn mul_vec_matches_manual() {
        let mut a = Mat::zeros(2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 3.0);
        a.set(1, 1, 4.0);
        let mut out = vec![0.0; 2];
        a.mul_vec(&[5.0, 6.0], &mut out);
        assert_eq!(out, vec![17.0, 39.0]);
    }

    proptest! {
        /// For random diagonally dominant matrices, A * solve(A, b) == b.
        #[test]
        fn lu_roundtrip(seed in 0u64..500, n in 1usize..12) {
            // Deterministic pseudo-random fill from the seed.
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) * 2.0 - 1.0
            };
            let mut a = Mat::zeros(n);
            for r in 0..n {
                let mut rowsum = 0.0;
                for c in 0..n {
                    let v = next();
                    a.set(r, c, v);
                    rowsum += v.abs();
                }
                // Diagonal dominance guarantees non-singularity.
                a.add(r, r, rowsum + 1.0);
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = solve_dense(&a, &b).unwrap();
            let mut bx = vec![0.0; n];
            a.mul_vec(&x, &mut bx);
            for i in 0..n {
                prop_assert!((bx[i] - b[i]).abs() < 1e-8,
                    "residual too large at row {}: {} vs {}", i, bx[i], b[i]);
            }
        }
    }
}
