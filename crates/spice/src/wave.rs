//! Waveforms: sampled signals produced by transient analysis, plus the
//! measurement helpers (threshold crossings, delays, averages) that the
//! experiment harnesses use to extract energy and delay numbers.

/// A sampled waveform: strictly increasing time points with one value each.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Waveform {
    t: Vec<f64>,
    v: Vec<f64>,
}

/// Direction of a threshold crossing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edge {
    Rising,
    Falling,
    /// Either direction.
    Any,
}

impl Waveform {
    pub fn new() -> Self {
        Waveform::default()
    }

    /// Build from parallel time/value vectors. Panics if lengths differ or
    /// time is not strictly increasing (a programming error in the caller).
    pub fn from_series(t: Vec<f64>, v: Vec<f64>) -> Self {
        assert_eq!(t.len(), v.len(), "time/value length mismatch");
        assert!(
            t.windows(2).all(|w| w[0] < w[1]),
            "waveform time axis must be strictly increasing"
        );
        Waveform { t, v }
    }

    pub fn with_capacity(n: usize) -> Self {
        Waveform {
            t: Vec::with_capacity(n),
            v: Vec::with_capacity(n),
        }
    }

    /// Append a sample. Time must be greater than the last sample's time.
    pub fn push(&mut self, t: f64, v: f64) {
        debug_assert!(self.t.last().is_none_or(|&last| t > last));
        self.t.push(t);
        self.v.push(v);
    }

    pub fn len(&self) -> usize {
        self.t.len()
    }

    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    pub fn times(&self) -> &[f64] {
        &self.t
    }

    pub fn values(&self) -> &[f64] {
        &self.v
    }

    /// Last sampled value; 0.0 for an empty waveform.
    pub fn last_value(&self) -> f64 {
        self.v.last().copied().unwrap_or(0.0)
    }

    /// Linear interpolation at time `time`. Clamps outside the range.
    pub fn sample(&self, time: f64) -> f64 {
        if self.t.is_empty() {
            return 0.0;
        }
        if time <= self.t[0] {
            return self.v[0];
        }
        if time >= *self.t.last().unwrap() {
            return *self.v.last().unwrap();
        }
        // Binary search for the bracketing interval.
        let idx = self.t.partition_point(|&t| t <= time);
        let (t0, t1) = (self.t[idx - 1], self.t[idx]);
        let (v0, v1) = (self.v[idx - 1], self.v[idx]);
        v0 + (v1 - v0) * (time - t0) / (t1 - t0)
    }

    /// All times at which the waveform crosses `threshold` in the given
    /// direction, linearly interpolated.
    pub fn crossings(&self, threshold: f64, edge: Edge) -> Vec<f64> {
        let mut out = Vec::new();
        for i in 1..self.t.len() {
            let (v0, v1) = (self.v[i - 1], self.v[i]);
            let rising = v0 < threshold && v1 >= threshold;
            let falling = v0 > threshold && v1 <= threshold;
            let hit = match edge {
                Edge::Rising => rising,
                Edge::Falling => falling,
                Edge::Any => rising || falling,
            };
            if hit {
                let frac = (threshold - v0) / (v1 - v0);
                out.push(self.t[i - 1] + frac * (self.t[i] - self.t[i - 1]));
            }
        }
        out
    }

    /// First crossing at or after `after`, or `None`.
    pub fn first_crossing_after(&self, threshold: f64, edge: Edge, after: f64) -> Option<f64> {
        self.crossings(threshold, edge)
            .into_iter()
            .find(|&t| t >= after)
    }

    /// Trapezoidal integral of the waveform over its full span.
    pub fn integral(&self) -> f64 {
        let mut acc = 0.0;
        for i in 1..self.t.len() {
            acc += 0.5 * (self.v[i] + self.v[i - 1]) * (self.t[i] - self.t[i - 1]);
        }
        acc
    }

    /// Trapezoidal integral restricted to `[t0, t1]`.
    pub fn integral_between(&self, t0: f64, t1: f64) -> f64 {
        if self.t.len() < 2 || t1 <= t0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 1..self.t.len() {
            let (a, b) = (self.t[i - 1], self.t[i]);
            if b <= t0 || a >= t1 {
                continue;
            }
            let lo = a.max(t0);
            let hi = b.min(t1);
            let va = self.sample(lo);
            let vb = self.sample(hi);
            acc += 0.5 * (va + vb) * (hi - lo);
        }
        acc
    }

    /// Time-average over the full span.
    pub fn average(&self) -> f64 {
        let span = match (self.t.first(), self.t.last()) {
            (Some(&a), Some(&b)) if b > a => b - a,
            _ => return self.last_value(),
        };
        self.integral() / span
    }

    /// Pointwise product with another waveform sampled on this one's axis.
    /// Used for instantaneous power `v(t) * i(t)`.
    pub fn pointwise_mul(&self, other: &Waveform) -> Waveform {
        let v = self
            .t
            .iter()
            .zip(self.v.iter())
            .map(|(&t, &v)| v * other.sample(t))
            .collect();
        Waveform {
            t: self.t.clone(),
            v,
        }
    }

    /// Minimum and maximum values; (0, 0) for an empty waveform.
    pub fn min_max(&self) -> (f64, f64) {
        self.v
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                (lo.min(x), hi.max(x))
            })
    }
}

/// Delay between an edge on `from` and the consequent edge on `to`, both
/// measured at `threshold` (typically VDD/2). `from_edge` selects the
/// launching transition; the earliest `to` crossing of any direction at or
/// after the launch is taken as arrival. Returns `None` if either edge is
/// missing.
pub fn delay_between(
    from: &Waveform,
    from_edge: Edge,
    to: &Waveform,
    threshold: f64,
    launch_after: f64,
) -> Option<f64> {
    let launch = from.first_crossing_after(threshold, from_edge, launch_after)?;
    let arrive = to.first_crossing_after(threshold, Edge::Any, launch)?;
    Some(arrive - launch)
}

/// Worst (maximum) delay from every `from_edge` event on `from` to the next
/// `to` transition. Events with no consequent output transition within
/// `window` are ignored (the output did not change for that input edge).
pub fn worst_delay(
    from: &Waveform,
    from_edge: Edge,
    to: &Waveform,
    threshold: f64,
    window: f64,
) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for launch in from.crossings(threshold, from_edge) {
        if let Some(arrive) = to.first_crossing_after(threshold, Edge::Any, launch) {
            let d = arrive - launch;
            if d <= window {
                worst = Some(worst.map_or(d, |w: f64| w.max(d)));
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        // 0 -> 1 over 1s, then back down to 0 at 2s.
        Waveform::from_series(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0])
    }

    #[test]
    fn sample_interpolates_and_clamps() {
        let w = ramp();
        assert!((w.sample(0.5) - 0.5).abs() < 1e-12);
        assert!((w.sample(1.5) - 0.5).abs() < 1e-12);
        assert_eq!(w.sample(-1.0), 0.0);
        assert_eq!(w.sample(5.0), 0.0);
    }

    #[test]
    fn crossings_detect_both_edges() {
        let w = ramp();
        let rising = w.crossings(0.5, Edge::Rising);
        let falling = w.crossings(0.5, Edge::Falling);
        assert_eq!(rising.len(), 1);
        assert_eq!(falling.len(), 1);
        assert!((rising[0] - 0.5).abs() < 1e-12);
        assert!((falling[0] - 1.5).abs() < 1e-12);
        assert_eq!(w.crossings(0.5, Edge::Any).len(), 2);
    }

    #[test]
    fn integral_of_triangle() {
        let w = ramp();
        assert!((w.integral() - 1.0).abs() < 1e-12);
        assert!((w.integral_between(0.0, 1.0) - 0.5).abs() < 1e-12);
        assert!((w.integral_between(0.5, 1.5) - 0.75).abs() < 1e-12);
        assert!((w.average() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delay_measurement() {
        let clk = Waveform::from_series(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 1.0]);
        let q = Waveform::from_series(vec![0.0, 1.2, 1.4, 2.0], vec![0.0, 0.0, 1.0, 1.0]);
        let d = delay_between(&clk, Edge::Rising, &q, 0.5, 0.0).unwrap();
        // clk crosses 0.5 at t=0.5; q crosses 0.5 at t=1.3.
        assert!((d - 0.8).abs() < 1e-9);
    }

    #[test]
    fn worst_delay_picks_maximum() {
        let clk =
            Waveform::from_series(vec![0.0, 0.1, 1.0, 1.1, 2.0], vec![0.0, 1.0, 1.0, 0.0, 0.0]);
        // Output transitions 0.2 after first edge, 0.4 after second.
        let q = Waveform::from_series(
            vec![0.0, 0.24, 0.26, 1.44, 1.46, 2.0],
            vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0],
        );
        let d = worst_delay(&clk, Edge::Any, &q, 0.5, 1.0).unwrap();
        assert!(d > 0.3 && d < 0.5, "worst delay {d}");
    }

    #[test]
    fn pointwise_mul_gives_power() {
        let v = Waveform::from_series(vec![0.0, 1.0], vec![2.0, 2.0]);
        let i = Waveform::from_series(vec![0.0, 1.0], vec![3.0, 5.0]);
        let p = v.pointwise_mul(&i);
        assert!((p.sample(0.0) - 6.0).abs() < 1e-12);
        assert!((p.sample(1.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let w = ramp();
        let (lo, hi) = w.min_max();
        assert_eq!((lo, hi), (0.0, 1.0));
    }
}
