//! # fpga-place
//!
//! The placement half of the flow's "VPR" tool: adaptive simulated
//! annealing over the island-style grid.
//!
//! * Blocks: packed clusters (one per CLB tile) and IO pads (primary
//!   inputs/outputs, several per perimeter tile).
//! * Cost: the classic VPR bounding-box wirelength — for every routable
//!   net, `q(t) * (bb_width + bb_height)` where `q(t)` compensates for the
//!   underestimate of the half-perimeter metric on high-fanout nets.
//!   Clock nets ride a dedicated global network and are excluded.
//! * Schedule: temperature from the initial cost variance, update factor
//!   chosen from the acceptance rate, and a shrinking move-range limit —
//!   VPR's adaptive schedule.

pub mod codec;
pub mod cost;
pub mod engine;
pub mod sa;

pub use codec::{placement_from_bytes, placement_to_bytes};
pub use cost::{net_terminals, PlacedNet};
pub use engine::{AnnealingPlacer, Parallelism, PlaceConfig, PlaceEngine};
#[allow(deprecated)]
pub use sa::place;
pub use sa::{PlaceOptions, Placement};

use fpga_arch::device::GridLoc;
use fpga_netlist::ir::NetId;
use fpga_pack::ClusterId;

/// A placeable block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlockRef {
    /// A packed cluster.
    Cluster(ClusterId),
    /// An input pad driving a net.
    InputPad(NetId),
    /// An output pad observing a net.
    OutputPad(NetId),
}

impl BlockRef {
    pub fn is_io(&self) -> bool {
        !matches!(self, BlockRef::Cluster(_))
    }
}

/// A block's placed location: a grid tile plus a sub-slot for IO tiles
/// that hold several pads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slot {
    pub loc: GridLoc,
    pub sub: u32,
}

/// Errors from placement.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceError {
    /// Device too small for the netlist.
    DoesNotFit {
        clbs: usize,
        clb_cap: usize,
        ios: usize,
        io_cap: usize,
    },
    Internal(String),
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::DoesNotFit {
                clbs,
                clb_cap,
                ios,
                io_cap,
            } => write!(
                f,
                "design does not fit: {clbs} CLBs on {clb_cap} tiles, {ios} IOs on {io_cap} pads"
            ),
            PlaceError::Internal(msg) => write!(f, "internal placement error: {msg}"),
        }
    }
}

impl std::error::Error for PlaceError {}

pub type Result<T> = std::result::Result<T, PlaceError>;
