//! Placement cost: bounding-box wirelength with VPR's crossing-count
//! compensation.

use fpga_netlist::ir::NetId;
use fpga_pack::{ClusterId, Clustering};

use crate::BlockRef;

/// A routable net with its terminal blocks (driver first).
#[derive(Clone, Debug)]
pub struct PlacedNet {
    pub net: NetId,
    pub terminals: Vec<BlockRef>,
}

/// Build the net -> terminal-block list for all routable (non-clock)
/// nets of a clustering: primary IO pads plus cluster pins.
pub fn net_terminals(clustering: &Clustering) -> Vec<PlacedNet> {
    let nl = &clustering.netlist;
    let mut nets = Vec::new();
    for net in clustering.external_nets() {
        if nl.clocks.contains(&net) {
            continue; // dedicated global network
        }
        let mut terminals = Vec::new();
        // Driver: producing cluster or an input pad.
        match clustering.producer(net) {
            Some(c) => terminals.push(BlockRef::Cluster(c)),
            None => terminals.push(BlockRef::InputPad(net)),
        }
        // Sinks: clusters that list the net as an input.
        for (ci, cluster) in clustering.clusters.iter().enumerate() {
            if cluster.inputs.contains(&net) {
                terminals.push(BlockRef::Cluster(ClusterId(ci as u32)));
            }
        }
        // Primary output pad.
        if nl.outputs.contains(&net) {
            terminals.push(BlockRef::OutputPad(net));
        }
        if terminals.len() >= 2 {
            nets.push(PlacedNet { net, terminals });
        }
    }
    nets
}

/// VPR's crossing-count factor `q(t)`: corrects the half-perimeter
/// wirelength estimate for nets with more than three terminals.
pub fn crossing_factor(terminals: usize) -> f64 {
    const Q: [f64; 51] = [
        1.0, 1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991, 1.4493, 1.4974, 1.5455,
        1.5937, 1.6418, 1.6899, 1.7304, 1.7709, 1.8114, 1.8519, 1.8924, 1.9288, 1.9652, 2.0015,
        2.0379, 2.0743, 2.1061, 2.1379, 2.1698, 2.2016, 2.2334, 2.2646, 2.2958, 2.3271, 2.3583,
        2.3895, 2.4187, 2.4479, 2.4772, 2.5064, 2.5356, 2.5610, 2.5864, 2.6117, 2.6371, 2.6625,
        2.6887, 2.7148, 2.7410, 2.7671, 2.7933,
    ];
    if terminals < Q.len() {
        Q[terminals]
    } else {
        // Linear extrapolation beyond 50 terminals, as VPR does.
        2.7933 + 0.02616 * (terminals as f64 - 50.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_arch::ClbArch;
    use fpga_netlist::ir::{CellKind, Netlist};

    #[test]
    fn crossing_factor_monotone() {
        assert_eq!(crossing_factor(2), 1.0);
        assert_eq!(crossing_factor(3), 1.0);
        assert!(crossing_factor(10) > 1.0);
        assert!(crossing_factor(60) > crossing_factor(50));
        let mut prev = 0.0;
        for t in 0..80 {
            let q = crossing_factor(t);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn terminals_cover_io_and_clusters() {
        let mut nl = Netlist::new("t");
        let clk = nl.net("clk");
        nl.add_clock(clk);
        let a = nl.net("a");
        let b = nl.net("b");
        nl.add_input(a);
        nl.add_input(b);
        let d = nl.net("d");
        let q = nl.net("q");
        nl.add_output(q);
        nl.add_cell(
            "l",
            CellKind::Lut {
                k: 2,
                truth: 0b0110,
            },
            vec![a, b],
            d,
        );
        nl.add_cell(
            "f",
            CellKind::Dff {
                clock: clk,
                init: false,
            },
            vec![d],
            q,
        );
        let c = fpga_pack::pack(&nl, &ClbArch::paper_default()).unwrap();
        let nets = net_terminals(&c);
        // Nets: a (pad -> cluster), b (pad -> cluster), q (cluster -> pad).
        // clk is global; d is internal to the fused BLE.
        assert_eq!(nets.len(), 3, "{nets:?}");
        for pn in &nets {
            assert!(pn.terminals.len() >= 2);
            match pn.terminals[0] {
                BlockRef::Cluster(_) | BlockRef::InputPad(_) => {}
                other => panic!("driver should be cluster or input pad, got {other:?}"),
            }
        }
        // The output net's last terminal is the output pad.
        let qnet = nets.iter().find(|p| p.net == q).unwrap();
        assert!(matches!(
            qnet.terminals.last(),
            Some(BlockRef::OutputPad(_))
        ));
    }
}
