//! Engine-level placement API.
//!
//! The flow pipeline, lint drivers, and bench harness all consume placers
//! through the [`PlaceEngine`] trait so alternative engines (an analytic
//! placer, a quadratic seed + detailed annealer, ...) can be slotted in
//! without touching call sites. [`AnnealingPlacer`] is the production
//! engine: region-partitioned parallel simulated annealing whose results
//! are bit-identical across thread counts (see `sa` module docs for the
//! determinism argument), so `Parallelism` never participates in stage
//! cache keys.

use std::sync::OnceLock;

use fpga_arch::device::Device;
use fpga_pack::Clustering;

use crate::sa::{anneal, Placement};
use crate::Result;

/// Shared parallelism knobs for the place & route engines.
///
/// `threads` only controls how much hardware is used: engines are required
/// to produce bit-identical results for any value, which is why this
/// struct is excluded from every stage-cache fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Extra seed mixed into every per-region RNG stream. Changing it
    /// changes results (deterministically); changing `threads` never does.
    pub deterministic_seed: u64,
}

fn env_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("FLOW_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

impl Default for Parallelism {
    /// Defaults to `FLOW_THREADS` from the environment (cached on first
    /// read), or 1. Because engines are thread-count-invariant this only
    /// changes speed, never results.
    fn default() -> Self {
        Parallelism {
            threads: env_threads(),
            deterministic_seed: 0,
        }
    }
}

impl Parallelism {
    pub fn serial() -> Self {
        Parallelism {
            threads: 1,
            deterministic_seed: 0,
        }
    }

    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    pub fn deterministic_seed(mut self, seed: u64) -> Self {
        self.deterministic_seed = seed;
        self
    }
}

/// Typed builder-style configuration for [`AnnealingPlacer`].
#[derive(Clone, Debug, PartialEq)]
pub struct PlaceConfig {
    pub seed: u64,
    /// Moves per temperature = `inner_num * blocks^(4/3)` (VPR default 10;
    /// smaller values trade quality for speed).
    pub inner_num: f64,
    pub parallelism: Parallelism,
}

impl Default for PlaceConfig {
    fn default() -> Self {
        PlaceConfig {
            seed: 1,
            inner_num: 5.0,
            parallelism: Parallelism::default(),
        }
    }
}

impl PlaceConfig {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn inner_num(mut self, inner_num: f64) -> Self {
        self.inner_num = inner_num;
        self
    }

    pub fn parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    pub fn threads(mut self, n: usize) -> Self {
        self.parallelism.threads = n.max(1);
        self
    }
}

/// A placement engine: maps a packed clustering onto a device.
pub trait PlaceEngine {
    /// Stable engine name (for traces and reports).
    fn name(&self) -> &'static str;

    /// Place a clustering onto a device.
    fn place(&self, clustering: &Clustering, device: Device) -> Result<Placement>;
}

/// Region-partitioned parallel simulated annealing (the VPR schedule).
#[derive(Clone, Debug, Default)]
pub struct AnnealingPlacer {
    cfg: PlaceConfig,
}

impl AnnealingPlacer {
    pub fn new(cfg: PlaceConfig) -> Self {
        AnnealingPlacer { cfg }
    }

    pub fn config(&self) -> &PlaceConfig {
        &self.cfg
    }
}

impl PlaceEngine for AnnealingPlacer {
    fn name(&self) -> &'static str {
        "annealing"
    }

    fn place(&self, clustering: &Clustering, device: Device) -> Result<Placement> {
        anneal(clustering, device, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_builder_clamps_threads() {
        let p = Parallelism::serial().threads(0);
        assert_eq!(p.threads, 1);
        let cfg = PlaceConfig::new().threads(0);
        assert_eq!(cfg.parallelism.threads, 1);
    }

    #[test]
    fn config_builder_sets_fields() {
        let cfg = PlaceConfig::new()
            .seed(9)
            .inner_num(2.5)
            .parallelism(Parallelism::serial().threads(4).deterministic_seed(7));
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.inner_num, 2.5);
        assert_eq!(cfg.parallelism.threads, 4);
        assert_eq!(cfg.parallelism.deterministic_seed, 7);
    }
}
