//! Region-partitioned parallel simulated annealing (the VPR schedule).
//!
//! The chip is partitioned into square regions whose side tracks the
//! annealer's range limit `rlim`. Each sweep runs two checkerboard
//! phases: all "even" regions (`(rx + ry) % 2 == 0`) propose and accept
//! moves concurrently, then all "odd" regions. Same-colour regions are
//! never adjacent, and a move never leaves its region, so concurrent
//! regions touch disjoint blocks and sites. The partition origin
//! alternates by half a region side every sweep so blocks migrate across
//! region boundaries over time; while `rlim` still spans the chip the
//! sweep degenerates to a single serial whole-chip region, preserving the
//! early global moves the VPR schedule relies on.
//!
//! Determinism across thread counts is by construction:
//! * every region draws from its own xorshift stream seeded from
//!   `(seed, deterministic_seed, sweep, phase, region index)` — never
//!   from a shared RNG or a thread id;
//! * workers read cross-region state from the phase-start snapshot and
//!   write only to their own region's blocks;
//! * per-region move batches are committed in region-index order at the
//!   phase barrier, and net costs are recomputed exactly afterwards;
//! * region geometry is a function of the deterministic schedule state
//!   (`rlim`, sweep number) only — never of the thread count.

use std::collections::HashMap;

use fpga_arch::device::{Device, GridLoc};
use fpga_pack::{ClusterId, Clustering};

use crate::cost::{crossing_factor, net_terminals, PlacedNet};
use crate::engine::{AnnealingPlacer, PlaceConfig, PlaceEngine};
use crate::{BlockRef, PlaceError, Result, Slot};

/// Placement options for the deprecated free-function API.
#[derive(Clone, Debug)]
pub struct PlaceOptions {
    pub seed: u64,
    /// Moves per temperature = `inner_num * blocks^(4/3)` (VPR default 10;
    /// smaller values trade quality for speed).
    pub inner_num: f64,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            seed: 1,
            inner_num: 5.0,
        }
    }
}

/// The placement result.
#[derive(Clone, Debug)]
pub struct Placement {
    pub device: Device,
    /// Block -> placed slot.
    pub slots: HashMap<BlockRef, Slot>,
    /// Final bounding-box cost.
    pub cost: f64,
    /// Nets used for the cost (kept for routing and reports).
    pub nets: Vec<PlacedNet>,
}

impl Placement {
    /// Location of a block.
    pub fn loc_of(&self, b: BlockRef) -> GridLoc {
        self.slots[&b].loc
    }

    /// Location of a cluster.
    pub fn cluster_loc(&self, c: ClusterId) -> GridLoc {
        self.loc_of(BlockRef::Cluster(c))
    }

    /// Total half-perimeter wirelength (without crossing factors).
    pub fn hpwl(&self) -> u64 {
        self.nets
            .iter()
            .map(|n| {
                let (w, h) = bbox(&n.terminals, &self.slots);
                (w + h) as u64
            })
            .sum()
    }

    /// Render the `.place`-style text file.
    pub fn write_place(&self, clustering: &Clustering) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# placement: {} blocks, grid {} x {}\n",
            self.slots.len(),
            self.device.width,
            self.device.height
        ));
        let mut rows: Vec<(String, Slot)> = self
            .slots
            .iter()
            .map(|(b, s)| {
                let name = match b {
                    BlockRef::Cluster(c) => format!("clb_{}", c.0),
                    BlockRef::InputPad(n) => {
                        format!("in_{}", clustering.netlist.net_name(*n))
                    }
                    BlockRef::OutputPad(n) => {
                        format!("out_{}", clustering.netlist.net_name(*n))
                    }
                };
                (name, *s)
            })
            .collect();
        rows.sort();
        for (name, slot) in rows {
            out.push_str(&format!(
                "{name} {} {} {}\n",
                slot.loc.x, slot.loc.y, slot.sub
            ));
        }
        out
    }
}

fn bbox(terminals: &[BlockRef], slots: &HashMap<BlockRef, Slot>) -> (u32, u32) {
    let mut min_x = u32::MAX;
    let mut max_x = 0;
    let mut min_y = u32::MAX;
    let mut max_y = 0;
    for t in terminals {
        let loc = slots[t].loc;
        min_x = min_x.min(loc.x);
        max_x = max_x.max(loc.x);
        min_y = min_y.min(loc.y);
        max_y = max_y.max(loc.y);
    }
    (max_x - min_x, max_y - min_y)
}

fn net_cost(net: &PlacedNet, slots: &HashMap<BlockRef, Slot>) -> f64 {
    let (w, h) = bbox(&net.terminals, slots);
    crossing_factor(net.terminals.len()) * (w + h) as f64
}

/// Place a clustering onto a device with simulated annealing.
#[deprecated(
    since = "0.2.0",
    note = "use engine::{AnnealingPlacer, PlaceConfig, PlaceEngine}"
)]
pub fn place(clustering: &Clustering, device: Device, opts: PlaceOptions) -> Result<Placement> {
    AnnealingPlacer::new(PlaceConfig::new().seed(opts.seed).inner_num(opts.inner_num))
        .place(clustering, device)
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xorshift64* stream, seeded by folding schedule coordinates through
/// splitmix64. Each region of each phase gets its own stream.
struct XorShift(u64);

impl XorShift {
    fn seeded(parts: &[u64]) -> XorShift {
        let mut s = 0x243F_6A88_85A3_08D3u64;
        for &p in parts {
            s = splitmix64(s ^ p);
        }
        XorShift(if s == 0 { 0x9E37_79B9 } else { s })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn range(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// One region's slice of a checkerboard phase.
struct RegionTask {
    /// Blocks (indices into the annealer's block table) positioned inside
    /// this region at sweep start.
    blocks: Vec<u32>,
    /// CLB site indices inside this region.
    clb_sites: Vec<u32>,
    /// IO site indices inside this region.
    io_sites: Vec<u32>,
    attempts: usize,
    seed: u64,
}

/// Deterministic result of one region's moves.
struct RegionOutcome {
    /// Final positions of blocks this region moved, sorted by block index
    /// so the barrier commit order never depends on map iteration order.
    moved: Vec<(u32, Slot)>,
    /// Accepted move deltas (drives the adaptive schedule).
    deltas: Vec<f64>,
    attempted: usize,
}

/// Immutable phase-start snapshot shared by all concurrent regions.
struct PhaseCtx<'a> {
    pos: &'a [Slot],
    net_costs: &'a [f64],
    term_idx: &'a [Vec<u32>],
    net_q: &'a [f64],
    nets_of: &'a [Vec<u32>],
    clb_sites: &'a [Slot],
    io_sites: &'a [Slot],
    n_clb: usize,
    temp: f64,
    rlim: f64,
}

fn bbox_idx(terms: &[u32], pos_of: impl Fn(u32) -> Slot) -> (u32, u32) {
    let mut min_x = u32::MAX;
    let mut max_x = 0;
    let mut min_y = u32::MAX;
    let mut max_y = 0;
    for &t in terms {
        let loc = pos_of(t).loc;
        min_x = min_x.min(loc.x);
        max_x = max_x.max(loc.x);
        min_y = min_y.min(loc.y);
        max_y = max_y.max(loc.y);
    }
    (max_x - min_x, max_y - min_y)
}

/// Run one region's annealing moves against the phase-start snapshot.
/// Writes go to region-local overlays only; the caller commits them at
/// the phase barrier.
fn run_region(task: &RegionTask, ctx: &PhaseCtx<'_>) -> RegionOutcome {
    let mut rng = XorShift::seeded(&[task.seed]);
    // Region-local overlays over the phase-start snapshot. Only blocks of
    // this region ever appear here, and only this region's sites can be
    // occupied by them.
    let mut local_pos: HashMap<u32, Slot> = HashMap::new();
    let mut local_net: HashMap<u32, f64> = HashMap::new();
    let mut occ: HashMap<Slot, u32> = task
        .blocks
        .iter()
        .map(|&b| (ctx.pos[b as usize], b))
        .collect();
    let mut deltas = Vec::new();
    let mut attempted = 0usize;

    for _ in 0..task.attempts {
        attempted += 1;
        let b = task.blocks[rng.range(task.blocks.len())];
        let from = local_pos.get(&b).copied().unwrap_or(ctx.pos[b as usize]);
        let (site_idx, all_sites) = if (b as usize) < ctx.n_clb {
            (&task.clb_sites, ctx.clb_sites)
        } else {
            (&task.io_sites, ctx.io_sites)
        };
        if site_idx.len() <= 1 {
            continue;
        }
        // Target site of the same class within the range limit.
        let mut to = all_sites[site_idx[rng.range(site_idx.len())] as usize];
        for _ in 0..8 {
            let d = (from.loc.x.abs_diff(to.loc.x) + from.loc.y.abs_diff(to.loc.y)) as f64;
            if d <= ctx.rlim.max(2.0) && to != from {
                break;
            }
            to = all_sites[site_idx[rng.range(site_idx.len())] as usize];
        }
        if to == from {
            continue;
        }
        let other = occ.get(&to).copied();

        // Affected nets.
        let mut affected: Vec<u32> = ctx.nets_of[b as usize].clone();
        if let Some(o) = other {
            affected.extend_from_slice(&ctx.nets_of[o as usize]);
        }
        affected.sort_unstable();
        affected.dedup();

        // Evaluate with the move overlaid; commit only on accept.
        let pos_of = |t: u32| -> Slot {
            if t == b {
                to
            } else if Some(t) == other {
                from
            } else {
                local_pos.get(&t).copied().unwrap_or(ctx.pos[t as usize])
            }
        };
        let mut delta = 0.0;
        let mut new_costs: Vec<(u32, f64)> = Vec::with_capacity(affected.len());
        for &ni in &affected {
            let (w, h) = bbox_idx(&ctx.term_idx[ni as usize], pos_of);
            let c = ctx.net_q[ni as usize] * (w + h) as f64;
            let old = local_net
                .get(&ni)
                .copied()
                .unwrap_or(ctx.net_costs[ni as usize]);
            delta += c - old;
            new_costs.push((ni, c));
        }

        let accept = delta <= 0.0
            || if ctx.temp.is_finite() {
                rng.f64() < (-delta / ctx.temp).exp()
            } else {
                true
            };
        if accept {
            local_pos.insert(b, to);
            occ.insert(to, b);
            if let Some(o) = other {
                local_pos.insert(o, from);
                occ.insert(from, o);
            } else {
                occ.remove(&from);
            }
            for (ni, c) in new_costs {
                local_net.insert(ni, c);
            }
            deltas.push(delta);
        }
    }

    let mut moved: Vec<(u32, Slot)> = local_pos.into_iter().collect();
    moved.sort_unstable_by_key(|&(b, _)| b);
    RegionOutcome {
        moved,
        deltas,
        attempted,
    }
}

/// Run a phase's regions, on `threads` workers when it pays. Outcomes are
/// returned in task order regardless of which worker ran which region.
fn run_phase(tasks: &[RegionTask], ctx: &PhaseCtx<'_>, threads: usize) -> Vec<RegionOutcome> {
    if threads <= 1 || tasks.len() <= 1 {
        return tasks.iter().map(|t| run_region(t, ctx)).collect();
    }
    let workers = threads.min(tasks.len());
    let chunk = tasks.len().div_ceil(workers);
    let mut out: Vec<Option<RegionOutcome>> = tasks.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        for (tch, och) in tasks.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                for (t, o) in tch.iter().zip(och.iter_mut()) {
                    *o = Some(run_region(t, ctx));
                }
            });
        }
    });
    out.into_iter().flatten().collect()
}

/// Smallest power-of-two region side (min 8) that covers `rlim`.
fn region_side(rlim: f64, maxdim: u32) -> u32 {
    let r = rlim.max(1.0).ceil() as u32;
    let mut s = 8u32;
    while s < r && s < maxdim {
        s *= 2;
    }
    s
}

struct Annealer {
    device: Device,
    blocks: Vec<BlockRef>,
    n_clb: usize,
    clb_sites: Vec<Slot>,
    io_sites: Vec<Slot>,
    /// Per-net terminal block indices.
    term_idx: Vec<Vec<u32>>,
    /// Per-net crossing factor.
    net_q: Vec<f64>,
    /// Per-block touching-net indices.
    nets_of: Vec<Vec<u32>>,
    pos: Vec<Slot>,
    net_costs: Vec<f64>,
}

impl Annealer {
    fn recompute_net_costs(&mut self) {
        for (ni, terms) in self.term_idx.iter().enumerate() {
            let (w, h) = bbox_idx(terms, |t| self.pos[t as usize]);
            self.net_costs[ni] = self.net_q[ni] * (w + h) as f64;
        }
    }

    /// One full sweep: bucket blocks/sites into regions, run the two
    /// checkerboard phases, commit batches in region order, and refresh
    /// net costs exactly. Returns (attempted, accepted deltas).
    fn sweep(
        &mut self,
        sweep_no: u64,
        temp: f64,
        rlim: f64,
        moves_per_temp: usize,
        threads: usize,
        cfg: &PlaceConfig,
    ) -> (usize, Vec<f64>) {
        // Region geometry covers the *full* grid including the IO ring
        // (coordinates run 0..=width+1), not just the logic columns.
        let (w, h) = self.device.extent();
        let maxdim = w.max(h);
        let side = region_side(rlim, maxdim);
        let single = side >= maxdim;
        let off = if single || sweep_no.is_multiple_of(2) {
            0
        } else {
            side / 2
        };
        let nrx = if single { 1 } else { (w + off).div_ceil(side) };
        let nry = if single { 1 } else { (h + off).div_ceil(side) };
        let n_regions = (nrx * nry) as usize;
        let rid_of = |loc: GridLoc| -> usize {
            if single {
                0
            } else {
                (((loc.y + off) / side) * nrx + (loc.x + off) / side) as usize
            }
        };

        let mut rblocks: Vec<Vec<u32>> = vec![Vec::new(); n_regions];
        for (bi, s) in self.pos.iter().enumerate() {
            rblocks[rid_of(s.loc)].push(bi as u32);
        }
        let mut rclb: Vec<Vec<u32>> = vec![Vec::new(); n_regions];
        for (si, s) in self.clb_sites.iter().enumerate() {
            rclb[rid_of(s.loc)].push(si as u32);
        }
        let mut rio: Vec<Vec<u32>> = vec![Vec::new(); n_regions];
        for (si, s) in self.io_sites.iter().enumerate() {
            rio[rid_of(s.loc)].push(si as u32);
        }

        let total = self.blocks.len();
        let mut attempted = 0usize;
        let mut deltas = Vec::new();
        for color in 0..2u32 {
            if single && color == 1 {
                break;
            }
            let mut tasks = Vec::new();
            for rid in 0..n_regions {
                let (rx, ry) = (rid as u32 % nrx, rid as u32 / nrx);
                if !single && (rx + ry) % 2 != color {
                    continue;
                }
                if rblocks[rid].is_empty() {
                    continue;
                }
                let attempts = ((moves_per_temp * rblocks[rid].len()) / total).max(1);
                tasks.push(RegionTask {
                    blocks: std::mem::take(&mut rblocks[rid]),
                    clb_sites: std::mem::take(&mut rclb[rid]),
                    io_sites: std::mem::take(&mut rio[rid]),
                    attempts,
                    seed: splitmix64(
                        splitmix64(cfg.seed ^ cfg.parallelism.deterministic_seed.rotate_left(17))
                            ^ (sweep_no << 8)
                            ^ ((color as u64) << 40)
                            ^ rid as u64,
                    ),
                });
            }
            if tasks.is_empty() {
                continue;
            }
            let outcomes = {
                let ctx = PhaseCtx {
                    pos: &self.pos,
                    net_costs: &self.net_costs,
                    term_idx: &self.term_idx,
                    net_q: &self.net_q,
                    nets_of: &self.nets_of,
                    clb_sites: &self.clb_sites,
                    io_sites: &self.io_sites,
                    n_clb: self.n_clb,
                    temp,
                    rlim,
                };
                run_phase(&tasks, &ctx, threads)
            };
            // Barrier: commit in region-index (task) order, then refresh
            // net costs so the next phase sees exact baselines.
            for out in outcomes {
                attempted += out.attempted;
                deltas.extend_from_slice(&out.deltas);
                for (b, s) in out.moved {
                    self.pos[b as usize] = s;
                }
            }
            self.recompute_net_costs();
        }
        (attempted, deltas)
    }
}

/// Place a clustering onto a device (engine entry point).
pub(crate) fn anneal(
    clustering: &Clustering,
    device: Device,
    cfg: &PlaceConfig,
) -> Result<Placement> {
    let nets = net_terminals(clustering);

    // Enumerate blocks: clusters first, then IO pads.
    let mut blocks: Vec<BlockRef> = (0..clustering.clusters.len())
        .map(|i| BlockRef::Cluster(ClusterId(i as u32)))
        .collect();
    let mut io_blocks: Vec<BlockRef> = Vec::new();
    for &pi in &clustering.netlist.inputs {
        if !clustering.netlist.clocks.contains(&pi) {
            io_blocks.push(BlockRef::InputPad(pi));
        }
    }
    for &po in &clustering.netlist.outputs {
        io_blocks.push(BlockRef::OutputPad(po));
    }
    // Clock pads still occupy an IO site (driven from off chip) but carry
    // no placement cost; place them too so the bitstream can configure
    // their pad. They are modelled as input pads.
    for &clk in &clustering.netlist.clocks {
        io_blocks.push(BlockRef::InputPad(clk));
    }

    let n_clb = blocks.len();
    let n_io = io_blocks.len();
    if n_clb > device.clb_capacity() || n_io > device.io_capacity() {
        return Err(PlaceError::DoesNotFit {
            clbs: n_clb,
            clb_cap: device.clb_capacity(),
            ios: n_io,
            io_cap: device.io_capacity(),
        });
    }
    blocks.extend(io_blocks.iter().copied());

    // Initial placement: round-robin over sites.
    let clb_sites: Vec<Slot> = device
        .clb_locs()
        .into_iter()
        .map(|loc| Slot { loc, sub: 0 })
        .collect();
    let io_sites: Vec<Slot> = device
        .io_locs()
        .into_iter()
        .flat_map(|loc| (0..device.arch.io_per_tile as u32).map(move |sub| Slot { loc, sub }))
        .collect();

    let mut pos: Vec<Slot> = Vec::with_capacity(blocks.len());
    pos.extend_from_slice(&clb_sites[..n_clb]);
    pos.extend_from_slice(&io_sites[..n_io]);

    let build_placement = |pos: &[Slot], cost: f64, nets: Vec<PlacedNet>| -> Placement {
        let slots: HashMap<BlockRef, Slot> =
            blocks.iter().copied().zip(pos.iter().copied()).collect();
        Placement {
            device: device.clone(),
            slots,
            cost,
            nets,
        }
    };

    if blocks.is_empty() || nets.is_empty() {
        let p = build_placement(&pos, 0.0, nets);
        let cost = p.nets.iter().map(|n| net_cost(n, &p.slots)).sum();
        return Ok(Placement { cost, ..p });
    }

    // Index nets by block position index.
    let mut block_idx: HashMap<BlockRef, u32> = HashMap::with_capacity(blocks.len());
    for (i, &b) in blocks.iter().enumerate() {
        block_idx.insert(b, i as u32);
    }
    let term_idx: Vec<Vec<u32>> = nets
        .iter()
        .map(|n| n.terminals.iter().map(|t| block_idx[t]).collect())
        .collect();
    let net_q: Vec<f64> = nets
        .iter()
        .map(|n| crossing_factor(n.terminals.len()))
        .collect();
    let mut nets_of: Vec<Vec<u32>> = vec![Vec::new(); blocks.len()];
    for (ni, terms) in term_idx.iter().enumerate() {
        for &t in terms {
            nets_of[t as usize].push(ni as u32);
        }
    }

    let mut ann = Annealer {
        device: device.clone(),
        blocks: blocks.clone(),
        n_clb,
        clb_sites,
        io_sites,
        term_idx,
        net_q,
        nets_of,
        pos,
        net_costs: vec![0.0; nets.len()],
    };
    ann.recompute_net_costs();
    let mut cost: f64 = ann.net_costs.iter().sum();

    let threads = cfg.parallelism.threads.max(1);
    let moves_per_temp = ((cfg.inner_num * (blocks.len() as f64).powf(4.0 / 3.0)) as usize).max(16);
    let maxdim = device.width.max(device.height);
    let mut rlim = maxdim as f64;

    // Initial temperature: the std-dev of a sample of move deltas (VPR
    // uses 20x; accept-everything warm start). Sampled on a throwaway
    // whole-chip region so the committed state is untouched.
    let deltas = {
        let sample = RegionTask {
            blocks: (0..blocks.len() as u32).collect(),
            clb_sites: (0..ann.clb_sites.len() as u32).collect(),
            io_sites: (0..ann.io_sites.len() as u32).collect(),
            attempts: blocks.len().min(200),
            seed: splitmix64(
                splitmix64(cfg.seed ^ cfg.parallelism.deterministic_seed.rotate_left(17))
                    ^ u64::MAX,
            ),
        };
        let ctx = PhaseCtx {
            pos: &ann.pos,
            net_costs: &ann.net_costs,
            term_idx: &ann.term_idx,
            net_q: &ann.net_q,
            nets_of: &ann.nets_of,
            clb_sites: &ann.clb_sites,
            io_sites: &ann.io_sites,
            n_clb,
            temp: f64::INFINITY,
            rlim,
        };
        run_region(&sample, &ctx).deltas
    };
    let mean = deltas.iter().sum::<f64>() / deltas.len().max(1) as f64;
    let var =
        deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / deltas.len().max(1) as f64;
    let mut temp = 20.0 * var.sqrt().max(1.0);

    let exit_temp = |cost: f64, nets: usize| 0.005 * cost / nets.max(1) as f64;
    let mut sweep_no = 0u64;
    while temp > exit_temp(cost, nets.len()) {
        let (attempted, accepted) = ann.sweep(sweep_no, temp, rlim, moves_per_temp, threads, cfg);
        cost = ann.net_costs.iter().sum();
        // VPR's schedule: keep the acceptance rate near 0.44.
        let rate = accepted.len() as f64 / attempted.max(1) as f64;
        let alpha = if rate > 0.96 {
            0.5
        } else if rate > 0.8 {
            0.9
        } else if rate > 0.15 {
            0.95
        } else {
            0.8
        };
        temp *= alpha;
        rlim = (rlim * (1.0 - 0.44 + rate)).clamp(1.0, maxdim as f64);
        sweep_no += 1;
    }
    Ok(build_placement(&ann.pos, cost, nets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Parallelism;
    use fpga_arch::{Architecture, ClbArch};
    use fpga_netlist::ir::{CellKind, Netlist};

    fn chain_clustering(n: usize) -> Clustering {
        let mut nl = Netlist::new("chain");
        let clk = nl.net("clk");
        nl.add_clock(clk);
        let mut prev = nl.net("x");
        nl.add_input(prev);
        for i in 0..n {
            let d = nl.net(&format!("d{i}"));
            let q = nl.net(&format!("q{i}"));
            nl.add_cell(
                &format!("l{i}"),
                CellKind::Lut { k: 1, truth: 0b01 },
                vec![prev],
                d,
            );
            nl.add_cell(
                &format!("f{i}"),
                CellKind::Dff {
                    clock: clk,
                    init: false,
                },
                vec![d],
                q,
            );
            prev = q;
        }
        nl.add_output(prev);
        fpga_pack::pack(&nl, &ClbArch::paper_default()).unwrap()
    }

    fn engine(seed: u64, inner_num: f64, threads: usize) -> AnnealingPlacer {
        AnnealingPlacer::new(
            PlaceConfig::new()
                .seed(seed)
                .inner_num(inner_num)
                .parallelism(Parallelism::serial().threads(threads)),
        )
    }

    #[test]
    fn placement_is_legal() {
        let c = chain_clustering(40);
        let device = Device::sized_for(
            Architecture::paper_default(),
            c.clusters.len(),
            c.netlist.inputs.len() + c.netlist.outputs.len(),
        );
        let p = engine(1, 5.0, 1).place(&c, device).unwrap();
        // Every block has a distinct slot of the right class.
        let mut seen = std::collections::HashSet::new();
        for (b, s) in &p.slots {
            assert!(seen.insert(*s), "slot reused: {s:?}");
            match p.device.block_at(s.loc) {
                fpga_arch::BlockKind::Clb => assert!(!b.is_io(), "{b:?} on CLB tile"),
                fpga_arch::BlockKind::Io => assert!(b.is_io(), "{b:?} on IO tile"),
                fpga_arch::BlockKind::Empty => panic!("block on empty tile"),
            }
            if b.is_io() {
                assert!((s.sub as usize) < p.device.arch.io_per_tile);
            } else {
                assert_eq!(s.sub, 0);
            }
        }
        assert!(p.cost > 0.0);
    }

    #[test]
    fn annealing_beats_initial_placement() {
        let c = chain_clustering(60);
        let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 4);
        // Compare against a clearly bad measure: the worst-case bbox if
        // every net spanned the whole chip.
        let p = engine(3, 4.0, 1).place(&c, device.clone()).unwrap();
        let span = (device.width + device.height) as f64;
        let worst: f64 = p
            .nets
            .iter()
            .map(|n| crate::cost::crossing_factor(n.terminals.len()) * span)
            .sum();
        assert!(
            p.cost < 0.8 * worst,
            "annealed cost {} should beat whole-chip spans {}",
            p.cost,
            worst
        );
        // A chain should place compactly: average net bbox small.
        let avg = p.hpwl() as f64 / p.nets.len() as f64;
        assert!(avg < span / 2.0, "avg net span {avg} vs chip span {span}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let c = chain_clustering(20);
        let mk = || {
            let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 4);
            engine(7, 2.0, 1).place(&c, device).unwrap()
        };
        let p1 = mk();
        let p2 = mk();
        assert_eq!(p1.cost, p2.cost);
        assert_eq!(p1.slots, p2.slots);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let c = chain_clustering(48);
        let mk = |threads: usize| {
            let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 4);
            engine(5, 2.0, threads).place(&c, device).unwrap()
        };
        let p1 = mk(1);
        for threads in [2, 3, 8] {
            let pn = mk(threads);
            assert_eq!(p1.slots, pn.slots, "threads={threads} diverged");
            assert_eq!(p1.cost.to_bits(), pn.cost.to_bits());
        }
    }

    #[test]
    fn deterministic_seed_changes_results() {
        let c = chain_clustering(30);
        let mk = |det: u64| {
            let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 4);
            AnnealingPlacer::new(
                PlaceConfig::new()
                    .seed(5)
                    .inner_num(2.0)
                    .parallelism(Parallelism::serial().deterministic_seed(det)),
            )
            .place(&c, device)
            .unwrap()
        };
        assert_ne!(mk(0).slots, mk(99).slots);
    }

    #[test]
    fn too_small_device_rejected() {
        let c = chain_clustering(40);
        let device = Device::new(Architecture::paper_default(), 1, 1);
        assert!(matches!(
            engine(1, 5.0, 1).place(&c, device),
            Err(PlaceError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn deprecated_wrapper_matches_engine() {
        let c = chain_clustering(12);
        let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 4);
        #[allow(deprecated)]
        let via_wrapper = place(
            &c,
            device.clone(),
            PlaceOptions {
                seed: 2,
                inner_num: 1.0,
            },
        )
        .unwrap();
        let via_engine = engine(2, 1.0, 1).place(&c, device).unwrap();
        assert_eq!(via_wrapper.slots, via_engine.slots);
    }

    #[test]
    fn place_file_lists_all_blocks() {
        let c = chain_clustering(10);
        let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 4);
        let p = engine(2, 1.0, 1).place(&c, device).unwrap();
        let text = p.write_place(&c);
        let body_lines = text.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(body_lines, p.slots.len());
        assert!(text.contains("clb_0"));
        assert!(text.contains("in_x"));
    }
}
