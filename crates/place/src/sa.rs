//! Adaptive simulated-annealing placement (the VPR schedule).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fpga_arch::device::{Device, GridLoc};
use fpga_pack::{ClusterId, Clustering};

use crate::cost::{crossing_factor, net_terminals, PlacedNet};
use crate::{BlockRef, PlaceError, Result, Slot};

/// Placement options.
#[derive(Clone, Debug)]
pub struct PlaceOptions {
    pub seed: u64,
    /// Moves per temperature = `inner_num * blocks^(4/3)` (VPR default 10;
    /// smaller values trade quality for speed).
    pub inner_num: f64,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            seed: 1,
            inner_num: 5.0,
        }
    }
}

/// The placement result.
#[derive(Clone, Debug)]
pub struct Placement {
    pub device: Device,
    /// Block -> placed slot.
    pub slots: HashMap<BlockRef, Slot>,
    /// Final bounding-box cost.
    pub cost: f64,
    /// Nets used for the cost (kept for routing and reports).
    pub nets: Vec<PlacedNet>,
}

impl Placement {
    /// Location of a block.
    pub fn loc_of(&self, b: BlockRef) -> GridLoc {
        self.slots[&b].loc
    }

    /// Location of a cluster.
    pub fn cluster_loc(&self, c: ClusterId) -> GridLoc {
        self.loc_of(BlockRef::Cluster(c))
    }

    /// Total half-perimeter wirelength (without crossing factors).
    pub fn hpwl(&self) -> u64 {
        self.nets
            .iter()
            .map(|n| {
                let (w, h) = bbox(&n.terminals, &self.slots);
                (w + h) as u64
            })
            .sum()
    }

    /// Render the `.place`-style text file.
    pub fn write_place(&self, clustering: &Clustering) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# placement: {} blocks, grid {} x {}\n",
            self.slots.len(),
            self.device.width,
            self.device.height
        ));
        let mut rows: Vec<(String, Slot)> = self
            .slots
            .iter()
            .map(|(b, s)| {
                let name = match b {
                    BlockRef::Cluster(c) => format!("clb_{}", c.0),
                    BlockRef::InputPad(n) => {
                        format!("in_{}", clustering.netlist.net_name(*n))
                    }
                    BlockRef::OutputPad(n) => {
                        format!("out_{}", clustering.netlist.net_name(*n))
                    }
                };
                (name, *s)
            })
            .collect();
        rows.sort();
        for (name, slot) in rows {
            out.push_str(&format!(
                "{name} {} {} {}\n",
                slot.loc.x, slot.loc.y, slot.sub
            ));
        }
        out
    }
}

fn bbox(terminals: &[BlockRef], slots: &HashMap<BlockRef, Slot>) -> (u32, u32) {
    let mut min_x = u32::MAX;
    let mut max_x = 0;
    let mut min_y = u32::MAX;
    let mut max_y = 0;
    for t in terminals {
        let loc = slots[t].loc;
        min_x = min_x.min(loc.x);
        max_x = max_x.max(loc.x);
        min_y = min_y.min(loc.y);
        max_y = max_y.max(loc.y);
    }
    (max_x - min_x, max_y - min_y)
}

fn net_cost(net: &PlacedNet, slots: &HashMap<BlockRef, Slot>) -> f64 {
    let (w, h) = bbox(&net.terminals, slots);
    crossing_factor(net.terminals.len()) * (w + h) as f64
}

/// Place a clustering onto a device with simulated annealing.
pub fn place(clustering: &Clustering, device: Device, opts: PlaceOptions) -> Result<Placement> {
    let nets = net_terminals(clustering);
    let mut rng = SmallRng::seed_from_u64(opts.seed);

    // Enumerate blocks.
    let mut blocks: Vec<BlockRef> = (0..clustering.clusters.len())
        .map(|i| BlockRef::Cluster(ClusterId(i as u32)))
        .collect();
    let mut io_blocks: Vec<BlockRef> = Vec::new();
    for &pi in &clustering.netlist.inputs {
        if !clustering.netlist.clocks.contains(&pi) {
            io_blocks.push(BlockRef::InputPad(pi));
        }
    }
    for &po in &clustering.netlist.outputs {
        io_blocks.push(BlockRef::OutputPad(po));
    }
    // Clock pads still occupy an IO site (driven from off chip) but carry
    // no placement cost; place them too so the bitstream can configure
    // their pad. They are modelled as input pads.
    for &clk in &clustering.netlist.clocks {
        io_blocks.push(BlockRef::InputPad(clk));
    }

    let n_clb = blocks.len();
    let n_io = io_blocks.len();
    if n_clb > device.clb_capacity() || n_io > device.io_capacity() {
        return Err(PlaceError::DoesNotFit {
            clbs: n_clb,
            clb_cap: device.clb_capacity(),
            ios: n_io,
            io_cap: device.io_capacity(),
        });
    }
    blocks.extend(io_blocks.iter().copied());

    // Initial placement: round-robin over sites.
    let clb_sites: Vec<Slot> = device
        .clb_locs()
        .into_iter()
        .map(|loc| Slot { loc, sub: 0 })
        .collect();
    let io_sites: Vec<Slot> = device
        .io_locs()
        .into_iter()
        .flat_map(|loc| (0..device.arch.io_per_tile as u32).map(move |sub| Slot { loc, sub }))
        .collect();

    let mut slots: HashMap<BlockRef, Slot> = HashMap::new();
    let mut occupant: HashMap<Slot, BlockRef> = HashMap::new();
    for (i, &b) in blocks.iter().enumerate().take(n_clb) {
        slots.insert(b, clb_sites[i]);
        occupant.insert(clb_sites[i], b);
    }
    for (i, &b) in io_blocks.iter().enumerate() {
        slots.insert(b, io_sites[i]);
        occupant.insert(io_sites[i], b);
    }

    // Net index: block -> nets touching it.
    let mut nets_of: HashMap<BlockRef, Vec<usize>> = HashMap::new();
    for (ni, net) in nets.iter().enumerate() {
        for &t in &net.terminals {
            nets_of.entry(t).or_default().push(ni);
        }
    }
    let mut net_costs: Vec<f64> = nets.iter().map(|n| net_cost(n, &slots)).collect();
    let mut cost: f64 = net_costs.iter().sum();

    if blocks.is_empty() || nets.is_empty() {
        return Ok(Placement {
            device,
            slots,
            cost,
            nets,
        });
    }

    // One annealing move; returns Some(delta) if accepted.
    let moves_per_temp =
        ((opts.inner_num * (blocks.len() as f64).powf(4.0 / 3.0)) as usize).max(16);
    let mut rlim = device.width.max(device.height) as f64;

    // Initial temperature: the std-dev of a sample of move deltas (VPR
    // uses 20x; accept-everything warm start).
    let mut deltas = Vec::new();
    {
        let mut trial_slots = slots.clone();
        let mut trial_occ = occupant.clone();
        let mut trial_costs = net_costs.clone();
        for _ in 0..blocks.len().min(200) {
            if let Some(delta) = try_move(
                &blocks,
                &nets,
                &nets_of,
                &mut trial_slots,
                &mut trial_occ,
                &mut trial_costs,
                &clb_sites,
                &io_sites,
                n_clb,
                f64::INFINITY,
                rlim,
                &mut rng,
            ) {
                deltas.push(delta);
            }
        }
    }
    let mean = deltas.iter().sum::<f64>() / deltas.len().max(1) as f64;
    let var =
        deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / deltas.len().max(1) as f64;
    let mut temp = 20.0 * var.sqrt().max(1.0);

    let exit_temp = |cost: f64, nets: usize| 0.005 * cost / nets.max(1) as f64;
    while temp > exit_temp(cost, nets.len()) {
        let mut accepted = 0usize;
        for _ in 0..moves_per_temp {
            if let Some(delta) = try_move(
                &blocks,
                &nets,
                &nets_of,
                &mut slots,
                &mut occupant,
                &mut net_costs,
                &clb_sites,
                &io_sites,
                n_clb,
                temp,
                rlim,
                &mut rng,
            ) {
                accepted += 1;
                cost += delta;
            }
        }
        // VPR's schedule: keep the acceptance rate near 0.44.
        let rate = accepted as f64 / moves_per_temp as f64;
        let alpha = if rate > 0.96 {
            0.5
        } else if rate > 0.8 {
            0.9
        } else if rate > 0.15 {
            0.95
        } else {
            0.8
        };
        temp *= alpha;
        rlim = (rlim * (1.0 - 0.44 + rate)).clamp(1.0, device.width.max(device.height) as f64);
        // Guard against numerical drift on long runs.
        if cost < 0.0 {
            cost = net_costs.iter().sum();
        }
    }
    // Final exact cost.
    let cost: f64 = nets.iter().map(|n| net_cost(n, &slots)).sum();
    Ok(Placement {
        device,
        slots,
        cost,
        nets,
    })
}

/// Propose and evaluate one move. Returns the accepted delta, or None.
#[allow(clippy::too_many_arguments)]
fn try_move(
    blocks: &[BlockRef],
    nets: &[PlacedNet],
    nets_of: &HashMap<BlockRef, Vec<usize>>,
    slots: &mut HashMap<BlockRef, Slot>,
    occupant: &mut HashMap<Slot, BlockRef>,
    net_costs: &mut [f64],
    clb_sites: &[Slot],
    io_sites: &[Slot],
    n_clb: usize,
    temp: f64,
    rlim: f64,
    rng: &mut SmallRng,
) -> Option<f64> {
    let bi = rng.gen_range(0..blocks.len());
    let block = blocks[bi];
    let from = slots[&block];
    // Target site of the same class within the range limit.
    let sites = if bi < n_clb { clb_sites } else { io_sites };
    let mut to = sites[rng.gen_range(0..sites.len())];
    for _ in 0..8 {
        let d = (from.loc.x.abs_diff(to.loc.x) + from.loc.y.abs_diff(to.loc.y)) as f64;
        if d <= rlim.max(2.0) && to != from {
            break;
        }
        to = sites[rng.gen_range(0..sites.len())];
    }
    if to == from {
        return None;
    }
    let other = occupant.get(&to).copied();

    // Affected nets.
    let mut affected: Vec<usize> = nets_of.get(&block).cloned().unwrap_or_default();
    if let Some(o) = other {
        if let Some(extra) = nets_of.get(&o) {
            affected.extend(extra.iter().copied());
        }
    }
    affected.sort_unstable();
    affected.dedup();

    // Apply tentatively.
    slots.insert(block, to);
    occupant.insert(to, block);
    if let Some(o) = other {
        slots.insert(o, from);
        occupant.insert(from, o);
    } else {
        occupant.remove(&from);
    }

    let mut delta = 0.0;
    let new_costs: Vec<(usize, f64)> = affected
        .iter()
        .map(|&ni| {
            let c = net_cost(&nets[ni], slots);
            delta += c - net_costs[ni];
            (ni, c)
        })
        .collect();

    let accept = delta <= 0.0 || {
        temp.is_finite() && rng.gen::<f64>() < (-delta / temp).exp() || temp.is_infinite()
    };
    if accept {
        for (ni, c) in new_costs {
            net_costs[ni] = c;
        }
        Some(delta)
    } else {
        // Revert.
        slots.insert(block, from);
        occupant.insert(from, block);
        if let Some(o) = other {
            slots.insert(o, to);
            occupant.insert(to, o);
        } else {
            occupant.remove(&to);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_arch::{Architecture, ClbArch};
    use fpga_netlist::ir::{CellKind, Netlist};

    fn chain_clustering(n: usize) -> Clustering {
        let mut nl = Netlist::new("chain");
        let clk = nl.net("clk");
        nl.add_clock(clk);
        let mut prev = nl.net("x");
        nl.add_input(prev);
        for i in 0..n {
            let d = nl.net(&format!("d{i}"));
            let q = nl.net(&format!("q{i}"));
            nl.add_cell(
                &format!("l{i}"),
                CellKind::Lut { k: 1, truth: 0b01 },
                vec![prev],
                d,
            );
            nl.add_cell(
                &format!("f{i}"),
                CellKind::Dff {
                    clock: clk,
                    init: false,
                },
                vec![d],
                q,
            );
            prev = q;
        }
        nl.add_output(prev);
        fpga_pack::pack(&nl, &ClbArch::paper_default()).unwrap()
    }

    #[test]
    fn placement_is_legal() {
        let c = chain_clustering(40);
        let device = Device::sized_for(
            Architecture::paper_default(),
            c.clusters.len(),
            c.netlist.inputs.len() + c.netlist.outputs.len(),
        );
        let p = place(&c, device, PlaceOptions::default()).unwrap();
        // Every block has a distinct slot of the right class.
        let mut seen = std::collections::HashSet::new();
        for (b, s) in &p.slots {
            assert!(seen.insert(*s), "slot reused: {s:?}");
            match p.device.block_at(s.loc) {
                fpga_arch::BlockKind::Clb => assert!(!b.is_io(), "{b:?} on CLB tile"),
                fpga_arch::BlockKind::Io => assert!(b.is_io(), "{b:?} on IO tile"),
                fpga_arch::BlockKind::Empty => panic!("block on empty tile"),
            }
            if b.is_io() {
                assert!((s.sub as usize) < p.device.arch.io_per_tile);
            } else {
                assert_eq!(s.sub, 0);
            }
        }
        assert!(p.cost > 0.0);
    }

    #[test]
    fn annealing_beats_initial_placement() {
        let c = chain_clustering(60);
        let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 4);
        // "Initial" = annealer frozen immediately (zero moves): emulate by
        // computing cost of the round-robin assignment via a tiny run at
        // inner_num ~ 0. Instead, compare against a clearly bad measure:
        // the worst-case bbox if every net spanned the whole chip.
        let p = place(
            &c,
            device.clone(),
            PlaceOptions {
                seed: 3,
                inner_num: 4.0,
            },
        )
        .unwrap();
        let span = (device.width + device.height) as f64;
        let worst: f64 = p
            .nets
            .iter()
            .map(|n| crate::cost::crossing_factor(n.terminals.len()) * span)
            .sum();
        assert!(
            p.cost < 0.8 * worst,
            "annealed cost {} should beat whole-chip spans {}",
            p.cost,
            worst
        );
        // A chain should place compactly: average net bbox small.
        let avg = p.hpwl() as f64 / p.nets.len() as f64;
        assert!(avg < span / 2.0, "avg net span {avg} vs chip span {span}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let c = chain_clustering(20);
        let mk = || {
            let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 4);
            place(
                &c,
                device,
                PlaceOptions {
                    seed: 7,
                    inner_num: 2.0,
                },
            )
            .unwrap()
        };
        let p1 = mk();
        let p2 = mk();
        assert_eq!(p1.cost, p2.cost);
        assert_eq!(p1.slots, p2.slots);
    }

    #[test]
    fn too_small_device_rejected() {
        let c = chain_clustering(40);
        let device = Device::new(Architecture::paper_default(), 1, 1);
        assert!(matches!(
            place(&c, device, PlaceOptions::default()),
            Err(PlaceError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn place_file_lists_all_blocks() {
        let c = chain_clustering(10);
        let device = Device::sized_for(Architecture::paper_default(), c.clusters.len(), 4);
        let p = place(
            &c,
            device,
            PlaceOptions {
                seed: 2,
                inner_num: 1.0,
            },
        )
        .unwrap();
        let text = p.write_place(&c);
        let body_lines = text.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(body_lines, p.slots.len());
        assert!(text.contains("clb_0"));
        assert!(text.contains("in_x"));
    }
}
