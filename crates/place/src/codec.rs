//! Binary wire codec for [`Placement`] — the placed-design artifact the
//! flow server persists between runs.
//!
//! Two wrinkles against the other codecs:
//!
//! * The block→slot map is a `HashMap`, whose iteration order is not
//!   stable; entries are written sorted by block identity so equal
//!   placements always encode byte-identically.
//! * The device's [`Architecture`] already has a canonical, stable JSON
//!   form (it is what the stage-cache keys digest), so that existing
//!   machinery is reused verbatim rather than re-encoded field by field.

use fpga_arch::device::{Device, GridLoc};
use fpga_arch::Architecture;
use fpga_netlist::codec::{ByteReader, ByteWriter, CodecError, CodecResult};
use fpga_netlist::NetId;
use fpga_pack::ClusterId;

use crate::cost::PlacedNet;
use crate::{BlockRef, Placement, Slot};

/// Stable ordering key for map serialization: variant tag, then index.
fn block_sort_key(b: &BlockRef) -> (u8, u32) {
    match b {
        BlockRef::Cluster(c) => (0, c.0),
        BlockRef::InputPad(n) => (1, n.0),
        BlockRef::OutputPad(n) => (2, n.0),
    }
}

fn write_block_ref(w: &mut ByteWriter, b: &BlockRef) {
    let (tag, index) = block_sort_key(b);
    w.u8(tag);
    w.u32(index);
}

fn read_block_ref(r: &mut ByteReader) -> CodecResult<BlockRef> {
    let tag = r.u8()?;
    let index = r.u32()?;
    Ok(match tag {
        0 => BlockRef::Cluster(ClusterId(index)),
        1 => BlockRef::InputPad(NetId(index)),
        2 => BlockRef::OutputPad(NetId(index)),
        other => return Err(CodecError(format!("bad block-ref tag {other}"))),
    })
}

/// Serialize a device: the architecture's canonical JSON plus the grid.
pub fn write_device(w: &mut ByteWriter, d: &Device) {
    w.str(&d.arch.canonical_text());
    w.usize(d.width);
    w.usize(d.height);
}

/// Inverse of [`write_device`].
pub fn read_device(r: &mut ByteReader) -> CodecResult<Device> {
    let arch = Architecture::from_json(&r.str()?)
        .map_err(|e| CodecError(format!("bad architecture JSON: {e}")))?;
    Ok(Device {
        arch,
        width: r.usize()?,
        height: r.usize()?,
    })
}

/// Serialize a placement (device, sorted slot map, cost, placed nets).
pub fn placement_to_bytes(p: &Placement) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_device(&mut w, &p.device);
    let mut slots: Vec<(&BlockRef, &Slot)> = p.slots.iter().collect();
    slots.sort_by_key(|(b, _)| block_sort_key(b));
    w.seq(&slots, |w, (block, slot)| {
        write_block_ref(w, block);
        w.u32(slot.loc.x);
        w.u32(slot.loc.y);
        w.u32(slot.sub);
    });
    w.f64(p.cost);
    w.seq(&p.nets, |w, net: &PlacedNet| {
        w.u32(net.net.0);
        w.seq(&net.terminals, write_block_ref);
    });
    w.into_bytes()
}

/// Inverse of [`placement_to_bytes`].
pub fn placement_from_bytes(bytes: &[u8]) -> CodecResult<Placement> {
    let mut r = ByteReader::new(bytes);
    let device = read_device(&mut r)?;
    let slots = r
        .seq(|r| {
            let block = read_block_ref(r)?;
            let slot = Slot {
                loc: GridLoc {
                    x: r.u32()?,
                    y: r.u32()?,
                },
                sub: r.u32()?,
            };
            Ok((block, slot))
        })?
        .into_iter()
        .collect();
    let cost = r.f64()?;
    let nets = r.seq(|r| {
        Ok(PlacedNet {
            net: NetId(r.u32()?),
            terminals: r.seq(read_block_ref)?,
        })
    })?;
    r.finish()?;
    Ok(Placement {
        device,
        slots,
        cost,
        nets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn sample() -> Placement {
        let device = Device::new(Architecture::paper_default(), 2, 2);
        let mut slots = HashMap::new();
        slots.insert(
            BlockRef::Cluster(ClusterId(0)),
            Slot {
                loc: GridLoc::new(1, 1),
                sub: 0,
            },
        );
        slots.insert(
            BlockRef::InputPad(NetId(3)),
            Slot {
                loc: GridLoc::new(0, 1),
                sub: 1,
            },
        );
        slots.insert(
            BlockRef::OutputPad(NetId(4)),
            Slot {
                loc: GridLoc::new(3, 2),
                sub: 0,
            },
        );
        Placement {
            device,
            slots,
            cost: 1.25,
            nets: vec![PlacedNet {
                net: NetId(3),
                terminals: vec![
                    BlockRef::InputPad(NetId(3)),
                    BlockRef::Cluster(ClusterId(0)),
                ],
            }],
        }
    }

    #[test]
    fn placement_round_trips_exactly() {
        let p = sample();
        let bytes = placement_to_bytes(&p);
        let back = placement_from_bytes(&bytes).unwrap();
        assert_eq!(placement_to_bytes(&back), bytes);
        assert_eq!(back.slots, p.slots);
        assert_eq!(back.cost, p.cost);
        assert_eq!(back.device.arch, p.device.arch);
        assert_eq!((back.device.width, back.device.height), (2, 2));
    }

    #[test]
    fn encoding_is_stable_despite_hashmap_order() {
        // Two structurally equal placements built in different insertion
        // orders must produce identical bytes (sorted map entries).
        let a = sample();
        let mut b = sample();
        let entries: Vec<_> = b.slots.drain().collect();
        for (k, v) in entries.into_iter().rev() {
            b.slots.insert(k, v);
        }
        assert_eq!(placement_to_bytes(&a), placement_to_bytes(&b));
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut bytes = placement_to_bytes(&sample());
        // Corrupt the architecture JSON length so the decode fails cleanly.
        bytes[0] ^= 0xff;
        assert!(placement_from_bytes(&bytes).is_err());
    }
}
