//! Tool-by-tool walk through the Fig. 11 flow, exchanging the same file
//! formats the standalone binaries use (EDIF and BLIF text), to show that
//! every stage works as an independent, file-compatible tool.
//!
//! ```sh
//! cargo run --release --example tool_by_tool
//! ```

use fpga_framework::netlist::{blif, edif};
use fpga_framework::synth::{self, map_to_luts, MapOptions};

fn main() {
    let vhdl = "
entity gray3 is
  port ( clk : in std_logic;
         g   : out std_logic_vector(2 downto 0) );
end gray3;
architecture rtl of gray3 is
  signal b : std_logic_vector(2 downto 0);
begin
  process (clk) begin
    if rising_edge(clk) then
      b <= b + 1;
    end if;
  end process;
  g(2) <= b(2);
  g(1) <= b(2) xor b(1);
  g(0) <= b(1) xor b(0);
end rtl;";

    // VHDL Parser: syntax + semantics.
    let design = fpga_framework::vhdl::parse(vhdl).expect("syntax ok");
    fpga_framework::vhdl::check(&design).expect("semantics ok");
    println!("[vparse]   OK: entity '{}'", design.top().unwrap().0.name);

    // DIVINER: synthesis to EDIF text.
    let edif_text = synth::diviner::synthesize_to_edif(vhdl).expect("synthesizes");
    println!("[diviner]  emitted {} bytes of EDIF", edif_text.len());

    // DRUID: dialect normalization (EDIF -> EDIF).
    let normalized = synth::druid::normalize_edif(&edif_text).expect("normalizes");
    println!("[druid]    normalized EDIF ({} bytes)", normalized.len());

    // E2FMT: EDIF -> BLIF.
    let blif_text = synth::e2fmt::edif_to_blif(&normalized).expect("translates");
    println!(
        "[e2fmt]    translated to BLIF ({} lines)",
        blif_text.lines().count()
    );

    // SIS: optimize + map to 4-LUTs, back to BLIF.
    let mut netlist = blif::parse(&blif_text).expect("parses");
    synth::opt::optimize(&mut netlist).expect("optimizes");
    let (mapped, report) = map_to_luts(&netlist, MapOptions::default()).expect("maps");
    println!(
        "[sis]      mapped: {} LUTs, depth {}, {} FFs",
        report.luts, report.depth, report.ffs
    );
    let mapped_blif = blif::write(&mapped).expect("writes BLIF");

    // T-VPack: cluster into CLBs, emit .net.
    let mut for_pack = blif::parse(&mapped_blif).expect("reparses");
    fpga_framework::pack::prepare(&mut for_pack).expect("prepares");
    let clustering =
        fpga_framework::pack::pack(&for_pack, &fpga_framework::arch::ClbArch::paper_default())
            .expect("packs");
    let net_text = fpga_framework::pack::netformat::write_net(&clustering);
    println!(
        "[tvpack]   {} BLEs in {} CLBs; .net file {} lines",
        clustering.bles.len(),
        clustering.clusters.len(),
        net_text.lines().count()
    );

    // DUTYS: the architecture file both VPR and DAGGER read.
    let arch_text =
        fpga_framework::arch::write_arch_text(&fpga_framework::arch::Architecture::paper_default());
    println!(
        "[dutys]    architecture file {} lines",
        arch_text.lines().count()
    );

    // VPR + PowerModel + DAGGER through the integrated pipeline.
    let art = fpga_framework::flow::run_blif(&mapped_blif, &Default::default())
        .expect("back end succeeds");
    println!(
        "[vpr]      placed {}x{}, routed at W = {}",
        art.placement.device.width, art.placement.device.height, art.routing.channel_width
    );
    println!("[power]    {:.1} uW total", art.power.total() * 1e6);
    println!(
        "[dagger]   {} bitstream bytes; fabric verification {}",
        art.bitstream_bytes.len(),
        if art.report.stages.iter().any(|s| s.stage.contains("fabric")) {
            "PASSED"
        } else {
            "skipped"
        }
    );

    // EDIF round-trip sanity on the side.
    let back = edif::parse(&normalized).expect("EDIF re-parses");
    println!("[check]    EDIF round-trip: {} cells", back.cells.len());
}
