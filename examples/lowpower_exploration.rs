//! Low-power platform exploration: reproduce the §3 design decisions from
//! the public API — pick the flip-flop, decide the clock-gating policy,
//! and size the routing switches.
//!
//! ```sh
//! cargo run --release --example lowpower_exploration
//! ```

use fpga_framework::cells::clockgate::{breakeven_idle_probability, table2, table3};
use fpga_framework::cells::detff::{selected_detff, table1, Fig4Stimulus};
use fpga_framework::cells::routing::{
    optimum_width, paper_lengths, paper_widths, SizingExperiment, SwitchKind,
};
use fpga_framework::cells::tech::WireGeometry;

fn main() {
    // --- 1. Flip-flop selection (Table 1): simulate all five candidate
    // DETFFs at transistor level and rank them.
    println!("== flip-flop selection ==");
    let stim = Fig4Stimulus::default();
    let rows = table1(&stim, 2e-12);
    for r in &rows {
        println!(
            "  {:<14} {:7.2} fJ  {:6.1} ps  EDP {:8.0}",
            r.kind.label(),
            r.energy_fj,
            r.delay_ps,
            r.edp
        );
    }
    println!(
        "  -> platform adopts {} (lowest energy, simplest structure)\n",
        selected_detff(&rows).label()
    );

    // --- 2. Clock gating policy (Tables 2-3).
    println!("== clock gating ==");
    let t2 = table2(2e-12, 3);
    println!(
        "  BLE level: {:.0} % saving when idle, {:.1} % overhead when active",
        t2.saving_en0_pct(),
        t2.overhead_en1_pct()
    );
    let t3 = table3(2e-12, 3);
    let p = breakeven_idle_probability(&t3);
    println!(
        "  CLB level: gate the cluster clock when P(all FFs idle) > {p:.2} \
         (paper's rule: > 1/3)\n"
    );

    // --- 3. Routing switch sizing (Figs. 8-10).
    println!("== routing switch sizing ==");
    for geom in WireGeometry::all() {
        let exp = SizingExperiment::new(geom, SwitchKind::PassTransistor);
        let pts = exp.sweep(&paper_lengths(), &paper_widths());
        let opts: Vec<String> = paper_lengths()
            .iter()
            .map(|&l| format!("len {l}: {}x", optimum_width(&pts, l)))
            .collect();
        println!("  {:<42} {}", geom.label(), opts.join("  "));
    }
    println!("  -> platform adopts 10x pass transistors on length-1 segments");
}
