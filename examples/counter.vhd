-- generated: 8-bit counter
library ieee;
use ieee.std_logic_1164.all;

entity counter8 is
  port ( clk : in std_logic;
         rst : in std_logic;
         q   : out std_logic_vector(7 downto 0) );
end counter8;

architecture rtl of counter8 is
  signal cnt : std_logic_vector(7 downto 0);
begin
  process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        cnt <= "00000000";
      else
        cnt <= cnt + 1;
      end if;
    end if;
  end process;
  q <= cnt;
end rtl;
