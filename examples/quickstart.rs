//! Quickstart: the complete design flow in a dozen lines — VHDL in,
//! verified configuration bitstream out.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fpga_framework::flow::{run_vhdl, FlowOptions};

fn main() {
    // An 8-bit counter in the supported VHDL subset (any of your own
    // designs in the subset works the same way).
    let vhdl = fpga_framework::circuits::vhdl_counter(8);

    // Run all six stages: synthesis, LUT mapping, packing, placement,
    // routing, power estimation, bitstream generation — then verify the
    // bitstream by emulating the configured fabric against the netlist.
    let artifacts = run_vhdl(&vhdl, &FlowOptions::default()).expect("flow succeeds");

    println!("{}", artifacts.report.summary());
    println!(
        "bitstream: {} bytes (CRC-protected), {} CLBs on a {}x{} grid, channel width {}",
        artifacts.bitstream_bytes.len(),
        artifacts.clustering.clusters.len(),
        artifacts.placement.device.width,
        artifacts.placement.device.height,
        artifacts.routing.channel_width,
    );
    println!("estimated power: {:.1} uW", artifacts.power.total() * 1e6);
}
