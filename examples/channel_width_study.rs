//! Channel-width study: how many routing tracks do the benchmark
//! circuits need on the platform, and how does wirelength respond? This
//! is the classic VPR experiment, run on the whole generated suite.
//!
//! ```sh
//! cargo run --release --example channel_width_study
//! ```

use fpga_framework::arch::device::Device;
use fpga_framework::arch::Architecture;
use fpga_framework::place::{AnnealingPlacer, PlaceConfig, PlaceEngine};
use fpga_framework::route::{PathFinderRouter, RouteConfig, RouteEngine};
use fpga_framework::synth::{map_to_luts, MapOptions};

fn main() {
    println!("minimum channel width per benchmark (paper architecture):\n");
    println!(
        "{:<12} {:>6} {:>6} {:>8} {:>10} {:>12}",
        "design", "CLBs", "grid", "min W", "wirelen", "route iters"
    );
    for netlist in fpga_framework::circuits::benchmark_suite() {
        let name = netlist.name.clone();
        let (mut mapped, _) = map_to_luts(&netlist, MapOptions::default()).expect("maps");
        fpga_framework::pack::prepare(&mut mapped).expect("prepares");
        let arch = Architecture::paper_default();
        let clustering = fpga_framework::pack::pack(&mapped, &arch.clb).expect("packs");
        let ios = mapped.inputs.len() + mapped.outputs.len() + 1;
        let device = Device::sized_for(arch, clustering.clusters.len(), ios);
        let placement = AnnealingPlacer::new(PlaceConfig::new().seed(1).inner_num(3.0))
            .place(&clustering, device)
            .expect("places");
        let router = PathFinderRouter::new(RouteConfig::new());
        match router.find_min_channel_width(&clustering, &placement, 96) {
            Ok((w, routed)) => println!(
                "{:<12} {:>6} {:>6} {:>8} {:>10} {:>12}",
                name,
                clustering.clusters.len(),
                format!("{}x{}", placement.device.width, placement.device.height),
                w,
                routed.wirelength,
                routed.iterations
            ),
            Err(e) => println!("{name:<12} unroutable: {e}"),
        }
    }
    println!("\nnote: the platform ships channel_width = 12; designs needing more");
    println!("would target a larger device of the same family.");
}
