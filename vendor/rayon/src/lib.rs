//! Offline stand-in for `rayon`, sized for this workspace: the
//! `par_iter().map(f).collect::<Vec<_>>()` shape, executed with real
//! parallelism on `std::thread::scope` chunks (one chunk per available
//! core). Results preserve input order.

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Entry point: `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        C::from(parallel_map(self.items, &self.f))
    }
}

fn parallel_map<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(items: &'a [T], f: &F) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads.min(items.len()));
    let mut pieces: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            pieces.push(h.join().expect("rayon stand-in worker panicked"));
        }
    });
    pieces.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order_and_parallelizes() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * x).collect();
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }
}
