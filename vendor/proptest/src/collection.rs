//! Collection strategies (`proptest::collection::vec`).

use crate::rng::TestRng;
use crate::Strategy;

/// Size specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub min: usize,
    /// Inclusive.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `vec(strategy, 1..8)`: vectors whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
