//! Generate strings from a small regex subset: literal characters,
//! character classes (`[01-]`, `[a-z]`, negation unsupported), `.`, and
//! bounded repetition `{n}` / `{m,n}` / `?` / `*` / `+` (star and plus
//! capped at 8). Enough for the patterns this workspace's properties use
//! (e.g. `"[01-]{4}"`).

use crate::rng::TestRng;

enum Atom {
    Literal(char),
    Class(Vec<char>),
    Any,
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let n = if p.min == p.max {
            p.min
        } else {
            p.min + rng.below(p.max - p.min + 1)
        };
        for _ in 0..n {
            match &p.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(chars) => out.push(chars[rng.below(chars.len())]),
                Atom::Any => {
                    const PRINTABLE: &[u8] =
                        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_- ";
                    out.push(PRINTABLE[rng.below(PRINTABLE.len())] as char);
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let end = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in pattern '{pattern}'"));
                let members = expand_class(&chars[i + 1..end], pattern);
                i = end + 1;
                Atom::Class(members)
            }
            '.' => {
                i += 1;
                Atom::Any
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern '{pattern}'"));
                i += 1;
                match c {
                    'd' => Atom::Class(('0'..='9').collect()),
                    'w' => {
                        let mut m: Vec<char> = ('a'..='z').collect();
                        m.extend('A'..='Z');
                        m.extend('0'..='9');
                        m.push('_');
                        Atom::Class(m)
                    }
                    other => Atom::Literal(other),
                }
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Repetition suffix.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let end = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed repetition in pattern '{pattern}'"));
                let spec: String = chars[i + 1..end].iter().collect();
                i = end + 1;
                match spec.split_once(',') {
                    None => {
                        let n: usize = spec.trim().parse().expect("repetition count");
                        (n, n)
                    }
                    Some((lo, hi)) => {
                        let lo: usize = lo.trim().parse().expect("repetition min");
                        let hi: usize = if hi.trim().is_empty() {
                            lo + 8
                        } else {
                            hi.trim().parse().expect("repetition max")
                        };
                        (lo, hi)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty class in pattern '{pattern}'");
    let mut members = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // `a-z` range (a `-` at the ends is a literal).
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range in class of '{pattern}'");
            for c in lo..=hi {
                members.push(c);
            }
            i += 3;
        } else {
            members.push(body[i]);
            i += 1;
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TestRng;

    #[test]
    fn class_repetition() {
        let mut rng = TestRng::seed_from(5);
        for _ in 0..50 {
            let s = generate("[01-]{4}", &mut rng);
            assert_eq!(s.len(), 4);
            assert!(s.chars().all(|c| matches!(c, '0' | '1' | '-')), "{s}");
        }
    }

    #[test]
    fn ranges_and_literals() {
        let mut rng = TestRng::seed_from(9);
        let s = generate("x[a-c]{2,4}y", &mut rng);
        assert!(s.starts_with('x') && s.ends_with('y'));
        let inner = &s[1..s.len() - 1];
        assert!((2..=4).contains(&inner.len()));
        assert!(inner.chars().all(|c| matches!(c, 'a' | 'b' | 'c')));
    }
}
