//! Self-contained deterministic RNG (xorshift64*), independent of the
//! rand stand-in so the two crates can evolve separately.

#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seed_from(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }
}
