//! Offline stand-in for `proptest`, sized for this workspace.
//!
//! Supports the `proptest! { #![proptest_config(...)] #[test] fn f(x in
//! strategy, ...) { body } }` form, `prop_assert!`/`prop_assert_eq!`,
//! `TestCaseError`, integer range strategies, a regex-subset string
//! strategy (character classes and `{n}`/`{m,n}` repetition), and
//! `collection::vec`. Cases are generated from a deterministic per-test
//! seed (FNV of the test path), so failures reproduce across runs. No
//! shrinking: the failing inputs are reported as generated.

pub mod collection;
mod regex;
mod rng;

pub use rng::TestRng;

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this workspace's properties range from
        // microseconds to full place-and-route flows, and the expensive
        // blocks all set explicit case counts, so 64 keeps default blocks
        // meaningful without dominating `cargo test` wall time.
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }

    /// Upstream compatibility alias.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Value generators.
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (lo + draw) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// String strategies are regex patterns, as in upstream proptest. Only the
/// subset used here is implemented: literals, character classes, and
/// bounded repetition.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Deterministic per-test seed: FNV-1a of the test path, so each property
/// sees a stable stream independent of other tests in the binary.
pub fn rng_for(test_path: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::seed_from(h)
}

/// The property-test harness macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let dbg_args = format!(
                    concat!($(stringify!($arg), " = {:?}  ",)+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        cfg.cases,
                        e,
                        dbg_args
                    );
                }
            }
        }
    )*};
}

/// Assert inside a `proptest!` body; failure fails only the current case
/// generation with its inputs reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                lhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}
