//! Offline stand-in for `rand`, sized for this workspace.
//!
//! [`rngs::SmallRng`] is xoshiro256++ seeded through SplitMix64 (the same
//! family the real `small_rng` feature uses). Sequences are deterministic
//! for a given seed but are not bit-compatible with upstream `rand`; the
//! workspace only relies on determinism within itself.

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Widening-multiply bounded draw (Lemire); bias is < 2^-64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                if lo == 0 && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}
impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as i64).wrapping_add(hi as i64)) as $t
            }
        }
    )*};
}
impl_sample_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Convenience methods layered on [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, good statistical quality.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream does for small seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = c.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = c.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let w = c.gen_range(0u64..=0xFFFF);
            assert!(w <= 0xFFFF);
        }
    }

    use super::RngCore;
}
