//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! The registry sandbox has no syn/quote, so this crate parses the item
//! directly from the `proc_macro` token API. Supported shapes are exactly
//! what the workspace uses: non-generic structs (named, tuple, unit) and
//! enums (unit, tuple, struct variants), plus `#[serde(skip)]` on named
//! struct fields. Anything else produces a `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    ty: String,
    skip: bool,
}

enum VariantShape {
    Unit,
    Tuple(Vec<String>),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        types: Vec<String>,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// --- Parsing. ---

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Consume attributes (`# [ ... ]`), returning true if any carried
    /// `serde(skip)`.
    fn eat_attrs_check_skip(&mut self) -> bool {
        let mut skip = false;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1;
            if let Some(TokenTree::Group(g)) = self.next() {
                if attr_is_serde_skip(g.stream()) {
                    skip = true;
                }
            }
        }
        skip
    }

    /// Consume `pub`, `pub(...)`.
    fn eat_vis(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Collect a type: tokens until a top-level comma (or the end).
    /// Puncts are joined tightly so `::` and `<...>` re-parse correctly;
    /// adjacent words get a separating space.
    fn take_type(&mut self) -> String {
        let mut depth = 0i32;
        let mut out = String::new();
        let mut prev_word = false;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            let is_word = !matches!(t, TokenTree::Punct(_));
            if prev_word && is_word {
                out.push(' ');
            }
            out.push_str(&t.to_string());
            prev_word = is_word;
            self.pos += 1;
        }
        out
    }
}

fn attr_is_serde_skip(attr: TokenStream) -> bool {
    let mut c = Cursor::new(attr);
    if !c.eat_ident("serde") {
        return false;
    }
    if let Some(TokenTree::Group(g)) = c.next() {
        let mut inner = Cursor::new(g.stream());
        return inner.eat_ident("skip");
    }
    false
}

fn ident_name(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => {
            let s = i.to_string();
            Some(s.strip_prefix("r#").unwrap_or(&s).to_string())
        }
        _ => None,
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.eat_attrs_check_skip();
    c.eat_vis();
    let is_struct = if c.eat_ident("struct") {
        true
    } else if c.eat_ident("enum") {
        false
    } else {
        return Err("serde stand-in derive: expected struct or enum".into());
    };
    let name = c
        .next()
        .as_ref()
        .and_then(ident_name)
        .ok_or("serde stand-in derive: expected item name")?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stand-in derive: generic type '{name}' is not supported"
            ));
        }
    }
    if is_struct {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    types: parse_type_list(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            _ => Err(format!("serde stand-in derive: malformed struct '{name}'")),
        }
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            _ => Err(format!("serde stand-in derive: malformed enum '{name}'")),
        }
    }
}

fn parse_named_fields(ts: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let skip = c.eat_attrs_check_skip();
        c.eat_vis();
        let name = c
            .next()
            .as_ref()
            .and_then(ident_name)
            .ok_or("serde stand-in derive: expected field name")?;
        if !c.eat_punct(':') {
            return Err(format!(
                "serde stand-in derive: expected ':' after field '{name}'"
            ));
        }
        let ty = c.take_type();
        fields.push(Field { name, ty, skip });
        c.eat_punct(',');
    }
    Ok(fields)
}

fn parse_type_list(ts: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(ts);
    let mut types = Vec::new();
    while c.peek().is_some() {
        // Tuple fields may carry a visibility (e.g. `pub u32`).
        c.eat_attrs_check_skip();
        c.eat_vis();
        let ty = c.take_type();
        if !ty.is_empty() {
            types.push(ty);
        }
        c.eat_punct(',');
    }
    types
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.eat_attrs_check_skip();
        let name = c
            .next()
            .as_ref()
            .and_then(ident_name)
            .ok_or("serde stand-in derive: expected variant name")?;
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let tys = parse_type_list(g.stream());
                c.pos += 1;
                VariantShape::Tuple(tys)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.pos += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        c.eat_punct(',');
    }
    Ok(variants)
}

// --- Code generation: Serialize. ---

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let mut b = String::from("let mut m: Vec<(String, ::serde::Content)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                b.push_str(&format!(
                    "m.push((\"{n}\".to_string(), ::serde::Serialize::to_content(&self.{n})));\n",
                    n = f.name
                ));
            }
            b.push_str("::serde::Content::Map(m)");
            (name, b)
        }
        Item::TupleStruct { name, types } => {
            let b = if types.len() == 1 {
                "::serde::Serialize::to_content(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..types.len())
                    .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                    .collect();
                format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
            };
            (name, b)
        }
        Item::UnitStruct { name } => (name, "::serde::Content::Null".to_string()),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Content::Str(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(tys) => {
                        let binds: Vec<String> = (0..tys.len()).map(|i| format!("f{i}")).collect();
                        let inner = if tys.len() == 1 {
                            "::serde::Serialize::to_content(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({bl}) => ::serde::Content::Map(vec![(\"{v}\".to_string(), {inner})]),\n",
                            v = v.name,
                            bl = binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "{ let mut im: Vec<(String, ::serde::Content)> = Vec::new();\n",
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "im.push((\"{n}\".to_string(), ::serde::Serialize::to_content({n})));\n",
                                n = f.name
                            ));
                        }
                        inner.push_str("::serde::Content::Map(im) }");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {bl} }} => ::serde::Content::Map(vec![(\"{v}\".to_string(), {inner})]),\n",
                            v = v.name,
                            bl = binds.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}\n}}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

// --- Code generation: Deserialize. ---

fn named_fields_ctor(owner: &str, path: &str, fields: &[Field], map_expr: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            inits.push_str(&format!(
                "{n}: match ::serde::content_get({m}, \"{n}\") {{\n\
                 Some(v) => <{t} as ::serde::Deserialize>::from_content(v)\
                 .map_err(|e| format!(\"{owner}.{n}: {{e}}\"))?,\n\
                 None => <{t} as ::serde::Deserialize>::missing(\"{n}\")?,\n}},\n",
                n = f.name,
                t = f.ty,
                m = map_expr,
            ));
        }
    }
    format!("{path} {{\n{inits}}}")
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let ctor = named_fields_ctor(name, name, fields, "m");
            let b = format!(
                "let m = c.as_map().ok_or_else(|| format!(\"expected map for {name}, got {{c:?}}\"))?;\n\
                 Ok({ctor})"
            );
            (name, b)
        }
        Item::TupleStruct { name, types } => {
            let b = if types.len() == 1 {
                format!(
                    "Ok({name}(<{t} as ::serde::Deserialize>::from_content(c)?))",
                    t = types[0]
                )
            } else {
                let n = types.len();
                let elems: Vec<String> = types
                    .iter()
                    .enumerate()
                    .map(|(i, t)| format!("<{t} as ::serde::Deserialize>::from_content(&s[{i}])?"))
                    .collect();
                format!(
                    "let s = c.as_seq().ok_or_else(|| format!(\"expected sequence for {name}\"))?;\n\
                     if s.len() != {n} {{ return Err(format!(\"expected {n} elements for {name}, got {{}}\", s.len())); }}\n\
                     Ok({name}({elems}))",
                    elems = elems.join(", ")
                )
            };
            (name, b)
        }
        Item::UnitStruct { name } => (name, format!("Ok({name})")),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => unit_arms
                        .push_str(&format!("\"{v}\" => return Ok({name}::{v}),\n", v = v.name)),
                    VariantShape::Tuple(tys) => {
                        let build = if tys.len() == 1 {
                            format!(
                                "return Ok({name}::{v}(<{t} as ::serde::Deserialize>::from_content(v)?));",
                                v = v.name,
                                t = tys[0]
                            )
                        } else {
                            let n = tys.len();
                            let elems: Vec<String> = tys
                                .iter()
                                .enumerate()
                                .map(|(i, t)| {
                                    format!("<{t} as ::serde::Deserialize>::from_content(&s[{i}])?")
                                })
                                .collect();
                            format!(
                                "let s = v.as_seq().ok_or_else(|| format!(\"expected sequence for {name}::{vn}\"))?;\n\
                                 if s.len() != {n} {{ return Err(format!(\"wrong arity for {name}::{vn}\")); }}\n\
                                 return Ok({name}::{vn}({elems}));",
                                vn = v.name,
                                elems = elems.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{v}\" => {{ {build} }}\n", v = v.name));
                    }
                    VariantShape::Struct(fields) => {
                        let ctor =
                            named_fields_ctor(name, &format!("{name}::{}", v.name), fields, "im");
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let im = v.as_map().ok_or_else(|| format!(\"expected map for {name}::{v}\"))?;\n\
                             return Ok({ctor});\n}}\n",
                            v = v.name
                        ));
                    }
                }
            }
            let b = format!(
                "if let Some(s) = c.as_str() {{\n\
                 match s {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let Some(m) = c.as_map() {{\n\
                 if m.len() == 1 {{\n\
                 let (k, v) = &m[0];\n\
                 let _ = v;\n\
                 match k.as_str() {{\n{data_arms}_ => {{}}\n}}\n}}\n}}\n\
                 Err(format!(\"no variant of {name} matches {{c:?}}\"))"
            );
            (name, b)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, String> {{\n\
         {body}\n}}\n}}\n"
    )
}
