//! Offline stand-in for `serde`, sized for this workspace.
//!
//! The build environment has no access to a crates registry, so the real
//! `serde` cannot be fetched. This crate reimplements the subset the
//! workspace relies on: `#[derive(Serialize, Deserialize)]` on plain
//! structs and enums, routed through a small self-describing data model
//! ([`Content`]) instead of serde's visitor machinery. `serde_json` (the
//! sibling stand-in) converts `Content` to and from JSON text.
//!
//! Representation choices match serde's defaults so any JSON written by
//! the real crate parses identically here:
//! * structs -> maps keyed by field name (`#[serde(skip)]` supported);
//! * newtype structs -> their inner value;
//! * unit enum variants -> the variant name as a string;
//! * data-carrying variants -> externally tagged (`{"Variant": ...}`).

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every [`Serialize`] type lowers to.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered map (JSON objects preserve field order).
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) if v >= 0 => Some(v as u64),
            Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Content::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(v) => Some(v),
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Look up a key in a [`Content::Map`] payload (generated code helper).
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Types that can lower themselves into the [`Content`] data model.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from the [`Content`] data model.
pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, String>;

    /// Value to use when a struct field is absent from the input map.
    /// Errors by default; `Option` overrides this to `None`, matching
    /// serde's treatment of optional fields.
    fn missing(field: &'static str) -> Result<Self, String> {
        Err(format!("missing field '{field}'"))
    }
}

// --- Serialize impls for primitives and std containers. ---

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

// --- Deserialize impls. ---

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                let v = c.as_u64().ok_or_else(|| {
                    format!("expected unsigned integer, got {c:?}")
                })?;
                <$t>::try_from(v).map_err(|_| format!("integer {v} out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                let v = c.as_i64().ok_or_else(|| {
                    format!("expected integer, got {c:?}")
                })?;
                <$t>::try_from(v).map_err(|_| format!("integer {v} out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, String> {
        c.as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| format!("expected number, got {c:?}"))
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, String> {
        c.as_f64()
            .ok_or_else(|| format!("expected number, got {c:?}"))
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, String> {
        c.as_bool()
            .ok_or_else(|| format!("expected bool, got {c:?}"))
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, String> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {c:?}"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        c.as_seq()
            .ok_or_else(|| format!("expected sequence, got {c:?}"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn missing(_field: &'static str) -> Result<Self, String> {
        Ok(None)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, String> {
        let s = c
            .as_seq()
            .ok_or_else(|| format!("expected 2-tuple, got {c:?}"))?;
        if s.len() != 2 {
            return Err(format!("expected 2-tuple, got {} elements", s.len()));
        }
        Ok((A::from_content(&s[0])?, B::from_content(&s[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(c: &Content) -> Result<Self, String> {
        let s = c
            .as_seq()
            .ok_or_else(|| format!("expected 3-tuple, got {c:?}"))?;
        if s.len() != 3 {
            return Err(format!("expected 3-tuple, got {} elements", s.len()));
        }
        Ok((
            A::from_content(&s[0])?,
            B::from_content(&s[1])?,
            C::from_content(&s[2])?,
        ))
    }
}
