//! Offline stand-in for `criterion`, sized for this workspace: the
//! `criterion_group!`/`criterion_main!` harness, benchmark groups, and
//! `Bencher::iter`. Reports mean/min/max wall time per benchmark to
//! stdout; no statistical analysis or HTML output.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("benchmark group '{name}'");
        BenchmarkGroup { sample_size: 20 }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, 20, f);
        self
    }
}

pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        times: Vec::with_capacity(samples),
    };
    f(&mut b);
    if b.times.is_empty() {
        println!("  {name}: no samples");
        return;
    }
    let total: Duration = b.times.iter().sum();
    let mean = total / b.times.len() as u32;
    let min = b.times.iter().min().unwrap();
    let max = b.times.iter().max().unwrap();
    println!(
        "  {name}: mean {:?}  min {:?}  max {:?}  ({} samples)",
        mean,
        min,
        max,
        b.times.len()
    );
}

pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warmup, then timed samples.
        black_box(f());
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            self.times.push(t.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
