//! Offline stand-in for `bytes`, sized for this workspace: a growable
//! write buffer ([`BytesMut`]) and a consuming read cursor ([`Bytes`])
//! with the little-endian accessors the bitstream framer uses.

use std::ops::{Deref, DerefMut};

/// Read-side cursor over an owned byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_vec(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

/// Growable write buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Sequential reads.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn chunk(&self) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.pos += n;
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Sequential writes.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_slice(b"xyz");
        let mut r = Bytes::copy_from_slice(&w);
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }
}
