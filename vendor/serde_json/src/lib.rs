//! Offline stand-in for `serde_json`, sized for this workspace.
//!
//! Provides [`Value`], the [`json!`] macro (flat objects/arrays; nest by
//! calling `json!` explicitly), [`to_string`], [`to_string_pretty`],
//! [`from_str`], and [`to_value`]/[`from_value`], all routed through the
//! serde stand-in's `Content` data model. Object key order is insertion
//! order, so serialization is deterministic — a property the flow's
//! content-addressed cache keys rely on.

use serde::{Content, Deserialize, Serialize};

mod read;
mod write;

pub use read::from_str_value;

/// A JSON number. Integers keep their integer identity (like serde_json).
#[derive(Clone, Copy, Debug)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

/// Like serde_json, equal integers compare equal across the signed and
/// unsigned variants; floats only ever equal floats.
impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (U64(a), U64(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (F64(a), F64(b)) => a == b,
            (U64(a), I64(b)) | (I64(b), U64(a)) => b >= 0 && a == b as u64,
            _ => false,
        }
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    if v == v.trunc() && v.abs() < 1e15 {
                        // Keep a fractional marker so the value reparses as
                        // a float (serde_json prints 1.0 as "1.0").
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no NaN/inf; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// Insertion-ordered string map (the payload of [`Value::Object`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K, V> {
    entries: Vec<(K, V)>,
}

impl<V> Map<String, V> {
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    pub fn from_pairs(entries: Vec<(String, V)>) -> Self {
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k, v);
        }
        m
    }

    /// Insert, replacing any existing entry with the same key in place.
    pub fn insert(&mut self, key: String, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<V> IntoIterator for Map<String, V> {
    type Item = (String, V);
    type IntoIter = std::vec::IntoIter<(String, V)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Number(Number::U64(v)) => Some(v),
            Value::Number(Number::I64(v)) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Number(Number::I64(v)) => Some(v),
            Value::Number(Number::U64(v)) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// The `From` conversions real serde_json provides, for ergonomic
/// `map.insert(key, x.into())` call sites.
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::U64(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Number(Number::I64(v))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Number(Number::U64(v as u64))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(Number::U64(v as u64))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Compact JSON rendering (serde_json's `Display` behaviour).
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&write::compact(self))
    }
}

// --- Bridges to the serde stand-in's data model. ---

fn content_to_value(c: &Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::U64(v) => Value::Number(Number::U64(*v)),
        Content::I64(v) => Value::Number(Number::I64(*v)),
        Content::F64(v) => Value::Number(Number::F64(*v)),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(s) => Value::Array(s.iter().map(content_to_value).collect()),
        Content::Map(m) => Value::Object(Map::from_pairs(
            m.iter()
                .map(|(k, v)| (k.clone(), content_to_value(v)))
                .collect(),
        )),
    }
}

fn value_to_content(v: &Value) -> Content {
    match v {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(Number::U64(n)) => Content::U64(*n),
        Value::Number(Number::I64(n)) => Content::I64(*n),
        Value::Number(Number::F64(n)) => Content::F64(*n),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(a) => Content::Seq(a.iter().map(value_to_content).collect()),
        Value::Object(m) => Content::Map(
            m.iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        value_to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, String> {
        Ok(content_to_value(c))
    }

    fn missing(_field: &'static str) -> Result<Self, String> {
        Ok(Value::Null)
    }
}

/// Parse/serialize errors.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

// --- Top-level API. ---

pub fn to_value<T: Serialize>(v: &T) -> Value {
    content_to_value(&v.to_content())
}

pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_content(&value_to_content(v)).map_err(Error::new)
}

pub fn to_string<T: Serialize>(v: &T) -> Result<String, Error> {
    Ok(write::compact(&to_value(v)))
}

pub fn to_string_pretty<T: Serialize>(v: &T) -> Result<String, Error> {
    Ok(write::pretty(&to_value(v)))
}

pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = read::from_str_value(text)?;
    from_value(&value)
}

/// Build a [`Value`] literal. Objects take `"key": expr` pairs and arrays
/// take expressions; nested literals must call `json!` explicitly
/// (`"k": json!({...})`), which covers every use in this workspace.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$v) ),* ])
    };
    ({ $($k:literal : $v:expr),* $(,)? }) => {
        $crate::Value::Object($crate::Map::from_pairs(vec![
            $( ($k.to_string(), $crate::to_value(&$v)) ),*
        ]))
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_and_roundtrip() {
        let v = json!({"cells": 42u32, "util": 0.9, "ok": true, "name": "demo"});
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"cells":42,"util":0.9,"ok":true,"name":"demo"}"#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back["cells"].as_u64(), Some(42));
        assert_eq!(back["util"].as_f64(), Some(0.9));
        assert_eq!(back["name"].as_str(), Some("demo"));
    }

    #[test]
    fn escapes_and_nesting() {
        let v = json!({"msg": "a\"b\\c\nd"});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back["msg"].as_str(), Some("a\"b\\c\nd"));
        let nested: Value = from_str(r#"{"a": {"b": [1, 2.5, null, "x"]}}"#).unwrap();
        assert_eq!(nested["a"]["b"][1].as_f64(), Some(2.5));
        assert!(nested["a"]["b"][2].is_null());
    }

    #[test]
    fn pretty_reparses() {
        let v = json!({"a": 1u8, "b": [true, false]});
        let p = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&p).unwrap();
        assert_eq!(back, v);
    }
}
