//! Recursive-descent JSON parser.

use crate::{Error, Map, Number, Value};

pub fn from_str_value(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Array(out)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Object(out)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("bad codepoint"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| self.err("invalid number"))
    }
}
