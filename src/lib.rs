//! # fpga-framework
//!
//! Umbrella crate for the integrated FPGA design framework: a custom
//! low-energy FPGA platform model (transistor-level cells, clock gating,
//! sized interconnect) together with a complete application mapping toolset
//! (VHDL parsing, synthesis, LUT mapping, packing, placement, routing,
//! power estimation, and bitstream generation).
//!
//! Each subsystem lives in its own crate and is re-exported here under a
//! short alias so downstream users can depend on a single crate:
//!
//! ```
//! use fpga_framework::arch::Architecture;
//! let arch = Architecture::paper_default();
//! assert_eq!(arch.clb.cluster_size, 5);
//! ```

pub use fpga_arch as arch;
pub use fpga_bitstream as bitstream;
pub use fpga_cells as cells;
pub use fpga_circuits as circuits;
pub use fpga_flow as flow;
pub use fpga_netlist as netlist;
pub use fpga_pack as pack;
pub use fpga_place as place;
pub use fpga_power as power;
pub use fpga_route as route;
pub use fpga_server as server;
pub use fpga_spice as spice;
pub use fpga_synth as synth;
pub use fpga_verify as verify;
pub use fpga_vhdl as vhdl;
